//! `vcgp` — command-line front end for the workspace: generate graphs,
//! inspect them, and run any Table 1 algorithm on an edge-list file.
//!
//! ```text
//! vcgp gen <family> [args...] -o graph.txt     # write a generated graph
//! vcgp info <file> [--directed]                # n, m, degrees, components
//! vcgp run <algorithm> <file> [options]        # run + print stats
//! ```
//!
//! Families: `path N`, `cycle N`, `tree N SEED`, `grid R C`,
//! `gnm N M SEED`, `gnm-connected N M SEED`, `rmat SCALE M SEED`,
//! `bipartite NL NR M SEED`, `labeled N M LABELS SEED`.
//!
//! Algorithms: `cc`, `sv`, `wcc`, `scc`, `pagerank`, `sssp`, `diameter`,
//! `mst`, `coloring`, `matching`, `bc`, `triangles`, `reach`.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;
use vcgp::core::BspCostModel;
use vcgp::graph::{generators, io, Graph};
use vcgp::pregel::{PregelConfig, RunStats};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("help") | Some("--help") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `vcgp help`")),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "vcgp — vertex-centric graph processing\n\n\
         USAGE:\n  vcgp gen <family> [args...] -o <file>\n  \
         vcgp info <file> [--directed]\n  \
         vcgp run <algorithm> <file> [--directed] [--workers N] [--source S]\n\n\
         FAMILIES: path N | cycle N | tree N SEED | grid R C | gnm N M SEED |\n\
         \u{20}         gnm-connected N M SEED | rmat SCALE M SEED |\n\
         \u{20}         bipartite NL NR M SEED | labeled N M LABELS SEED\n\n\
         ALGORITHMS: cc sv wcc scc pagerank sssp diameter mst coloring\n\
         \u{20}           matching bc triangles reach"
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let family = args.first().ok_or("gen needs a family")?;
    let out = flag_value(args, "-o").ok_or("gen needs -o <file>")?;
    let p = |i: usize, what: &str| -> Result<usize, String> {
        parse(args.get(i).ok_or_else(|| format!("missing {what}"))?, what)
    };
    let s = |i: usize| -> Result<u64, String> {
        parse(args.get(i).ok_or("missing seed")?, "seed")
    };
    let graph = match family.as_str() {
        "path" => generators::path(p(1, "n")?),
        "cycle" => generators::cycle(p(1, "n")?),
        "tree" => generators::random_tree(p(1, "n")?, s(2)?),
        "grid" => generators::grid(p(1, "rows")?, p(2, "cols")?),
        "gnm" => generators::gnm(p(1, "n")?, p(2, "m")?, s(3)?),
        "gnm-connected" => generators::gnm_connected(p(1, "n")?, p(2, "m")?, s(3)?),
        "rmat" => generators::rmat(p(1, "scale")? as u32, p(2, "m")?, s(3)?),
        "bipartite" => generators::bipartite(p(1, "nl")?, p(2, "nr")?, p(3, "m")?, s(4)?),
        "labeled" => {
            generators::labeled_digraph(p(1, "n")?, p(2, "m")?, p(3, "labels")? as u32, s(4)?)
        }
        other => return Err(format!("unknown family {other:?}")),
    };
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    io::write_edge_list(&graph, BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} (n = {}, m = {}, directed = {})",
        out,
        graph.num_vertices(),
        graph.num_edges(),
        graph.is_directed()
    );
    Ok(())
}

fn load(path: &str, directed: bool) -> Result<Graph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    io::read_edge_list(BufReader::new(file), directed).map_err(|e| e.to_string())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a file")?;
    let directed = args.iter().any(|a| a == "--directed");
    let g = load(path, directed)?;
    let stats = vcgp::graph::properties::degree_stats(&g);
    println!("file:      {path}");
    println!("vertices:  {}", g.num_vertices());
    println!("edges:     {}", g.num_edges());
    println!("directed:  {}", g.is_directed());
    println!("weighted:  {}", g.is_weighted());
    println!("labeled:   {}", g.is_labeled());
    println!(
        "degrees:   min {} / mean {:.2} / max {}",
        stats.min, stats.mean, stats.max
    );
    if !g.is_directed() && g.num_vertices() > 0 {
        let (_, count) = vcgp::graph::traversal::connected_components(&g);
        println!("components: {count}");
        if count == 1 {
            if let Some(d) = vcgp::graph::properties::double_sweep_diameter(&g, 0) {
                println!("diameter:  >= {d} (double sweep)");
            }
        }
    }
    Ok(())
}

fn print_stats(stats: &RunStats) {
    let model = BspCostModel::default();
    println!(
        "\nsupersteps: {}; messages: {}; work units: {}; wall: {:.1} ms",
        stats.supersteps(),
        stats.total_messages(),
        stats.total_work(),
        stats.wall.as_secs_f64() * 1e3
    );
    println!(
        "BSP cost (g = L = 1, p = {}): T = {:.3e}, time-processor product = {:.3e}",
        stats.num_workers,
        model.total_time(stats),
        model.time_processor_product(stats)
    );
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let algorithm = args.first().ok_or("run needs an algorithm")?.as_str();
    let path = args.get(1).ok_or("run needs a file")?.as_str();
    let directed_flag = args.iter().any(|a| a == "--directed");
    let workers = flag_value(args, "--workers")
        .map(|v| parse::<usize>(v, "--workers"))
        .transpose()?
        .unwrap_or(4);
    let source: u32 = flag_value(args, "--source")
        .map(|v| parse(v, "--source"))
        .transpose()?
        .unwrap_or(0);
    let needs_digraph = matches!(algorithm, "wcc" | "scc" | "pagerank");
    let g = load(path, directed_flag || needs_digraph)?;
    let cfg = PregelConfig::default().with_workers(workers);

    match algorithm {
        "cc" => {
            let r = vcgp::algorithms::cc_hashmin::run(&g, &cfg);
            let distinct: std::collections::HashSet<u32> = r.components.iter().copied().collect();
            println!("hash-min connected components: {}", distinct.len());
            print_stats(&r.stats);
        }
        "sv" => {
            let r = vcgp::algorithms::cc_sv::run(&g, &cfg);
            let distinct: std::collections::HashSet<u32> = r.components.iter().copied().collect();
            println!(
                "S-V connected components: {} ({} spanning-forest edges)",
                distinct.len(),
                r.tree_edges.len()
            );
            print_stats(&r.stats);
        }
        "wcc" => {
            let r = vcgp::algorithms::wcc::run(&g, &cfg);
            let distinct: std::collections::HashSet<u32> = r.components.iter().copied().collect();
            println!("weakly connected components: {}", distinct.len());
            print_stats(&r.stats);
        }
        "scc" => {
            let r = vcgp::algorithms::scc::run(&g, &cfg);
            println!("strongly connected components: {}", r.count);
            print_stats(&r.stats);
        }
        "pagerank" => {
            let r = vcgp::algorithms::pagerank::run(&g, 0.85, 30, &cfg);
            let mut top: Vec<(usize, f64)> = r.scores.iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.total_cmp(&a.1));
            println!("pagerank top 5:");
            for (v, s) in top.iter().take(5) {
                println!("  {v}: {s:.6}");
            }
            print_stats(&r.stats);
        }
        "sssp" => {
            let r = vcgp::algorithms::sssp::run(&g, source, &cfg);
            let reached = r.dist.iter().filter(|d| d.is_finite()).count();
            let max = r.dist.iter().copied().filter(|d| d.is_finite()).fold(0.0, f64::max);
            println!("sssp from {source}: {reached} reachable, max distance {max:.3}");
            print_stats(&r.stats);
        }
        "diameter" => {
            let r = vcgp::algorithms::diameter::run(&g, &cfg);
            println!("diameter: {}", r.diameter);
            print_stats(&r.stats);
        }
        "mst" => {
            let r = vcgp::algorithms::mst_boruvka::run(&g, &cfg);
            println!(
                "minimum spanning forest: {} edges, total weight {:.4}",
                r.edges.len(),
                r.total_weight
            );
            print_stats(&r.stats);
        }
        "coloring" => {
            let r = vcgp::algorithms::coloring_mis::run(&g, &cfg);
            println!("coloring: {} colors", r.num_colors);
            print_stats(&r.stats);
        }
        "matching" => {
            let r = vcgp::algorithms::matching_preis::run(&g, &cfg);
            println!(
                "matching: {} edges, total weight {:.4}",
                r.size, r.total_weight
            );
            print_stats(&r.stats);
        }
        "bc" => {
            let r = vcgp::algorithms::betweenness::run(&g, None, &cfg);
            let mut top: Vec<(usize, f64)> = r.scores.iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.total_cmp(&a.1));
            println!("betweenness top 5:");
            for (v, s) in top.iter().take(5) {
                println!("  {v}: {s:.2}");
            }
            print_stats(&r.stats);
        }
        "triangles" => {
            let r = vcgp::algorithms::triangle_counting::run(&g, &cfg);
            let mean_cc: f64 =
                r.clustering.iter().sum::<f64>() / g.num_vertices().max(1) as f64;
            println!(
                "triangles: {} total, mean clustering coefficient {:.4}",
                r.total, mean_cc
            );
            print_stats(&r.stats);
        }
        "reach" => {
            let target: u32 = flag_value(args, "--target")
                .map(|v| parse(v, "--target"))
                .transpose()?
                .ok_or("reach needs --target T")?;
            let r = vcgp::algorithms::st_reachability::run(&g, source, target, &cfg);
            match r.distance {
                Some(d) => println!(
                    "{source} -> {target}: reachable, distance {d}, footprint {} vertices",
                    r.visited
                ),
                None => println!("{source} -> {target}: unreachable"),
            }
            print_stats(&r.stats);
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    }
    Ok(())
}
