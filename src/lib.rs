//! `vcgp` — Vertex-Centric Graph Processing: the Good, the Bad, and the Ugly.
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! Arijit Khan's EDBT 2017 benchmark study. See the individual crates:
//!
//! * [`graph`] — graph structures, deterministic generators, IO;
//! * [`pregel`] — the instrumented Pregel-style BSP engine;
//! * [`algorithms`] — the twenty vertex-centric algorithms of Table 1;
//! * [`sequential`] — the best-known sequential baselines;
//! * [`core`] — the BSP cost model, time-processor product, BPPA checker,
//!   complexity fitting, and the Table 1 benchmark runner.
//!
//! # Quickstart
//!
//! ```
//! use vcgp::graph::generators;
//! use vcgp::pregel::PregelConfig;
//! use vcgp::algorithms::cc_hashmin;
//!
//! let g = generators::gnm_connected(1_000, 3_000, 42);
//! let run = cc_hashmin::run(&g, &PregelConfig::default());
//! assert!(run.components.iter().all(|&c| c == 0)); // connected: color 0
//! println!("supersteps: {}", run.stats.supersteps());
//! ```

pub use vcgp_algorithms as algorithms;
pub use vcgp_core as core;
pub use vcgp_graph as graph;
pub use vcgp_pregel as pregel;
pub use vcgp_sequential as sequential;
