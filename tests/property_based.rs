//! Property-based tests (vcgp-testkit) over generators, the engine, and the
//! algorithm invariants that must hold for *every* input, not just the
//! seeded families.

use vcgp::algorithms as vc;
use vcgp::graph::{generators, io, Graph, GraphBuilder, INVALID_VERTEX};
use vcgp::pregel::{
    run_with_values, AggOp, AggValue, AggregatorDef, Context, Partitioning, PregelConfig,
    VertexProgram,
};
use vcgp::sequential as seq;
use vcgp_testkit::prop::{any_u64, Strategy};
use vcgp_testkit::{prop_assert, prop_assert_eq, vcgp_props};

/// Strategy: a random undirected simple graph from (n, edge seeds).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0usize..80, any_u64()).prop_map(|(n, extra, seed)| {
        let max = n * (n - 1) / 2;
        generators::gnm(n, extra.min(max), seed)
    })
}

/// Strategy: a random connected graph.
fn arb_connected() -> impl Strategy<Value = Graph> {
    (2usize..40, 0usize..60, any_u64()).prop_map(|(n, extra, seed)| {
        let max = n * (n - 1) / 2;
        generators::gnm_connected(n, (n - 1 + extra).min(max), seed)
    })
}

/// Strategy: a random labeled digraph plus a query pattern.
fn arb_sim_input() -> impl Strategy<Value = (Graph, Graph)> {
    (2usize..6, 8usize..30, any_u64()).prop_map(|(nq, n, seed)| {
        let q = generators::query_pattern(nq, 2, 3, seed);
        let m = (3 * n).min(n * (n - 1));
        let d = generators::labeled_digraph(n, m, 3, seed ^ 0xABCD);
        (q, d)
    })
}

/// Min-label propagation with explicit initial values, an aggregator whose
/// running value every vertex echoes into its state, and a switchable
/// combiner — the full observable surface of the message plane, used by
/// `message_plane_determinism_across_workers`.
struct MinLabel {
    use_combiner: bool,
}

impl VertexProgram for MinLabel {
    /// (current label, aggregator value read this superstep).
    type Value = (u32, i64);
    type Message = u32;

    fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u32]) {
        ctx.value_mut().1 = ctx.read_aggregate(0).as_i64();
        let current = ctx.value().0;
        let best = msgs.iter().copied().min().map_or(current, |m| m.min(current));
        if ctx.superstep() == 0 || best < current {
            ctx.value_mut().0 = best;
            ctx.aggregate(0, AggValue::I64(1));
            ctx.send_to_all_out_neighbors(best);
        }
        ctx.vote_to_halt();
    }

    fn combiner(&self) -> Option<fn(&mut u32, u32)> {
        if self.use_combiner {
            Some(|acc, m| *acc = (*acc).min(m))
        } else {
            None
        }
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![AggregatorDef::new("changed", AggOp::SumI64)]
    }
}

vcgp_props! {
    #![cases(32)]

    fn csr_well_formed(g in arb_graph()) {
        // Degree sum equals arc count; adjacency sorted; mirror edges exist.
        let degree_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_arcs());
        for v in g.vertices() {
            let nb = g.out_neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] <= w[1]));
            for &u in nb {
                prop_assert!(g.has_edge(u, v), "undirected edges must mirror");
            }
        }
    }

    fn edge_list_io_roundtrips(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(std::io::Cursor::new(buf), false).unwrap();
        prop_assert_eq!(back, g);
    }

    fn hashmin_equals_bfs_components(g in arb_graph()) {
        let r = vc::cc_hashmin::run(&g, &PregelConfig::single_worker());
        let sq = seq::connectivity::cc(&g);
        prop_assert_eq!(r.components, sq.components);
    }

    fn sv_equals_bfs_components_and_forest_spans(g in arb_graph()) {
        let r = vc::cc_sv::run(&g, &PregelConfig::single_worker());
        let sq = seq::connectivity::cc(&g);
        prop_assert_eq!(&r.components, &sq.components);
        prop_assert_eq!(r.tree_edges.len(), g.num_vertices() - sq.count);
    }

    fn diameter_matches_bfs(g in arb_connected()) {
        let r = vc::diameter::run(&g, &PregelConfig::single_worker());
        let sq = seq::diameter::diameter(&g);
        prop_assert_eq!(r.diameter, sq.diameter);
    }

    fn mis_coloring_always_valid(g in arb_graph(), seed in any_u64()) {
        let cfg = PregelConfig::single_worker().with_seed(seed);
        let r = vc::coloring_mis::run(&g, &cfg);
        prop_assert!(r.colors.iter().all(|&c| c != u32::MAX));
        prop_assert!(seq::coloring::is_valid_mis_coloring(&g, &r.colors));
    }

    fn matching_always_valid_and_maximal(g in arb_graph(), wseed in any_u64()) {
        let w = generators::with_random_weights(&g, 0.0, 1.0, wseed, true);
        let r = vc::matching_preis::run(&w, &PregelConfig::single_worker());
        prop_assert!(seq::matching::is_maximal_matching(&w, &r.mate));
    }

    fn sssp_triangle_inequality(g in arb_connected(), wseed in any_u64()) {
        let w = generators::with_random_weights(&g, 0.1, 2.0, wseed, false);
        let r = vc::sssp::run(&w, 0, &PregelConfig::single_worker());
        prop_assert_eq!(r.dist[0], 0.0);
        for (u, v, wt) in w.edges() {
            prop_assert!(r.dist[v as usize] <= r.dist[u as usize] + wt + 1e-9);
            prop_assert!(r.dist[u as usize] <= r.dist[v as usize] + wt + 1e-9);
        }
    }

    fn simulation_containment_ladder((q, d) in arb_sim_input()) {
        let cfg = PregelConfig::single_worker();
        let gs = vc::graph_simulation::run(&q, &d, &cfg);
        let ds = vc::dual_simulation::run(&q, &d, &cfg);
        let ss = vc::strong_simulation::run(&q, &d, &cfg);
        if !gs.exists {
            prop_assert!(!ds.exists);
        }
        if gs.exists && ds.exists {
            for v in 0..d.num_vertices() {
                for qv in &ds.matches[v] {
                    prop_assert!(gs.matches[v].contains(qv));
                }
                for qv in &ss.centers[v] {
                    prop_assert!(ds.matches[v].contains(qv));
                }
            }
        }
    }

    fn list_ranking_prefix_sums(n in 2usize..120, seed in any_u64(), shift in 0u64..9) {
        let mut order: Vec<u32> = (0..n as u32).collect();
        vcgp::graph::SplitMix64::new(seed).shuffle(&mut order);
        let mut preds = vec![INVALID_VERTEX; n];
        for w in order.windows(2) {
            preds[w[1] as usize] = w[0];
        }
        let vals: Vec<u64> = (0..n as u64).map(|i| i % 5 + shift).collect();
        let r = vc::list_ranking::run(&preds, &vals, &PregelConfig::single_worker());
        prop_assert_eq!(r.sums, vc::list_ranking::sequential_sums(&preds, &vals));
    }

    fn tree_orders_are_dfs_consistent(n in 2usize..60, seed in any_u64()) {
        let t = generators::random_tree(n, seed);
        let r = vc::tree_order::run(&t, 0, &PregelConfig::single_worker());
        let sq = seq::tree::tree_order(&t, 0);
        prop_assert_eq!(r.pre, sq.pre);
        prop_assert_eq!(r.post, sq.post);
    }

    fn message_plane_determinism_across_workers(g in arb_connected()) {
        // Final values (labels *and* echoed aggregator trajectories), message
        // totals, and superstep counts must not depend on the worker count,
        // the partitioning strategy, the thread count, or work stealing —
        // with or without a combiner (i.e. with and without the sender-side
        // combining stage engaged). The full matrix: W ∈ {1, 2, 3, 4, 8} ×
        // {hash, range} × ±combiner, run on two threads with a tiny steal
        // chunk so worklists genuinely split and migrate across threads.
        for use_combiner in [false, true] {
            let prog = MinLabel { use_combiner };
            let init: Vec<(u32, i64)> =
                (0..g.num_vertices()).map(|v| (v as u32, 0)).collect();
            let (base_vals, base_stats) =
                run_with_values(&prog, &g, init.clone(), &PregelConfig::single_worker());
            for workers in [1usize, 2, 3, 4, 8] {
                for partitioning in [Partitioning::Hash, Partitioning::Range] {
                    let label = format!(
                        "W={workers} {partitioning:?} combiner={use_combiner}"
                    );
                    let cfg = PregelConfig::default()
                        .with_workers(workers)
                        .with_partitioning(partitioning)
                        .with_threads(2)
                        .with_steal_chunk(2);
                    let (vals, stats) = run_with_values(&prog, &g, init.clone(), &cfg);
                    prop_assert_eq!(&base_vals, &vals, "values differ: {}", label);
                    prop_assert_eq!(
                        base_stats.total_messages(),
                        stats.total_messages(),
                        "message totals differ: {}",
                        label
                    );
                    prop_assert_eq!(
                        base_stats.supersteps(),
                        stats.supersteps(),
                        "superstep counts differ: {}",
                        label
                    );
                    // Delivered counts are post-combine but still worker-count
                    // independent, superstep by superstep — and the merged
                    // aggregator trajectory must be bit-identical too.
                    for (a, b) in base_stats
                        .superstep_stats
                        .iter()
                        .zip(&stats.superstep_stats)
                    {
                        prop_assert_eq!(
                            a.messages_delivered,
                            b.messages_delivered,
                            "delivered differ: {}",
                            label
                        );
                        prop_assert_eq!(
                            &a.aggregates,
                            &b.aggregates,
                            "aggregator trajectory differs: {}",
                            label
                        );
                    }
                }
            }
        }
    }

    fn parallel_engine_is_deterministic(g in arb_graph(), workers in 2usize..6) {
        let a = vc::cc_hashmin::run(&g, &PregelConfig::single_worker());
        let b = vc::cc_hashmin::run(&g, &PregelConfig::default().with_workers(workers));
        prop_assert_eq!(a.components, b.components);
        prop_assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    }

    fn bcc_partition_valid(g in arb_connected()) {
        let r = vc::bcc::run(&g, &PregelConfig::single_worker());
        let sq = seq::bcc::bcc(&g);
        prop_assert_eq!(r.count, sq.count);
        prop_assert_eq!(
            seq::bcc::canonical_blocks(&r.block_of_edge),
            seq::bcc::canonical_blocks(&sq.block_of_edge)
        );
    }

    fn scc_is_equivalence_relation(n in 4usize..30, k in 1usize..4, seed in any_u64()) {
        let n = n.max(2 * k);
        let g = generators::cyclic_digraph(n, k, n / 3, seed);
        let r = vc::scc::run(&g, &PregelConfig::single_worker());
        let sq = seq::scc::scc(&g);
        prop_assert_eq!(r.components, sq.components);
    }
}

/// Non-proptest sanity check: GraphBuilder rejects inconsistent input.
#[test]
fn builder_rejects_bad_edges() {
    let result = std::panic::catch_unwind(|| {
        GraphBuilder::new(2).add_edge(0, 5);
    });
    assert!(result.is_err());
}
