//! Integration tests for the extensions beyond Table 1: the GAS layer,
//! partitioning strategies, the finish-serially optimization, and the
//! §3.8 demonstrators — all cross-validated against the core stack.

use vcgp::graph::generators;
use vcgp::pregel::{gas, Partitioning, PregelConfig};

#[test]
fn gas_sssp_matches_pregel_sssp() {
    let g = generators::with_random_weights(
        &generators::gnm_connected(150, 450, 7),
        0.1,
        2.0,
        7,
        false,
    );
    let cfg = PregelConfig::default().with_workers(3);
    let pregel = vcgp::algorithms::sssp::run(&g, 0, &cfg);
    let (states, _) = gas::run_gas(gas::SsspGas { source: 0 }, &g, &cfg);
    for (a, b) in pregel.dist.iter().zip(&states) {
        assert!((a - b.0).abs() < 1e-9 || (a.is_infinite() && b.0.is_infinite()));
    }
}

#[test]
fn gas_pagerank_tracks_bsp_pagerank() {
    let g = generators::digraph_gnm(120, 600, 9);
    let cfg = PregelConfig::default().with_workers(3);
    let bsp = vcgp::algorithms::pagerank::run(&g, 0.85, 80, &cfg);
    let (gas_scores, _) = gas::run_pagerank_gas(&g, 0.85, 1e-9, &cfg);
    for (a, b) in bsp.scores.iter().zip(&gas_scores) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}

#[test]
fn all_partitionings_agree_across_algorithms() {
    let g = generators::gnm_connected(140, 400, 5);
    let weighted = generators::with_random_weights(&g, 0.0, 1.0, 5, true);
    for strategy in [Partitioning::Hash, Partitioning::Range] {
        let cfg = PregelConfig::default()
            .with_workers(4)
            .with_partitioning(strategy);
        let base = PregelConfig::single_worker();
        assert_eq!(
            vcgp::algorithms::cc_hashmin::run(&g, &cfg).components,
            vcgp::algorithms::cc_hashmin::run(&g, &base).components
        );
        assert_eq!(
            vcgp::algorithms::mst_boruvka::run(&weighted, &cfg).edges,
            vcgp::algorithms::mst_boruvka::run(&weighted, &base).edges
        );
        assert_eq!(
            vcgp::algorithms::diameter::run(&g, &cfg).eccentricities,
            vcgp::algorithms::diameter::run(&g, &base).eccentricities
        );
    }
}

#[test]
fn fcs_is_exact_across_thresholds_and_workers() {
    let g = generators::gnm(300, 420, 3);
    let reference = vcgp::sequential::connectivity::cc(&g);
    for workers in [1usize, 4] {
        for threshold in [0usize, 8, 128, 100_000] {
            let cfg = PregelConfig::default().with_workers(workers);
            let r = vcgp::algorithms::cc_hashmin::run_with_fcs(&g, threshold, &cfg);
            assert_eq!(r.components, reference.components);
        }
    }
}

#[test]
fn difficult_workloads_cross_validate() {
    let g = generators::gnm(90, 320, 11);
    let cfg = PregelConfig::default().with_workers(3);
    let vc = vcgp::algorithms::triangle_counting::run(&g, &cfg);
    let sq = vcgp::sequential::triangles::triangles(&g);
    assert_eq!(vc.total, sq.total);
    assert_eq!(vc.per_vertex, sq.per_vertex);

    let connected = generators::gnm_connected(120, 300, 2);
    for t in [1u32, 60, 119] {
        let r = vcgp::algorithms::st_reachability::run(&connected, 0, t, &cfg);
        let s = vcgp::sequential::reachability::st_reachability(&connected, 0, t);
        assert_eq!(r.distance, s.distance);
    }
}
