//! Engine-level invariants that every algorithm run must satisfy:
//! message conservation, per-superstep accounting consistency, and
//! worker-count invariance of algorithm-level statistics.

use vcgp::algorithms as vc;
use vcgp::graph::generators;
use vcgp::pregel::{PregelConfig, RunStats};

/// Messages sent by workers must equal messages received by workers in the
/// following superstep (BSP conservation), and per-superstep totals must
/// equal the per-worker sums.
fn assert_conservation(stats: &RunStats) {
    for (i, s) in stats.superstep_stats.iter().enumerate() {
        let sent: u64 = s.workers.iter().map(|w| w.sent).sum();
        assert_eq!(sent, s.messages_sent, "superstep {i}: sent total mismatch");
        // A BSP superstep's communication phase both sends and receives its
        // h-relation: per-superstep sent and received totals must agree.
        let received: u64 = s.workers.iter().map(|w| w.received).sum();
        assert_eq!(
            sent, received,
            "superstep {i}: messages lost or duplicated in flight"
        );
        assert!(
            s.messages_delivered <= s.messages_sent,
            "combining cannot create messages"
        );
    }
    // Convergence means the final superstep left nothing in flight that
    // would have reactivated a vertex.
    if let Some(last) = stats.superstep_stats.last() {
        if stats.halt_reason == vcgp::pregel::HaltReason::Converged {
            assert_eq!(last.messages_sent, 0, "messages in flight at convergence");
        }
    }
}

#[test]
fn conservation_across_algorithms() {
    let g = generators::gnm_connected(120, 300, 5);
    let cfg = PregelConfig::default().with_workers(3);
    assert_conservation(&vc::cc_hashmin::run(&g, &cfg).stats);
    assert_conservation(&vc::pagerank::run(&g.to_undirected(), 0.85, 10, &cfg).stats);
    assert_conservation(&vc::cc_sv::run(&g, &cfg).stats);
    assert_conservation(&vc::diameter::run(&g, &cfg).stats);
    let w = generators::with_random_weights(&g, 0.1, 2.0, 9, true);
    assert_conservation(&vc::mst_boruvka::run(&w, &cfg).stats);
    assert_conservation(&vc::sssp::run(&w, 0, &cfg).stats);
}

#[test]
fn first_superstep_runs_every_vertex() {
    let g = generators::gnm(64, 96, 1);
    let cfg = PregelConfig::default().with_workers(4);
    let r = vc::cc_hashmin::run(&g, &cfg);
    assert_eq!(r.stats.superstep_stats[0].active, 64);
}

#[test]
fn statistics_invariant_under_worker_count() {
    let g = generators::gnm_connected(150, 400, 7);
    let baseline = vc::cc_hashmin::run(&g, &PregelConfig::single_worker());
    for workers in [2, 4, 7] {
        let cfg = PregelConfig::default().with_workers(workers);
        let r = vc::cc_hashmin::run(&g, &cfg);
        assert_eq!(r.stats.supersteps(), baseline.stats.supersteps());
        assert_eq!(r.stats.total_messages(), baseline.stats.total_messages());
        assert_eq!(r.stats.total_work(), baseline.stats.total_work());
        // Per-superstep totals match superstep by superstep.
        for (a, b) in r
            .stats
            .superstep_stats
            .iter()
            .zip(&baseline.stats.superstep_stats)
        {
            assert_eq!(a.messages_sent, b.messages_sent);
            assert_eq!(a.active, b.active);
        }
    }
}

#[test]
fn per_vertex_totals_are_consistent_with_worker_totals() {
    let g = generators::gnm_connected(80, 200, 3);
    let cfg = PregelConfig::default()
        .with_workers(3)
        .with_per_vertex_tracking();
    let r = vc::cc_hashmin::run(&g, &cfg);
    let pv = r.stats.per_vertex.as_ref().expect("tracking enabled");
    // Max per-vertex counters cannot exceed whole-run per-superstep maxima.
    let max_superstep_sent: u64 = r
        .stats
        .superstep_stats
        .iter()
        .map(|s| s.messages_sent)
        .max()
        .unwrap_or(0);
    for v in g.vertices() {
        assert!(pv.max_sent[v as usize] <= max_superstep_sent);
        assert!(pv.max_work[v as usize] >= 1, "every vertex ran at least once");
    }
}

#[test]
fn tpp_upper_bounds_average_work() {
    // p * T >= total work (the max over workers is at least the average).
    let g = generators::gnm_connected(100, 260, 2);
    for workers in [1, 2, 5] {
        let cfg = PregelConfig::default().with_workers(workers);
        let r = vc::cc_hashmin::run(&g, &cfg);
        let model = vcgp::core::BspCostModel::default();
        assert!(
            model.time_processor_product(&r.stats) + 1e-9 >= r.stats.total_work() as f64,
            "workers {workers}"
        );
    }
}
