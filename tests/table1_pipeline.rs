//! End-to-end test of the Table 1 benchmark pipeline at quick scale:
//! the runner completes for every row, reports render, and the rows whose
//! verdicts are robust even at tiny sizes keep them.

use vcgp::core::{benchmark, report, Scale, Workload};
use vcgp::pregel::PregelConfig;

#[test]
fn every_row_runs_at_quick_scale() {
    let cfg = PregelConfig::default().with_workers(2);
    let mut rows = Vec::new();
    for w in Workload::ALL {
        let row = benchmark::run_row(w, Scale::Quick, &cfg);
        assert_eq!(row.measurements.len(), w.sizes(Scale::Quick).len());
        for m in &row.measurements {
            assert!(m.tpp > 0.0, "{:?}", w);
            assert!(m.seq_work > 0.0, "{:?}", w);
        }
        rows.push(row);
    }
    let table = report::render_table1(&rows);
    assert_eq!(table.lines().count(), 22, "header + separator + 20 rows");
    let csv = report::render_csv(&rows);
    assert!(csv.lines().count() > 20);
}

#[test]
fn structurally_robust_rows_keep_verdicts_at_quick_scale() {
    // These verdicts come from strong signals (Θ(n) vs Θ(log n) gaps)
    // that survive even the tiny quick-scale sweep.
    let cfg = PregelConfig::default().with_workers(2);
    for w in [Workload::CcHashMin, Workload::EulerTour, Workload::Sssp] {
        let row = benchmark::run_row(w, Scale::Quick, &cfg);
        assert_eq!(
            row.more_work.yes,
            w.expected_more_work(),
            "{:?} more-work verdict flipped at quick scale",
            w
        );
    }
}

#[test]
fn measurements_are_reproducible() {
    let cfg = PregelConfig::default().with_workers(2);
    let a = Workload::CcHashMin.measure(256, &cfg);
    let b = Workload::CcHashMin.measure(256, &cfg);
    assert_eq!(a.tpp, b.tpp);
    assert_eq!(a.seq_work, b.seq_work);
    assert_eq!(a.supersteps, b.supersteps);
    assert_eq!(a.messages, b.messages);
}

#[test]
fn full_scale_rows_match_paper_for_headline_cases() {
    // A slice of the full-scale run (the complete 20/20 check lives in the
    // `table1` binary; here we pin the qualitative headline rows).
    let cfg = PregelConfig::default().with_workers(2);
    let euler = benchmark::run_row(Workload::EulerTour, Scale::Full, &cfg);
    assert!(euler.matches_paper(), "row 8 is the paper's 'good' row");
    let hashmin = benchmark::run_row(Workload::CcHashMin, Scale::Full, &cfg);
    assert!(hashmin.matches_paper(), "row 3 is the canonical 'bad' row");
}
