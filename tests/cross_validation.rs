//! Integration tests: every vertex-centric algorithm cross-validated
//! against its sequential baseline on randomized inputs, across worker
//! counts — the workspace-level contract behind every Table 1 comparison.

use vcgp::algorithms as vc;
use vcgp::graph::{generators, Graph};
use vcgp::pregel::PregelConfig;
use vcgp::sequential as seq;

fn configs() -> Vec<PregelConfig> {
    vec![
        PregelConfig::single_worker(),
        PregelConfig::default().with_workers(3),
    ]
}

fn connected(n: usize, m: usize, seed: u64) -> Graph {
    generators::gnm_connected(n, m, seed)
}

#[test]
fn diameter_and_apsp_agree() {
    for seed in 0..3 {
        let g = connected(60, 140, seed);
        let sq = seq::diameter::diameter(&g);
        let apsp = seq::diameter::apsp(&g);
        for cfg in configs() {
            let r = vc::diameter::run(&g, &cfg);
            assert_eq!(r.diameter, sq.diameter);
            assert_eq!(r.eccentricities, sq.eccentricities);
            for u in 0..60usize {
                for v in 0..60u32 {
                    assert_eq!(r.distances[u][&v], apsp.dist[u][v as usize]);
                }
            }
        }
    }
}

#[test]
fn pagerank_agrees_with_power_iteration() {
    for seed in 0..3 {
        let g = generators::digraph_gnm(100, 500, seed);
        let sq = seq::pagerank::pagerank(&g, 0.85, 25, 0.0);
        for cfg in configs() {
            let r = vc::pagerank::run(&g, 0.85, 25, &cfg);
            for (a, b) in r.scores.iter().zip(&sq.scores) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn all_connectivity_algorithms_agree() {
    for seed in 0..3 {
        let g = generators::gnm(120, 180, seed);
        let sq = seq::connectivity::cc(&g);
        for cfg in configs() {
            assert_eq!(vc::cc_hashmin::run(&g, &cfg).components, sq.components);
            assert_eq!(vc::cc_sv::run(&g, &cfg).components, sq.components);
        }
        let d = generators::digraph_gnm(120, 200, seed);
        let sw = seq::connectivity::wcc(&d);
        for cfg in configs() {
            assert_eq!(vc::wcc::run(&d, &cfg).components, sw.components);
        }
    }
}

#[test]
fn bcc_partitions_agree() {
    for seed in 0..3 {
        let g = connected(70, 130, seed);
        let sq = seq::bcc::bcc(&g);
        for cfg in configs() {
            let r = vc::bcc::run(&g, &cfg);
            assert_eq!(r.count, sq.count);
            assert_eq!(
                seq::bcc::canonical_blocks(&r.block_of_edge),
                seq::bcc::canonical_blocks(&sq.block_of_edge)
            );
        }
    }
}

#[test]
fn scc_agrees_with_tarjan() {
    for seed in 0..3 {
        let g = generators::cyclic_digraph(90, 5, 30, seed);
        let sq = seq::scc::scc(&g);
        for cfg in configs() {
            let r = vc::scc::run(&g, &cfg);
            assert_eq!(r.components, sq.components);
        }
    }
}

#[test]
fn tree_pipelines_agree() {
    for seed in 0..3 {
        let t = generators::random_tree(80, seed);
        let tour = seq::tree::euler_tour(&t, 0);
        let order = seq::tree::tree_order(&t, 0);
        for cfg in configs() {
            assert_eq!(vc::euler_tour::run(&t, 0, &cfg).tour, tour.tour);
            let r = vc::tree_order::run(&t, 0, &cfg);
            assert_eq!(r.pre, order.pre);
            assert_eq!(r.post, order.post);
        }
    }
}

#[test]
fn spanning_tree_valid_and_complete() {
    for seed in 0..3 {
        let g = connected(90, 200, seed);
        for cfg in configs() {
            let r = vc::spanning_tree::run(&g, &cfg);
            assert_eq!(r.tree_edges.len(), 89);
            let mut b = vcgp::graph::GraphBuilder::new(90);
            for &(u, v) in &r.tree_edges {
                assert!(g.has_edge(u, v));
                b.add_edge(u, v);
            }
            assert!(vcgp::graph::traversal::is_tree(&b.build()));
        }
    }
}

#[test]
fn mst_agrees_with_kruskal_and_prim() {
    for seed in 0..3 {
        let g = generators::with_random_weights(&connected(80, 240, seed), 0.0, 1.0, seed, true);
        let kruskal = seq::mst::mst_kruskal(&g);
        let prim = seq::mst::mst_prim(&g);
        assert_eq!(kruskal.edges, prim.edges);
        for cfg in configs() {
            let r = vc::mst_boruvka::run(&g, &cfg);
            assert_eq!(r.edges, kruskal.edges);
        }
    }
}

#[test]
fn coloring_valid_mis_peeling() {
    for seed in 0..3 {
        let g = generators::gnm(80, 200, seed);
        for cfg in configs() {
            let r = vc::coloring_mis::run(&g, &cfg);
            assert!(seq::coloring::is_valid_mis_coloring(&g, &r.colors));
        }
    }
}

#[test]
fn matchings_valid_and_maximal() {
    for seed in 0..3 {
        let g = generators::with_random_weights(&generators::gnm(70, 160, seed), 0.0, 1.0, seed, true);
        let greedy = seq::matching::mwm_greedy(&g);
        for cfg in configs() {
            let r = vc::matching_preis::run(&g, &cfg);
            assert_eq!(r.mate, greedy.mate, "distinct weights: same matching");
        }
        let b = generators::bipartite(40, 40, 220, seed);
        for cfg in configs() {
            let r = vc::bipartite_matching::run(&b, 40, &cfg);
            assert!(seq::matching::is_maximal_matching(&b, &r.mate));
        }
    }
}

#[test]
fn betweenness_agrees_with_brandes() {
    for seed in 0..2 {
        let g = connected(45, 100, seed);
        let sq = seq::betweenness::betweenness(&g, None);
        for cfg in configs() {
            let r = vc::betweenness::run(&g, None, &cfg);
            for (a, b) in r.scores.iter().zip(&sq.scores) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn sssp_agrees_with_dijkstra() {
    for seed in 0..3 {
        let g = generators::with_random_weights(&connected(100, 320, seed), 0.1, 3.0, seed, false);
        let sq = seq::sssp::sssp(&g, 0);
        for cfg in configs() {
            let r = vc::sssp::run(&g, 0, &cfg);
            for (a, b) in r.dist.iter().zip(&sq.dist) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn simulations_agree_with_baselines() {
    for seed in 0..3 {
        let q = generators::query_pattern(4, 2, 3, seed);
        let d = generators::labeled_digraph(60, 240, 3, seed + 40);
        let gs = seq::simulation::graph_simulation(&q, &d);
        let ds = seq::simulation::dual_simulation(&q, &d);
        let ss = seq::simulation::strong_simulation(&q, &d);
        for cfg in configs() {
            assert_eq!(vc::graph_simulation::run(&q, &d, &cfg).matches, gs.matches);
            assert_eq!(vc::dual_simulation::run(&q, &d, &cfg).matches, ds.matches);
            assert_eq!(vc::strong_simulation::run(&q, &d, &cfg).centers, ss.centers);
        }
    }
}
