//! Auditing one workload with the paper's methodology: sweep a family,
//! measure the time-processor product and the sequential work, fit
//! complexity classes, and check the four BPPA properties — exactly what
//! the `table1` harness does for all twenty rows, shown here for one row
//! end-to-end.
//!
//! Run with: `cargo run --release --example complexity_audit [row]`

use vcgp::core::{benchmark, report, Scale, Workload};
use vcgp::pregel::PregelConfig;

fn main() {
    let row: u8 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("row must be 1-20"))
        .unwrap_or(3); // Hash-Min by default
    let workload = *Workload::ALL
        .iter()
        .find(|w| w.row() == row)
        .expect("row must be 1-20");

    println!(
        "auditing row {}: {}\n  paper: VC {} vs sequential {} — more work: {}, BPPA: {}\n",
        workload.row(),
        workload.name(),
        workload.paper_vc(),
        workload.paper_seq(),
        if workload.expected_more_work() { "Yes" } else { "No" },
        if workload.expected_bppa() { "Yes" } else { "No" },
    );

    let config = PregelConfig::default().with_workers(4);
    let result = benchmark::run_row(workload, Scale::Full, &config);
    println!("{}", report::render_row_detail(&result));
    println!(
        "fitted classes: vertex-centric {} (constant {:.3}), sequential {} (constant {:.3})",
        result.vc_fit.class.label(),
        result.vc_fit.constant,
        result.seq_fit.class.label(),
        result.seq_fit.constant,
    );
    println!(
        "\nverdicts reproduce the paper: {}",
        if result.matches_paper() { "YES" } else { "NO" }
    );
}
