//! Pattern matching by simulation (Table 1 rows 18-20): find where a small
//! labeled query pattern "simulates into" a labeled data graph, under the
//! three progressively stricter semantics the paper benchmarks.
//!
//! Run with: `cargo run --release --example pattern_matching`

use vcgp::algorithms::{dual_simulation, graph_simulation, strong_simulation};
use vcgp::graph::generators;
use vcgp::pregel::PregelConfig;

fn main() {
    // Data: a labeled digraph (say labels = {0: user, 1: post, 2: topic}).
    let data = generators::labeled_digraph(2_000, 8_000, 3, 11);
    // Query: a small connected pattern.
    let query = generators::query_pattern(4, 2, 3, 3);
    let config = PregelConfig::default().with_workers(4);
    println!(
        "data: n = {}, m = {}; query: n_q = {}, m_q = {}",
        data.num_vertices(),
        data.num_edges(),
        query.num_vertices(),
        query.num_edges()
    );

    let gs = graph_simulation::run(&query, &data, &config);
    let gs_matched = gs.matches.iter().filter(|s| !s.is_empty()).count();
    println!(
        "\ngraph simulation:  exists = {}, matched data vertices = {gs_matched}, \
         supersteps = {}, messages = {}",
        gs.exists,
        gs.stats.supersteps(),
        gs.stats.total_messages()
    );

    let ds = dual_simulation::run(&query, &data, &config);
    let ds_matched = ds.matches.iter().filter(|s| !s.is_empty()).count();
    println!(
        "dual simulation:   exists = {}, matched data vertices = {ds_matched}, \
         supersteps = {}, messages = {}",
        ds.exists,
        ds.stats.supersteps(),
        ds.stats.total_messages()
    );

    let ss = strong_simulation::run(&query, &data, &config);
    let centers = ss.centers.iter().filter(|s| !s.is_empty()).count();
    println!(
        "strong simulation: centers = {centers}, supersteps = {}, messages = {}",
        ss.stats.supersteps(),
        ss.stats.total_messages()
    );

    // The containment ladder: strong ⊆ dual ⊆ graph simulation.
    if gs.exists && ds.exists {
        for v in 0..data.num_vertices() {
            for q in &ds.matches[v] {
                assert!(gs.matches[v].contains(q), "dual must refine graph sim");
            }
            for q in &ss.centers[v] {
                assert!(ds.matches[v].contains(q), "strong must refine dual");
            }
        }
        println!("\ncontainment verified: strong ⊆ dual ⊆ graph simulation ✓");
    }

    // Cross-check with the sequential HHK / Ma et al. baselines.
    let seq = vcgp::sequential::simulation::dual_simulation(&query, &data);
    assert_eq!(ds.matches, seq.matches);
    println!("vertex-centric dual simulation matches Ma et al. exactly ✓");
}
