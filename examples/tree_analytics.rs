//! Tree analytics with the "good" rows of Table 1: the Euler tour (the one
//! workload that is both work-optimal *and* BPPA) and the pre/post-order
//! pipeline built on list ranking — applied to a file-system-like tree.
//!
//! Run with: `cargo run --release --example tree_analytics`

use vcgp::algorithms::{euler_tour, tree_order};
use vcgp::graph::generators;
use vcgp::pregel::PregelConfig;

fn main() {
    // A "directory tree": 50k nodes, random recursive attachment.
    let tree = generators::random_tree(50_000, 99);
    let config = PregelConfig::default().with_workers(4);
    println!("tree: n = {}, edges = {}", tree.num_vertices(), tree.num_edges());

    // Row 8: the Euler tour — two supersteps, O(d(v)) everything.
    let tour = euler_tour::run(&tree, 0, &config);
    println!(
        "\neuler tour: {} arcs in {} supersteps, {} messages (= 2m)",
        tour.tour.len(),
        tour.stats.supersteps(),
        tour.stats.total_messages()
    );

    // Row 9: pre/post-order + subtree sizes via list ranking.
    let orders = tree_order::run(&tree, 0, &config);
    println!(
        "tree orders: {} supersteps total across the pipeline stages",
        orders.stats.supersteps()
    );

    // Subtree-size queries ("du" style): the five largest subtrees.
    let mut by_size: Vec<(u32, u32)> = orders
        .nd
        .iter()
        .enumerate()
        .map(|(v, &s)| (v as u32, s))
        .collect();
    by_size.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\nlargest subtrees (vertex: size):");
    for (v, s) in by_size.iter().take(5) {
        println!("  {v:>6}: {s}");
    }

    // Ancestor queries in O(1) from pre-order intervals:
    // u is an ancestor of v  <=>  pre(u) <= pre(v) < pre(u) + nd(u).
    let is_ancestor = |u: usize, v: usize| {
        orders.pre[u] <= orders.pre[v] && orders.pre[v] < orders.pre[u] + orders.nd[u]
    };
    let v = 33_333usize;
    let mut chain = vec![v as u32];
    let mut cur = v;
    while orders.parent[cur] != vcgp::graph::INVALID_VERTEX {
        cur = orders.parent[cur] as usize;
        chain.push(cur as u32);
    }
    println!(
        "\nancestor chain of vertex {v} has {} nodes; spot-check via pre/nd intervals:",
        chain.len()
    );
    for &a in chain.iter().rev().take(4) {
        assert!(is_ancestor(a as usize, v));
        println!("  {a} is an ancestor of {v} ✓");
    }

    // Cross-check against the sequential DFS.
    let seq = vcgp::sequential::tree::tree_order(&tree, 0);
    assert_eq!(orders.pre, seq.pre);
    assert_eq!(orders.post, seq.post);
    println!("\npre/post orders match the sequential DFS exactly ✓");
}
