//! Social-network analytics on a power-law (R-MAT) graph: influence
//! ranking by PageRank, community structure by connected components, and
//! broker detection by betweenness centrality — the workload mix the
//! paper's introduction motivates for distributed graph processing.
//!
//! Run with: `cargo run --release --example social_network`

use vcgp::algorithms::{betweenness, cc_hashmin, pagerank};
use vcgp::graph::generators;
use vcgp::pregel::PregelConfig;

fn main() {
    // A power-law "follower" graph (Graph500 R-MAT parameters).
    let graph = generators::rmat(12, 32_768, 7);
    let config = PregelConfig::default().with_workers(4);
    println!(
        "social graph: n = {}, m = {}, max degree = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Communities: connected components.
    let cc = cc_hashmin::run(&graph, &config);
    let mut community_sizes = std::collections::HashMap::new();
    for &c in &cc.components {
        *community_sizes.entry(c).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = community_sizes.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\ncommunities: {} components; largest {:?} (supersteps: {})",
        sizes.len(),
        &sizes[..sizes.len().min(5)],
        cc.stats.supersteps()
    );

    // Influence: PageRank top-5.
    let pr = pagerank::run(&graph, 0.85, 30, &config);
    let mut ranked: Vec<(usize, f64)> = pr.scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop influencers (pagerank):");
    for (v, score) in ranked.iter().take(5) {
        println!("  vertex {v:>5}: score {score:.6}, degree {}", graph.out_degree(*v as u32));
    }

    // Brokers: betweenness from a deterministic source sample (exact
    // betweenness is Θ(mn); sampling is the standard practice the paper's
    // row 15 cost explains).
    let sources: Vec<u32> = (0..graph.num_vertices() as u32).step_by(64).collect();
    let bc = betweenness::run(&graph, Some(&sources), &config);
    let mut brokers: Vec<(usize, f64)> = bc.scores.iter().copied().enumerate().collect();
    brokers.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\ntop brokers (betweenness, {} sampled sources, {} supersteps):",
        sources.len(),
        bc.stats.supersteps()
    );
    for (v, score) in brokers.iter().take(5) {
        println!("  vertex {v:>5}: dependency {score:.1}");
    }
}
