//! Writing your own vertex program against the public engine API:
//! synchronous label propagation for community detection, with combiner,
//! aggregator, and master-compute usage — the full surface a Table 1
//! algorithm uses.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use vcgp::pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, StateSize,
    VertexProgram,
};

/// Per-vertex state: the current community label.
#[derive(Debug, Clone, Copy, Default)]
struct Label(u32);

impl StateSize for Label {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Synchronous label propagation: each round every vertex adopts the most
/// frequent label among its neighbors (ties to the smallest), for a fixed
/// number of rounds driven by the master.
struct LabelPropagation {
    rounds: u64,
}

impl VertexProgram for LabelPropagation {
    type Value = Label;
    type Message = u32;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[u32]) {
        if ctx.superstep() == 0 {
            *ctx.value_mut() = Label(ctx.id());
        } else {
            // Most frequent incoming label, ties to the smallest value.
            let mut counts = std::collections::HashMap::new();
            for &l in messages {
                *counts.entry(l).or_insert(0usize) += 1;
            }
            ctx.charge(messages.len() as u64);
            if let Some((&label, _)) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            {
                if label != ctx.value().0 {
                    *ctx.value_mut() = Label(label);
                    ctx.aggregate(0, AggValue::I64(1));
                }
            }
        }
        if ctx.superstep() < self.rounds {
            let label = ctx.value().0;
            ctx.send_to_all_out_neighbors(label);
        }
        ctx.vote_to_halt();
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![AggregatorDef::new("changed", AggOp::SumI64)]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        if master.superstep() > 0 {
            let changed = master.read_aggregate(0).as_i64();
            if changed == 0 && master.superstep() > 1 {
                master.halt(); // converged early
                return;
            }
        }
        if master.superstep() < self.rounds {
            master.reactivate_all();
        }
    }
}

fn main() {
    // Two dense clusters joined by a single bridge edge.
    let mut builder = vcgp::graph::GraphBuilder::new(60);
    let mut rng = vcgp::graph::SplitMix64::new(5);
    for cluster in 0..2u32 {
        let base = cluster * 30;
        for _ in 0..150 {
            let u = base + rng.next_below(30) as u32;
            let v = base + rng.next_below(30) as u32;
            if u != v {
                builder.add_edge(u, v);
            }
        }
    }
    builder.add_edge(0, 30);
    let graph = builder.dedup().build();

    let config = PregelConfig::default().with_workers(4);
    let (labels, stats) = vcgp::pregel::run(&LabelPropagation { rounds: 20 }, &graph, &config);

    let mut communities = std::collections::HashMap::new();
    for l in &labels {
        *communities.entry(l.0).or_insert(0usize) += 1;
    }
    println!(
        "label propagation found {} communities in {} supersteps ({} messages)",
        communities.len(),
        stats.supersteps(),
        stats.total_messages()
    );
    let mut sizes: Vec<(u32, usize)> = communities.into_iter().collect();
    sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    for (label, size) in sizes.iter().take(4) {
        println!("  community {label}: {size} members");
    }
    // The two planted clusters should dominate.
    assert!(sizes[0].1 >= 20, "planted cluster not recovered");
}
