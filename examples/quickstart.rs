//! Quickstart: build a graph, run two vertex-centric algorithms, and read
//! the BSP instrumentation that powers the paper's analysis.
//!
//! Run with: `cargo run --example quickstart`

use vcgp::core::BspCostModel;
use vcgp::graph::generators;
use vcgp::pregel::PregelConfig;

fn main() {
    // A connected random graph: 10k vertices, 40k edges, seeded and
    // therefore exactly reproducible.
    let graph = generators::gnm_connected(10_000, 40_000, 42);
    println!(
        "graph: n = {}, m = {}, max degree = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Hash-Min connected components (Table 1, row 3).
    let config = PregelConfig::default().with_workers(4);
    let cc = vcgp::algorithms::cc_hashmin::run(&graph, &config);
    println!(
        "\nhash-min: all vertices colored {} (connected), {} supersteps, {} messages",
        cc.components[0],
        cc.stats.supersteps(),
        cc.stats.total_messages()
    );

    // PageRank (row 2), 30 rounds as in the Pregel paper.
    let pr = vcgp::algorithms::pagerank::run(&graph, 0.85, 30, &config);
    let (best, score) = pr
        .scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty graph");
    println!(
        "pagerank: top vertex {best} with score {score:.6}, {} supersteps",
        pr.stats.supersteps()
    );

    // The instrumentation behind Table 1: Valiant's BSP cost model.
    let model = BspCostModel::default();
    println!(
        "\nBSP cost (g = 1, L = 1): hash-min TPP = {:.3e}, pagerank TPP = {:.3e}",
        model.time_processor_product(&cc.stats),
        model.time_processor_product(&pr.stats)
    );

    // Compare against the sequential baselines.
    let seq_cc = vcgp::sequential::connectivity::cc(&graph);
    let seq_pr = vcgp::sequential::pagerank::pagerank(&graph, 0.85, 30, 0.0);
    println!(
        "sequential: BFS components = {} ops, power iteration = {} ops",
        seq_cc.work, seq_pr.work
    );
    assert_eq!(cc.components, seq_cc.components);
    println!("\nvertex-centric and sequential component labels agree ✓");
}
