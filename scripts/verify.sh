#!/usr/bin/env bash
# Tier-1 verification for the vcgp workspace.
#
# The workspace must build, test, and bench from a cold, empty cargo
# registry: no network, no crates.io. This script enforces that invariant
# two ways — it runs every cargo step with --offline, and it fails if any
# Cargo.toml reintroduces a dependency that is not an in-tree path
# dependency (or a `workspace = true` alias of one).
set -euo pipefail
cd "$(dirname "$0")/.."

manifests=$(git ls-files '*Cargo.toml')

echo "== dependency gate"
fail=0
if grep -nE 'proptest|criterion' $manifests; then
    echo "error: banned external crate referenced in a Cargo.toml" >&2
    fail=1
fi
nonpath=$(awk '
    /^\[/ { in_dep = ($0 ~ /dependencies\]$/) }
    in_dep && NF && $0 !~ /^\[/ && $0 !~ /^[[:space:]]*#/ {
        if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
            print FILENAME ":" FNR ": " $0
    }
' $manifests /dev/null)
if [ -n "$nonpath" ]; then
    echo "error: non-path dependency declared (offline build would break):" >&2
    echo "$nonpath" >&2
    fail=1
fi
[ "$fail" -eq 0 ] || exit 1
echo "   ok: all dependencies are in-tree path dependencies"

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "== cargo bench -p vcgp-bench --no-run --offline (benches must compile)"
cargo bench -p vcgp-bench --no-run --offline

echo "== engine bench smoke (reduced profile, gated on well-formed JSON)"
VCGP_ENGINE_BENCH_PROFILE=smoke cargo bench -p vcgp-bench --bench engine --offline
cargo bench -p vcgp-bench --bench engine --offline -- \
    --validate target/vcgp-bench/BENCH_engine.json

echo "== stress smoke (2 s paced load, gated on valid JSON and zero errors)"
./target/release/stress --gen gnm-connected:512:2048:7 --duration 2 --rate 500 \
    --seed 7 --mix points --name smoke --quiet
./target/release/stress --validate-report target/vcgp-bench/BENCH_stress_smoke.json

echo "tier-1 verify: OK"
