#!/usr/bin/env bash
# Tier-1 verification for the vcgp workspace.
#
# The workspace must build, test, and bench from a cold, empty cargo
# registry: no network, no crates.io. This script enforces that invariant
# two ways — it runs every cargo step with --offline, and it fails if any
# Cargo.toml reintroduces a dependency that is not an in-tree path
# dependency (or a `workspace = true` alias of one).
set -euo pipefail
cd "$(dirname "$0")/.."

manifests=$(git ls-files '*Cargo.toml')

echo "== dependency gate"
fail=0
if grep -nE 'proptest|criterion' $manifests; then
    echo "error: banned external crate referenced in a Cargo.toml" >&2
    fail=1
fi
nonpath=$(awk '
    /^\[/ { in_dep = ($0 ~ /dependencies\]$/) }
    in_dep && NF && $0 !~ /^\[/ && $0 !~ /^[[:space:]]*#/ {
        if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
            print FILENAME ":" FNR ": " $0
    }
' $manifests /dev/null)
if [ -n "$nonpath" ]; then
    echo "error: non-path dependency declared (offline build would break):" >&2
    echo "$nonpath" >&2
    fail=1
fi
[ "$fail" -eq 0 ] || exit 1
echo "   ok: all dependencies are in-tree path dependencies"

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "== cargo clippy --offline -- -D warnings (when clippy is installed)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "   skipped: clippy not installed in this toolchain"
fi

echo "== cargo bench -p vcgp-bench --no-run --offline (benches must compile)"
cargo bench -p vcgp-bench --no-run --offline

echo "== engine bench smoke (reduced profile, gated on well-formed JSON)"
VCGP_ENGINE_BENCH_PROFILE=smoke cargo bench -p vcgp-bench --bench engine --offline
cargo bench -p vcgp-bench --bench engine --offline -- \
    --validate target/vcgp-bench/BENCH_engine.json

echo "== multi-worker scaling gate (combiner workloads: W=4 mean must not"
echo "   exceed W=1 mean beyond tolerance; catches negative-scaling regressions)"
# On a single-core box parity is the physical ceiling, so the gate checks
# W=4 <= W=1 * tolerance rather than demanding speedup. The regression
# class this catches ran 1.3-1.6x slower; the default tolerance leaves
# headroom for smoke-profile noise (3 samples on a loaded box) while
# still tripping on a real regression. Override via VCGP_SCALE_TOLERANCE.
tol="${VCGP_SCALE_TOLERANCE:-1.25}"
mean_of() {
    sed -n 's|.*"id": "'"$2"'", "mean_ns": \([0-9.]*\),.*|\1|p' "$1"
}
for wl in sssp_combine wcc_combine; do
    m1=$(mean_of target/vcgp-bench/BENCH_engine.json "$wl/1")
    m4=$(mean_of target/vcgp-bench/BENCH_engine.json "$wl/4")
    if [ -z "$m1" ] || [ -z "$m4" ]; then
        echo "error: scaling gate could not find $wl/1 or $wl/4 means" >&2
        exit 1
    fi
    if ! awk -v m1="$m1" -v m4="$m4" -v tol="$tol" \
        'BEGIN { exit !(m4 <= m1 * tol) }'; then
        echo "error: $wl regressed at W=4: mean $m4 ns vs W=1 mean $m1 ns" >&2
        echo "       (tolerance x$tol; override with VCGP_SCALE_TOLERANCE)" >&2
        exit 1
    fi
    echo "   ok: $wl W=4 mean ${m4}ns <= W=1 mean ${m1}ns x $tol"
done

echo "== stress smoke (2 s paced load, gated on valid JSON and zero errors)"
./target/release/stress --gen gnm-connected:512:2048:7 --duration 2 --rate 500 \
    --seed 7 --mix points --name smoke --quiet
./target/release/stress --validate-report target/vcgp-bench/BENCH_stress_smoke.json

echo "== shard smoke (same seeded mix at --shards 1 and --shards 4; both must"
echo "   validate and agree on success/error counts)"
for s in 1 4; do
    ./target/release/stress --gen gnm-connected:256:1024:7 --ops 400 --duration 30 \
        --seed 7 --mix mixed --shards "$s" --name "shard$s" --quiet
    ./target/release/stress --validate-report "target/vcgp-bench/BENCH_stress_shard$s.json"
done
counts() {
    {
        sed -n 's/^[[:space:]]*"\(ops\|ok\|errors\)": \([0-9]*\),*$/\1=\2/p' "$1"
        sed -n 's/^[[:space:]]*"answer_hash": "\([0-9a-f]*\)",*$/answer_hash=\1/p' "$1"
    } | sort
}
c1=$(counts target/vcgp-bench/BENCH_stress_shard1.json)
c4=$(counts target/vcgp-bench/BENCH_stress_shard4.json)
if [ "$c1" != "$c4" ]; then
    echo "error: sharded run diverged from unsharded on the same seeded mix:" >&2
    echo "--shards 1: $c1" >&2
    echo "--shards 4: $c4" >&2
    exit 1
fi
echo "   ok: shard1/shard4 agree ($(echo $c1 | tr '\n' ' '))"

echo "== cache smoke (same seeded mix twice against ONE service process; the"
echo "   passes must answer bit-identically and pass 2 must hit the cache)"
./target/release/stress --gen gnm-connected:256:1024:7 --ops 300 --duration 30 \
    --seed 7 --mix mixed --shards 2 --repeat 2 --name cache --quiet
for p in 1 2; do
    ./target/release/stress --validate-report \
        "target/vcgp-bench/BENCH_stress_cache-pass$p.json"
done
hash_of() {
    sed -n 's/^[[:space:]]*"answer_hash": "\([0-9a-f]*\)",*$/\1/p' "$1"
}
h1=$(hash_of target/vcgp-bench/BENCH_stress_cache-pass1.json)
h2=$(hash_of target/vcgp-bench/BENCH_stress_cache-pass2.json)
if [ -z "$h1" ] || [ "$h1" != "$h2" ]; then
    echo "error: cached pass answered differently from the cold pass:" >&2
    echo "pass 1: ${h1:-missing}   pass 2: ${h2:-missing}" >&2
    exit 1
fi
hits=$(sed -n 's/.*"cache": {"hits": \([0-9]*\),.*/\1/p' \
    target/vcgp-bench/BENCH_stress_cache-pass2.json)
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "error: second pass over the same stream recorded no cache hits" >&2
    exit 1
fi
echo "   ok: answers identical ($h1), pass-2 cache hits: $hits"

echo "== mutation smoke (epoch writer live at --write-ratio 0 must stay"
echo "   bit-identical to the frozen shard4 run; a mixed read/write run must"
echo "   complete with zero errors, at least one epoch swap, and freshness"
echo "   metrics that pass --validate-report's count identities)"
./target/release/stress --gen gnm-connected:256:1024:7 --ops 400 --duration 30 \
    --seed 7 --mix mixed --shards 4 --write-ratio 0 --name mut0 --quiet
./target/release/stress --validate-report target/vcgp-bench/BENCH_stress_mut0.json
h4=$(hash_of target/vcgp-bench/BENCH_stress_shard4.json)
hm=$(hash_of target/vcgp-bench/BENCH_stress_mut0.json)
if [ -z "$hm" ] || [ "$hm" != "$h4" ]; then
    echo "error: --write-ratio 0 diverged from the frozen run:" >&2
    echo "frozen: ${h4:-missing}   write-ratio 0: ${hm:-missing}" >&2
    exit 1
fi
./target/release/stress --gen gnm-connected:256:1024:7 --ops 400 --duration 30 \
    --seed 7 --mix mixed --shards 4 --write-ratio 0.1 --mutation-seed 11 \
    --name mut --quiet
./target/release/stress --validate-report target/vcgp-bench/BENCH_stress_mut.json
swaps=$(sed -n 's/.*"epochs": {"epoch": [0-9]*, "swaps": \([0-9]*\),.*/\1/p' \
    target/vcgp-bench/BENCH_stress_mut.json)
applied=$(sed -n 's/.*"applied": \([0-9]*\),.*/\1/p' \
    target/vcgp-bench/BENCH_stress_mut.json)
if [ -z "$swaps" ] || [ "$swaps" -eq 0 ] || [ -z "$applied" ] || [ "$applied" -eq 0 ]; then
    echo "error: mixed read/write run installed no epochs" >&2
    echo "       (swaps=${swaps:-missing}, applied=${applied:-missing})" >&2
    exit 1
fi
echo "   ok: write-ratio 0 bit-identical ($hm); mixed run: $swaps swaps," \
    "$applied mutations applied"

echo "== replica smoke (one seeded hot-shard stream at --replicas 1 and 2;"
echo "   answers must be bit-identical, and the replicated run's hot queue"
echo "   high-water mark must be strictly lower at equal offered load)"
# Range placement + the hotspot mix + a zipfian key draw concentrate the
# stream on shard 0; 8 synchronous clients against 1 executor per core
# make its queue the bottleneck. Two replicas split that backlog.
for r in 1 2; do
    VCGP_PARTITIONING=range ./target/release/stress --gen gnm-connected:512:2048:7 \
        --ops 600 --duration 30 --seed 7 --mix hotspot --zipf-s 1.2 \
        --shards 2 --replicas "$r" --routing least-loaded \
        --executors 1 --clients 8 --name "repl$r" --quiet
    ./target/release/stress --validate-report "target/vcgp-bench/BENCH_stress_repl$r.json"
done
r1=$(counts target/vcgp-bench/BENCH_stress_repl1.json)
r2=$(counts target/vcgp-bench/BENCH_stress_repl2.json)
if [ "$r1" != "$r2" ]; then
    echo "error: replicated run diverged from the single-replica run:" >&2
    echo "--replicas 1: $r1" >&2
    echo "--replicas 2: $r2" >&2
    exit 1
fi
# Shard-level rows are the only place "queue_hwm" follows "cache_hits", so
# this extracts the hottest shard's high-water mark (not a replica row's).
hot_hwm() {
    grep -o '"cache_hits": [0-9]*, "queue_hwm": [0-9]*' "$1" |
        awk '{ if ($NF > max) max = $NF } END { print max + 0 }'
}
q1=$(hot_hwm target/vcgp-bench/BENCH_stress_repl1.json)
q2=$(hot_hwm target/vcgp-bench/BENCH_stress_repl2.json)
if [ "$q2" -ge "$q1" ]; then
    echo "error: --replicas 2 did not relieve the hot shard:" >&2
    echo "       hot queue hwm $q2 (R=2) vs $q1 (R=1) at equal offered load" >&2
    exit 1
fi
echo "   ok: answers identical, hot queue hwm $q1 (R=1) -> $q2 (R=2)"

echo "== scenario smoke (checked-in 2-phase spec — zipfian warmup, measured"
echo "   phase with analytics + writes — on a replicated sharded service;"
echo "   --validate-report enforces the per-phase and per-replica interval"
echo "   fold identities, and both phases must appear in the report)"
./target/release/stress --gen gnm-connected:256:1024:7 \
    --scenario examples/scenarios/smoke.scn --shards 2 --replicas 2 \
    --name scn --quiet
./target/release/stress --validate-report target/vcgp-bench/BENCH_stress_scn.json
nphases=$(grep -o '"phase": "[a-z]*"' target/vcgp-bench/BENCH_stress_scn.json | wc -l)
if [ "$nphases" -ne 2 ]; then
    echo "error: scenario report has $nphases phase rows (expected 2)" >&2
    exit 1
fi
echo "   ok: both phases reported, interval sums fold to totals"

echo "== scenario desugar gate (legacy preset flags and their scenario-file"
echo "   desugaring must report identical counts and answer hashes)"
./target/release/stress --gen gnm-connected:256:1024:7 --ops 400 --duration 30 \
    --seed 7 --mix mixed --shards 2 --name desugar-legacy --quiet
./target/release/stress --gen gnm-connected:256:1024:7 --seed 7 --shards 2 \
    --scenario examples/scenarios/mixed.scn --name desugar-scn --quiet
dl=$(counts target/vcgp-bench/BENCH_stress_desugar-legacy.json)
ds=$(counts target/vcgp-bench/BENCH_stress_desugar-scn.json)
if [ "$dl" != "$ds" ]; then
    echo "error: scenario desugaring diverged from the legacy preset flags:" >&2
    echo "legacy:   $dl" >&2
    echo "scenario: $ds" >&2
    exit 1
fi
echo "   ok: desugaring exact ($(echo $dl | tr '\n' ' '))"

echo "tier-1 verify: OK"
