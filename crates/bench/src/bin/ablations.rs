//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **BSP parameter sensitivity** — the paper assumes `g = O(1)` and
//!    notes "for higher values of g, the time-processor product would be
//!    even higher"; we sweep `g` and `L` and check the Table 1 verdicts'
//!    stability.
//! 2. **Combiner effect** — delivered-message reduction and wall time for
//!    the combiner-friendly rows.
//! 3. **Worker scaling** — wall time of a message-heavy row across worker
//!    counts.
//!
//! Usage: `ablations`

use std::time::Instant;
use vcgp_core::{BspCostModel, Scale, Workload};
use vcgp_graph::generators;
use vcgp_pregel::PregelConfig;

fn main() {
    cost_model_sensitivity();
    combiner_effect();
    worker_scaling();
    gas_vs_bsp();
    partitioning_balance();
    finish_serially();
}

/// The "finishing computations serially" optimization \[20\]: hand the long
/// low-activity superstep tail to the coordinator.
fn finish_serially() {
    println!("\n== Ablation 6: finishing computations serially (Hash-Min) ==\n");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12} | {:>12}",
        "n", "plain steps", "fcs steps", "plain TPP", "fcs TPP"
    );
    let model = BspCostModel::default();
    let cfg = PregelConfig::default().with_workers(4);
    for n in [2_000usize, 8_000, 32_000] {
        // Permuted-id path: a one-vertex frontier for most of the run.
        let mut positions: Vec<u32> = (0..n as u32).collect();
        vcgp_graph::SplitMix64::new(17).shuffle(&mut positions);
        let mut b = vcgp_graph::GraphBuilder::new(n);
        for w in positions.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let plain = vcgp_algorithms::cc_hashmin::run(&g, &cfg);
        let fcs = vcgp_algorithms::cc_hashmin::run_with_fcs(&g, 64, &cfg);
        assert_eq!(plain.components, fcs.components);
        println!(
            "{n:>8} | {:>12} | {:>12} | {:>12.3e} | {:>12.3e}",
            plain.stats.supersteps(),
            fcs.stats.supersteps(),
            model.time_processor_product(&plain.stats),
            model.time_processor_product(&fcs.stats),
        );
    }
    println!(
        "\nonce the frontier narrows, every further superstep pays the L\n\
         floor and the engine sweep for a handful of active vertices —\n\
         cutting over to a serial finish removes the entire tail [20]."
    );
}

/// Hash vs. range partitioning on a skewed graph: the strategy moves the
/// BSP `max_i` terms directly.
fn partitioning_balance() {
    use vcgp_pregel::Partitioning;
    println!("\n== Ablation 5: partitioning and load balance (PageRank on R-MAT) ==\n");
    println!(
        "{:>8} | {:>6} | {:>12} | {:>12} | imbalance (max/avg h)",
        "n", "part", "T (model)", "TPP"
    );
    let model = BspCostModel::default();
    for scale in [12u32, 14] {
        let n = 1usize << scale;
        let und = generators::rmat(scale, 8 * n, 13);
        // Relabel by descending degree (the usual CSR reordering): hubs
        // get consecutive low ids, so the strategies genuinely differ.
        // (Raw R-MAT skew lives in the id *bit pattern* — `v mod W` is
        // exactly as imbalanced as ranges there.)
        let mut order: Vec<u32> = und.vertices().collect();
        order.sort_by_key(|&v| std::cmp::Reverse(und.out_degree(v)));
        let mut new_id = vec![0u32; und.num_vertices()];
        for (rank, &v) in order.iter().enumerate() {
            new_id[v as usize] = rank as u32;
        }
        let mut b = vcgp_graph::GraphBuilder::directed(und.num_vertices());
        for (u, v, _) in und.edges() {
            let (u, v) = (new_id[u as usize], new_id[v as usize]);
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
        let g = b.build();
        for (name, strategy) in [("hash", Partitioning::Hash), ("range", Partitioning::Range)] {
            let cfg = PregelConfig::default()
                .with_workers(4)
                .with_partitioning(strategy);
            let r = vcgp_algorithms::pagerank::run(&g, 0.85, 20, &cfg);
            // Imbalance: the max worker h over the average, averaged over
            // message-bearing supersteps.
            let mut imbalance = 0.0;
            let mut counted = 0usize;
            for s in &r.stats.superstep_stats {
                let hs: Vec<u64> = s.workers.iter().map(|w| w.sent.max(w.received)).collect();
                let max = *hs.iter().max().unwrap_or(&0);
                let avg = hs.iter().sum::<u64>() as f64 / hs.len().max(1) as f64;
                if avg > 0.0 {
                    imbalance += max as f64 / avg;
                    counted += 1;
                }
            }
            println!(
                "{:>8} | {:>6} | {:>12.3e} | {:>12.3e} | {:.3}",
                g.num_vertices(),
                name,
                model.total_time(&r.stats),
                model.time_processor_product(&r.stats),
                imbalance / counted.max(1) as f64
            );
        }
    }
    println!(
        "\nR-MAT hubs cluster at low ids: range partitioning piles them onto\n\
         worker 0 and the max-based BSP terms absorb the imbalance; hash\n\
         partitioning spreads them. The paper's 'imbalanced workload'\n\
         efficiency issue (§1), reproduced at the cost-model level."
    );
}

/// Re-derives the more-work ratio under different (g, L) — the verdicts
/// must not hinge on the default parameters.
fn cost_model_sensitivity() {
    println!("== Ablation 1: BSP parameter sensitivity (rows 3 and 8) ==\n");
    let cfg = PregelConfig::default().with_workers(4);
    println!(
        "{:<10} | {:>6} | {:>6} | {:>14} | {:>14} | ratio growth",
        "row", "g", "L", "ratio(small)", "ratio(large)"
    );
    for workload in [Workload::CcHashMin, Workload::EulerTour] {
        let sizes = workload.sizes(Scale::Full);
        let small = workload.measure(sizes[0], &cfg);
        let large = workload.measure(*sizes.last().unwrap(), &cfg);
        for (g, l) in [(1.0, 1.0), (4.0, 1.0), (16.0, 1.0), (1.0, 100.0)] {
            let model = BspCostModel::new(g, l);
            let r_small = small.tpp_under(&model) / small.seq_work.max(1.0);
            let r_large = large.tpp_under(&model) / large.seq_work.max(1.0);
            println!(
                "{:<10} | {:>6.0} | {:>6.0} | {:>14.2} | {:>14.2} | {:.2}x",
                format!("row {}", workload.row()),
                g,
                l,
                r_small,
                r_large,
                r_large / r_small
            );
        }
    }
    println!(
        "\nratio *growth* (the verdict signal) is invariant to g and L —\n\
         scaling the model parameters rescales both ends of the sweep.\n"
    );
}

/// Measures how much sender-side combining shrinks delivered messages.
fn combiner_effect() {
    println!("== Ablation 2: combiner effect (Hash-Min on dense G(n, m)) ==\n");
    println!(
        "{:>8} | {:>12} | {:>12} | reduction",
        "n", "sent", "delivered"
    );
    let cfg = PregelConfig::default().with_workers(4);
    for n in [1_000usize, 4_000, 16_000] {
        let g = generators::gnm_connected(n, 8 * n, 5);
        let r = vcgp_algorithms::cc_hashmin::run(&g, &cfg);
        let sent = r.stats.total_messages();
        let delivered: u64 = r
            .stats
            .superstep_stats
            .iter()
            .map(|s| s.messages_delivered)
            .sum();
        println!(
            "{n:>8} | {sent:>12} | {delivered:>12} | {:.1}x",
            sent as f64 / delivered.max(1) as f64
        );
    }
    println!("\nthe min-combiner collapses all per-vertex traffic to one slot.\n");
}

/// Wall-time scaling of the engine across worker counts.
fn worker_scaling() {
    println!("== Ablation 3: worker scaling (PageRank, 30 rounds) ==\n");
    let g = generators::rmat(14, 131_072, 9);
    println!(
        "graph: n = {}, m = {}\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!("{:>8} | {:>10} | speedup", "workers", "wall (ms)");
    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        let cfg = PregelConfig::default().with_workers(workers);
        let t0 = Instant::now();
        let _ = vcgp_algorithms::pagerank::run(&g, 0.85, 30, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let speedup = base.get_or_insert(ms).max(1e-9) / ms * 1.0;
        println!("{workers:>8} | {ms:>10.1} | {speedup:.2}x");
    }
    println!(
        "\nspeedup saturates well below linear — single-machine BSP overhead\n\
         echoes the McSherry et al. 'scalability at what COST' observation\n\
         the paper cites [14].\n"
    );
}

/// Synchronous Pregel PageRank vs. residual-push GAS PageRank: the
/// adaptive-activation benefit of the post-Pregel models the paper's
/// introduction surveys (GraphLab / PowerGraph).
fn gas_vs_bsp() {
    println!("== Ablation 4: synchronous Pregel vs. adaptive GAS (PageRank) ==\n");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12} | {:>12}",
        "n", "bsp (K=30)", "gas @1e-3", "gas @1e-5", "gas @1e-7"
    );
    let cfg = PregelConfig::default().with_workers(4);
    for scale in [10u32, 12, 14] {
        let n = 1usize << scale;
        let g = {
            // Directed symmetric R-MAT for realistic skew.
            let und = generators::rmat(scale, 8 * n, 11);
            let mut b = vcgp_graph::GraphBuilder::directed(und.num_vertices());
            for (u, v, _) in und.edges() {
                b.add_edge(u, v);
                b.add_edge(v, u);
            }
            b.build()
        };
        let bsp = vcgp_algorithms::pagerank::run(&g, 0.85, 30, &cfg);
        let gas_at = |tol: f64| {
            let (_, stats) = vcgp_pregel::gas::run_pagerank_gas(&g, 0.85, tol, &cfg);
            stats.total_messages()
        };
        println!(
            "{:>8} | {:>12} | {:>12} | {:>12} | {:>12}",
            g.num_vertices(),
            bsp.stats.total_messages(),
            gas_at(1e-3),
            gas_at(1e-5),
            gas_at(1e-7),
        );
    }
    println!(
        "\nsynchronous BSP spends K·m messages for a fixed K regardless of\n\
         convergence; residual-push GAS spends messages proportional to the\n\
         accuracy it buys — matching BSP-30's budget at the loose tolerance\n\
         and scaling smoothly as the tolerance tightens, with converged\n\
         vertices dropping out instead of re-broadcasting every round."
    );
}
