//! Executable reproductions of the paper's Figures 1-5.
//!
//! The figures in the paper are algorithm illustrations, not measurement
//! plots; each subcommand re-enacts the depicted structure on the paper's
//! example (or a minimal stand-in) and prints the trace.
//!
//! Usage: `figures [fig1|fig2|fig3|fig4|fig5|all]`

use vcgp_algorithms::{cc_sv, diameter, euler_tour, list_ranking, mst_boruvka, tree_order};
use vcgp_graph::{generators, GraphBuilder, INVALID_VERTEX};
use vcgp_pregel::PregelConfig;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "all" => {
            fig1();
            fig2();
            fig3();
            fig4();
            fig5();
        }
        other => {
            eprintln!("unknown figure {other:?}; use fig1..fig5 or all");
            std::process::exit(1);
        }
    }
}

/// Figure 1: the vertex-centric diameter algorithm — per-superstep message
/// counts and the growth of one vertex's history set.
fn fig1() {
    println!("== Figure 1: eccentricity propagation for diameter computation ==\n");
    let g = generators::grid(3, 4);
    let cfg = PregelConfig::single_worker();
    let r = diameter::run(&g, &cfg);
    println!(
        "graph: 3x4 grid, n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "computed diameter δ = {} (supersteps = δ + 2 = {})",
        r.diameter,
        r.stats.supersteps()
    );
    println!("\nsuperstep | messages sent | active vertices");
    for (s, stats) in r.stats.superstep_stats.iter().enumerate() {
        println!("{s:>9} | {:>13} | {:>15}", stats.messages_sent, stats.active);
    }
    println!("\nvertex 0's history set (originator -> first-arrival hop):");
    let mut entries: Vec<(u32, u32)> = r.distances[0].iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    for chunk in entries.chunks(6) {
        let line: Vec<String> = chunk.iter().map(|(o, d)| format!("{o}->{d}")).collect();
        println!("  {}", line.join("  "));
    }
    println!();
}

/// Figure 2: the S-V forest structure — final pointers form stars rooted at
/// each component's minimum vertex.
fn fig2() {
    println!("== Figure 2: S-V forest structure (stars at convergence) ==\n");
    let mut b = GraphBuilder::new(10);
    // Two components: {0..5} and {6..9}.
    for (u, v) in [(5, 3), (3, 1), (1, 0), (0, 4), (4, 2), (8, 7), (7, 6), (6, 9)] {
        b.add_edge(u, v);
    }
    let g = b.build();
    let r = cc_sv::run(&g, &PregelConfig::single_worker());
    println!(
        "graph edges: {:?}",
        g.edges().map(|(u, v, _)| (u, v)).collect::<Vec<_>>()
    );
    println!("final D[v] (every tree is a star rooted at its component minimum):");
    for (v, &d) in r.components.iter().enumerate() {
        println!("  D[{v}] = {d}");
    }
    println!(
        "supersteps: {} ({} S-V rounds of 16 phases)\n",
        r.stats.supersteps(),
        r.stats.supersteps() / 16
    );
}

/// Figure 3: tree hooking, star hooking, shortcutting — superstep counts
/// grow logarithmically on paths.
fn fig3() {
    println!("== Figure 3: S-V hooking/shortcutting — O(log n) rounds ==\n");
    println!("{:>8} | {:>10} | {:>6} | log2(n)", "n (path)", "supersteps", "rounds");
    for exp in [6u32, 8, 10, 12] {
        let n = 1usize << exp;
        let g = generators::path(n);
        let r = cc_sv::run(&g, &PregelConfig::single_worker());
        println!(
            "{n:>8} | {:>10} | {:>6} | {exp:>7}",
            r.stats.supersteps(),
            r.stats.supersteps() / 16
        );
    }
    println!();
}

/// Figure 4: Euler tour of the paper's example tree and list ranking.
fn fig4() {
    println!("== Figure 4: Euler tour and list ranking ==\n");
    // The tree of Figure 4(a): 0 - {1, 5, 6}, 1 - {2, 3, 4}.
    let mut b = GraphBuilder::new(7);
    for (u, v) in [(0, 1), (0, 5), (0, 6), (1, 2), (1, 3), (1, 4)] {
        b.add_edge(u, v);
    }
    let tree = b.build();
    let cfg = PregelConfig::single_worker();
    let tour = euler_tour::run(&tree, 0, &cfg);
    println!("Euler tour from vertex 0 (2(n-1) = {} arcs):", tour.tour.len());
    let arcs: Vec<String> = tour.tour.iter().map(|(u, v)| format!("({u},{v})")).collect();
    println!("  {}\n", arcs.join(" -> "));

    let orders = tree_order::run(&tree, 0, &cfg);
    println!("vertex | pre | post | nd (subtree size) | parent");
    for v in 0..7usize {
        let p = orders.parent[v];
        println!(
            "{v:>6} | {:>3} | {:>4} | {:>17} | {}",
            orders.pre[v],
            orders.post[v],
            orders.nd[v],
            if p == INVALID_VERTEX {
                "-".to_string()
            } else {
                p.to_string()
            }
        );
    }

    // Figure 4(b): list ranking by pointer jumping on a scrambled list.
    let preds = [3u32, 0, 4, INVALID_VERTEX, 1];
    let vals = [1u64; 5];
    let r = list_ranking::run(&preds, &vals, &cfg);
    println!(
        "\nlist ranking (pred = {preds:?}, val = 1): sums = {:?}",
        r.sums
    );
    println!("supersteps: {} (2 per doubling round)\n", r.stats.supersteps());
}

/// Figure 5: the conjoined tree of min-edge picking in Borůvka's MST.
fn fig5() {
    println!("== Figure 5: conjoined tree and supervertex in Borůvka MST ==\n");
    // Weights chosen so vertices 2 and 3 pick each other (the 2-cycle) and
    // the rest hang off the two trees — the paper's conjoined-tree shape
    // (its example's supervertex is 5; here it is min(2, 3) = 2).
    let mut b = GraphBuilder::new(6);
    b.add_weighted_edge(0, 1, 4.0);
    b.add_weighted_edge(1, 2, 3.0);
    b.add_weighted_edge(2, 3, 1.0);
    b.add_weighted_edge(3, 4, 2.0);
    b.add_weighted_edge(4, 5, 5.0);
    let g = b.build();
    println!("weighted path: 0-1 (4), 1-2 (3), 2-3 (1), 3-4 (2), 4-5 (5)");
    println!("min-edge picks: 0 picks (0,1); 1 picks (1,2); 2 <-> 3 form the 2-cycle;");
    println!("4 picks (3,4); 5 picks (4,5)  =>  conjoined tree with supervertex 2\n");
    let r = mst_boruvka::run(&g, &PregelConfig::single_worker());
    println!("MST edges: {:?}", r.edges);
    println!("total weight: {}", r.total_weight);
    println!("supersteps: {}\n", r.stats.supersteps());
}
