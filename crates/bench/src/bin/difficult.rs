//! §3.8 — "Difficult graph problems for the vertex-centric model" — as
//! measurements. The section makes four qualitative claims; the two that
//! are quantifiable with the systems in this workspace are demonstrated
//! here:
//!
//! 1. ad-hoc queries (s-t reachability) force the model to run the whole
//!    frontier of every level even with master-side early termination,
//!    while a sequential bidirectional BFS touches a neighborhood;
//! 2. neighborhood-centric analytics (triangles / clustering coefficient)
//!    require shipping adjacency lists — per-vertex traffic `Θ(d²)`
//!    against the BPPA `O(d)` budget.
//!
//! Usage: `difficult`

use vcgp_graph::generators;
use vcgp_pregel::PregelConfig;

fn main() {
    adhoc_queries();
    neighborhood_analytics();
}

fn adhoc_queries() {
    println!("== §3.8(1): ad-hoc s-t reachability — footprint comparison ==\n");
    println!(
        "{:>8} | {:>5} | {:>12} | {:>12} | {:>9}",
        "n", "dist", "vc visited", "seq visited", "blow-up"
    );
    let cfg = PregelConfig::default().with_workers(4);
    for exp in [10u32, 12, 14] {
        let n = 1usize << exp;
        let g = generators::gnm_connected(n, 4 * n, 7);
        // A "local" query: the first vertex at exactly three hops from s.
        let s = 0u32;
        let levels = vcgp_graph::traversal::bfs_levels(&g, s);
        let t = levels
            .iter()
            .position(|&d| d == 3)
            .expect("dense random graphs have 3-hop vertices") as u32;
        let vc = vcgp_algorithms::st_reachability::run(&g, s, t, &cfg);
        let sq = vcgp_sequential::reachability::st_reachability(&g, s, t);
        println!(
            "{n:>8} | {:>5} | {:>12} | {:>12} | {:>8.1}x",
            vc.distance.unwrap_or(u32::MAX),
            vc.visited,
            sq.visited,
            vc.visited as f64 / sq.visited.max(1) as f64
        );
    }
    println!(
        "\nthe synchronous wave expands whole levels; the sequential engine\n\
         stops at the meeting frontier — the paper's \"operates on the\n\
         entire graph\" complaint, measured.\n"
    );
}

fn neighborhood_analytics() {
    println!("== §3.8(2): triangle counting — neighborhood shipping cost ==\n");
    println!(
        "{:>8} | {:>9} | {:>12} | {:>12} | {:>14} | {:>10}",
        "n", "triangles", "vc messages", "seq work", "max msgs/vertex", "max degree"
    );
    let cfg = PregelConfig::default().with_workers(4).with_per_vertex_tracking();
    for scale in [9u32, 10, 11] {
        let n = 1usize << scale;
        let g = generators::rmat(scale, 8 * n, 3);
        let vc = vcgp_algorithms::triangle_counting::run(&g, &cfg);
        let sq = vcgp_sequential::triangles::triangles(&g);
        assert_eq!(vc.total, sq.total, "implementations must agree");
        let pv = vc.stats.per_vertex.as_ref().unwrap();
        let max_recv = pv.max_received.iter().max().copied().unwrap_or(0);
        println!(
            "{:>8} | {:>9} | {:>12} | {:>12} | {:>14} | {:>10}",
            g.num_vertices(),
            vc.total,
            vc.stats.total_messages(),
            sq.work,
            max_recv,
            g.max_degree()
        );
    }
    println!(
        "\nhub vertices receive far more than d(v) messages (their whole\n\
         2-hop neighborhood materializes in their inbox) — the §3.8 memory\n\
         and traffic blow-up, measured on skewed R-MAT graphs."
    );
}
