//! Regenerates the paper's Table 1: for every workload row, sweep the
//! deterministic input family, measure the vertex-centric time-processor
//! product and the sequential operation count, fit complexity classes, and
//! print the verdict table plus per-row detail and a CSV dump.
//!
//! Usage: `table1 [--quick] [--workers N] [--row K]`

use vcgp_bench::Stopwatch;
use vcgp_core::{benchmark, report, Scale, Workload};
use vcgp_pregel::PregelConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let workers = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers takes a number"))
        .unwrap_or(4);
    let only_row: Option<u8> = arg_value(&args, "--row").map(|v| v.parse().expect("--row takes 1-20"));
    let config = PregelConfig::default().with_workers(workers);

    println!(
        "# Table 1 — vertex-centric vs. sequential ({} scale, p = {workers}, g = 1, L = 1)\n",
        if quick { "quick" } else { "full" }
    );
    let mut rows = Vec::new();
    for w in Workload::ALL {
        if let Some(r) = only_row {
            if w.row() != r {
                continue;
            }
        }
        let watch = Stopwatch::start();
        let row = benchmark::run_row(w, scale, &config);
        eprintln!(
            "row {:>2} {:<44} {:>6.1}s  more-work {} (paper {})  bppa {} (paper {}){}",
            w.row(),
            w.name(),
            watch.secs(),
            if row.more_work.yes { "Yes" } else { "No " },
            if w.expected_more_work() { "Yes" } else { "No " },
            if row.bppa.is_bppa() { "Yes" } else { "No " },
            if w.expected_bppa() { "Yes" } else { "No " },
            if row.matches_paper() { "" } else { "   << MISMATCH" },
        );
        rows.push(row);
    }

    println!("{}", report::render_table1(&rows));
    println!("\n## Per-row detail\n");
    for r in &rows {
        println!("{}", report::render_row_detail(r));
    }
    println!("\n## CSV\n\n```\n{}```", report::render_csv(&rows));

    let matching = rows.iter().filter(|r| r.matches_paper()).count();
    println!(
        "\n**{matching}/{} rows reproduce the paper's verdicts.**",
        rows.len()
    );
}

fn arg_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
