//! Scaling sweeps for the quantities each Table 1 row's analysis hinges
//! on: superstep counts, message totals, and the TPP/sequential ratio.
//!
//! Complements `table1` (which prints the verdict table) with the raw
//! series one would plot. Usage: `sweeps [--quick] [--workers N]`.

use vcgp_bench::Stopwatch;
use vcgp_core::{Scale, Workload};
use vcgp_pregel::PregelConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--workers takes a number"))
        .unwrap_or(4);
    let config = PregelConfig::default().with_workers(workers);

    println!("workload,size,n,m,supersteps,messages,tpp,seq_work,ratio");
    for w in Workload::ALL {
        let watch = Stopwatch::start();
        for size in w.sizes(scale) {
            let m = w.measure(size, &config);
            println!(
                "{},{},{},{},{},{},{:.1},{:.1},{:.4}",
                w.name().replace(',', ";"),
                size,
                m.params.n,
                m.params.m,
                m.supersteps,
                m.messages,
                m.tpp,
                m.seq_work,
                m.tpp / m.seq_work.max(1.0)
            );
        }
        eprintln!("row {:>2} {:<44} {:>6.1}s", w.row(), w.name(), watch.secs());
    }
}
