//! Benchmark harness support for the `vcgp` workspace.
//!
//! The binaries regenerate the paper's artifacts:
//!
//! * `table1` — the complexity benchmark (Table 1), printed as markdown
//!   with per-row measurement detail and a CSV dump;
//! * `figures` — executable reproductions of the paper's Figures 1-5
//!   (algorithm illustrations);
//! * `sweeps` — per-row scaling sweeps (supersteps, messages, TPP ratio)
//!   for the quantities each row's analysis hinges on.
//!
//! The timing benches (`benches/`, plain binaries on the in-tree
//! `vcgp-testkit` harness) time the vertex-centric runs against their
//! sequential baselines at Quick scale and emit `BENCH_*.json` / `.md`
//! reports.

use std::time::Instant;

/// Wall-clock helper for harness progress lines.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}
