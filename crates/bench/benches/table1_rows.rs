//! Wall-time benches, one group per Table 1 row: the vertex-centric
//! implementation versus its sequential baseline on the row's input family
//! at quick sizes.
//!
//! These complement the deterministic operation-count benchmark (`table1`
//! binary): the operation counts drive the paper's verdicts; the wall
//! times sanity-check that the measured work models real cost.
//!
//! Runs as a plain binary (`harness = false`) on the in-tree
//! `vcgp-testkit` timing harness; emits `BENCH_table1_rows.json` / `.md`.

use std::time::Duration;
use vcgp_core::{Scale, Workload};
use vcgp_pregel::PregelConfig;
use vcgp_testkit::bench::{BenchmarkId, Harness};

fn main() {
    let config = PregelConfig::default().with_workers(2);
    let mut harness = Harness::new("table1_rows");
    for w in Workload::ALL {
        let mut group = harness.group(&format!("row{:02}_{}", w.row(), slug(w)));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for size in w.sizes(Scale::Quick) {
            group.bench_with_input(BenchmarkId::new("measure", size), &size, |b, &s| {
                b.iter(|| w.measure(s, &config));
            });
        }
        group.finish();
    }
    harness.finish().expect("writing bench reports");
}

fn slug(w: Workload) -> &'static str {
    match w {
        Workload::Diameter => "diameter",
        Workload::PageRank => "pagerank",
        Workload::CcHashMin => "cc_hashmin",
        Workload::CcSv => "cc_sv",
        Workload::Bcc => "bcc",
        Workload::Wcc => "wcc",
        Workload::Scc => "scc",
        Workload::EulerTour => "euler_tour",
        Workload::TreeOrder => "tree_order",
        Workload::SpanningTree => "spanning_tree",
        Workload::Mst => "mst",
        Workload::Coloring => "coloring",
        Workload::Matching => "matching",
        Workload::BipartiteMatching => "bipartite",
        Workload::Betweenness => "betweenness",
        Workload::Sssp => "sssp",
        Workload::Apsp => "apsp",
        Workload::GraphSim => "graph_sim",
        Workload::DualSim => "dual_sim",
        Workload::StrongSim => "strong_sim",
    }
}
