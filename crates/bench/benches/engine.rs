//! Engine microbenches: superstep overhead, message throughput, combiner
//! effect, and worker scaling — the substrate costs underneath every
//! Table 1 row.
//!
//! Runs as a plain binary (`harness = false`) on the in-tree
//! `vcgp-testkit` timing harness; emits `BENCH_engine.json` / `.md`.

use std::time::Duration;
use vcgp_graph::generators;
use vcgp_pregel::{Context, PregelConfig, VertexProgram};
use vcgp_testkit::bench::{BenchmarkId, Harness, Throughput};

/// Spins `rounds` empty supersteps: measures pure superstep overhead.
struct Spin {
    rounds: u64,
}

impl VertexProgram for Spin {
    type Value = u32;
    type Message = ();
    fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
        if ctx.superstep() >= self.rounds {
            ctx.vote_to_halt();
        }
    }
}

/// Floods one message per edge per superstep: measures message throughput.
struct Flood {
    rounds: u64,
}

impl VertexProgram for Flood {
    type Value = u64;
    type Message = u64;
    fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u64]) {
        *ctx.value_mut() += msgs.iter().sum::<u64>();
        if ctx.superstep() < self.rounds {
            ctx.send_to_all_out_neighbors(1);
        }
        ctx.vote_to_halt();
    }
}

/// Same as [`Flood`] but with a sum combiner.
struct FloodCombined {
    rounds: u64,
}

impl VertexProgram for FloodCombined {
    type Value = u64;
    type Message = u64;
    fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u64]) {
        *ctx.value_mut() += msgs.iter().sum::<u64>();
        if ctx.superstep() < self.rounds {
            ctx.send_to_all_out_neighbors(1);
        }
        ctx.vote_to_halt();
    }
    fn combiner(&self) -> Option<fn(&mut u64, u64)> {
        Some(|acc, m| *acc += m)
    }
}

fn main() {
    let mut harness = Harness::new("engine");
    let mut group = harness.group("engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let g = generators::gnm_connected(10_000, 40_000, 7);
    group.bench_function("superstep_overhead_10k_vertices_20_steps", |b| {
        b.iter(|| vcgp_pregel::run(&Spin { rounds: 20 }, &g, &PregelConfig::single_worker()));
    });
    group.throughput(Throughput::Elements(40_000 * 2 * 5));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("flood_40k_edges_5_rounds_workers", workers),
            &workers,
            |b, &w| {
                let cfg = PregelConfig::default().with_workers(w);
                b.iter(|| vcgp_pregel::run(&Flood { rounds: 5 }, &g, &cfg));
            },
        );
    }
    group.bench_function("flood_combined_40k_edges_5_rounds", |b| {
        let cfg = PregelConfig::default().with_workers(2);
        b.iter(|| vcgp_pregel::run(&FloodCombined { rounds: 5 }, &g, &cfg));
    });
    group.finish();
    harness.finish().expect("writing bench reports");
}
