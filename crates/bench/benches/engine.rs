//! Engine benchmark suite: the message-plane costs underneath every
//! Table 1 row and every serving-layer request.
//!
//! Measures supersteps/sec (an empty-compute spin) and messages/sec for
//! three canonical workloads across worker counts:
//!
//! * **PageRank** (no combiner) — one materialized message per edge per
//!   iteration: the pure message-throughput ceiling;
//! * **SSSP** (min combiner) — Bellman-Ford relaxation on a weighted graph:
//!   combining-heavy with an evolving frontier;
//! * **WCC** (min combiner) — Hash-Min over both edge directions: dense
//!   early supersteps where combining collapses most traffic.
//!
//! Runs as a plain binary (`harness = false`) on the in-tree `vcgp-testkit`
//! timing harness; emits `BENCH_engine.json` / `.md` into
//! `target/vcgp-bench/` so successive runs leave a comparable trajectory
//! (committed snapshots live in `bench-results/`, see EXPERIMENTS.md).
//!
//! Modes:
//! * `VCGP_ENGINE_BENCH_PROFILE=smoke` — tiny graphs and budgets for the
//!   `scripts/verify.sh` gate;
//! * `--validate <path>` — instead of benchmarking, checks that an emitted
//!   `BENCH_engine*.json` is well-formed and complete (exit 1 otherwise).

use std::time::Duration;
use vcgp_algorithms::{sssp, wcc};
use vcgp_graph::generators;
use vcgp_pregel::{Context, PregelConfig, VertexProgram};
use vcgp_testkit::bench::{BenchmarkId, Harness, Throughput};
use vcgp_testkit::json;

/// Spins `rounds` supersteps with no messages: pure superstep overhead.
struct Spin {
    rounds: u64,
}

impl VertexProgram for Spin {
    type Value = u32;
    type Message = ();
    fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
        if ctx.superstep() >= self.rounds {
            ctx.vote_to_halt();
        }
    }
}

/// PageRank without a combiner: every superstep ships one message per arc,
/// none of which collapse — the materialization-bound workload.
struct PageRankNoCombiner {
    iterations: u64,
}

impl VertexProgram for PageRankNoCombiner {
    type Value = f64;
    type Message = f64;
    fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[f64]) {
        let n = ctx.num_vertices() as f64;
        if ctx.superstep() == 0 {
            *ctx.value_mut() = 1.0 / n;
        } else {
            let sum: f64 = msgs.iter().sum();
            *ctx.value_mut() = 0.15 / n + 0.85 * sum;
        }
        if ctx.superstep() < self.iterations {
            let deg = ctx.out_neighbors().len();
            if deg > 0 {
                let share = *ctx.value() / deg as f64;
                ctx.send_to_all_out_neighbors(share);
            }
        } else {
            ctx.vote_to_halt();
        }
    }
}

struct Profile {
    name: &'static str,
    vertices: usize,
    edges: usize,
    pagerank_iterations: u64,
    spin_rounds: u64,
    workers: &'static [usize],
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

const FULL: Profile = Profile {
    name: "full",
    vertices: 10_000,
    edges: 40_000,
    pagerank_iterations: 10,
    spin_rounds: 50,
    workers: &[1, 2, 4],
    sample_size: 10,
    warm_up: Duration::from_millis(200),
    measurement: Duration::from_millis(700),
};

// Smoke must be big enough that per-superstep fixed costs amortize —
// at 600 vertices the W=4 bookkeeping overhead dominated the message
// work and the verify.sh scaling gate measured bookkeeping, not the
// message plane. 2500/10000 keeps the run under a few seconds while
// holding the W=4/W=1 ratio stable across reruns.
const SMOKE: Profile = Profile {
    name: "smoke",
    vertices: 2_500,
    edges: 10_000,
    pagerank_iterations: 4,
    spin_rounds: 10,
    workers: &[1, 2, 4],
    sample_size: 5,
    warm_up: Duration::from_millis(30),
    measurement: Duration::from_millis(150),
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--validate") {
        let path = args.get(pos + 1).unwrap_or_else(|| {
            eprintln!("usage: engine --validate <BENCH_engine.json>");
            std::process::exit(2);
        });
        let path = resolve_report_path(path);
        match validate(&path) {
            Ok(summary) => println!("{path}: ok ({summary})"),
            Err(e) => {
                eprintln!("{path}: INVALID engine bench report: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let profile = match std::env::var("VCGP_ENGINE_BENCH_PROFILE").as_deref() {
        Ok("smoke") => &SMOKE,
        _ => &FULL,
    };
    run_benches(profile);
}

/// Algorithm-level message total and superstep count of one workload run
/// (identical for every worker count, so measured once at W=1).
fn run_card<F: Fn(&PregelConfig) -> vcgp_pregel::RunStats>(run: F) -> (u64, u64) {
    let stats = run(&PregelConfig::single_worker());
    (stats.total_messages(), stats.supersteps())
}

fn run_benches(profile: &Profile) {
    let (n, m) = (profile.vertices, profile.edges);
    let seed = 7;
    let plain = generators::gnm_connected(n, m, seed);
    let weighted = generators::with_random_weights(&plain, 0.1, 5.0, seed, false);
    let digraph = generators::digraph_gnm(n, m, seed);
    println!(
        "engine bench profile={} n={n} m={m} workers={:?}",
        profile.name, profile.workers
    );

    let mut harness = Harness::new("engine");
    let mut group = harness.group("engine");
    group
        .sample_size(profile.sample_size)
        .warm_up_time(profile.warm_up)
        .measurement_time(profile.measurement);

    // Supersteps/sec: empty supersteps over the plain graph.
    let spin = Spin {
        rounds: profile.spin_rounds,
    };
    let (_, spin_steps) = run_card(|cfg| vcgp_pregel::run(&spin, &plain, cfg).1);
    for &w in profile.workers {
        let cfg = PregelConfig::default().with_workers(w);
        group.throughput(Throughput::Supersteps(spin_steps));
        group.bench_with_input(BenchmarkId::new("spin_supersteps", w), &cfg, |b, cfg| {
            b.iter(|| vcgp_pregel::run(&spin, &plain, cfg));
        });
    }

    // Messages/sec: PageRank (no combiner).
    let pagerank = PageRankNoCombiner {
        iterations: profile.pagerank_iterations,
    };
    let (pr_msgs, _) = run_card(|cfg| vcgp_pregel::run(&pagerank, &plain, cfg).1);
    for &w in profile.workers {
        let cfg = PregelConfig::default().with_workers(w);
        group.throughput(Throughput::Messages(pr_msgs));
        group.bench_with_input(BenchmarkId::new("pagerank_nocombine", w), &cfg, |b, cfg| {
            b.iter(|| vcgp_pregel::run(&pagerank, &plain, cfg));
        });
    }

    // Messages/sec: SSSP (min combiner) on the weighted graph.
    let (sssp_msgs, _) = run_card(|cfg| sssp::run(&weighted, 0, cfg).stats);
    for &w in profile.workers {
        let cfg = PregelConfig::default().with_workers(w);
        group.throughput(Throughput::Messages(sssp_msgs));
        group.bench_with_input(BenchmarkId::new("sssp_combine", w), &cfg, |b, cfg| {
            b.iter(|| sssp::run(&weighted, 0, cfg));
        });
    }

    // Messages/sec: WCC (min combiner) on the digraph.
    let (wcc_msgs, _) = run_card(|cfg| wcc::run(&digraph, cfg).stats);
    for &w in profile.workers {
        let cfg = PregelConfig::default().with_workers(w);
        group.throughput(Throughput::Messages(wcc_msgs));
        group.bench_with_input(BenchmarkId::new("wcc_combine", w), &cfg, |b, cfg| {
            b.iter(|| wcc::run(&digraph, cfg));
        });
    }

    group.finish();
    let json_path = harness.finish().expect("writing bench reports");
    let path = json_path.display().to_string();
    match validate(&path) {
        Ok(summary) => println!("self-validated {path} ({summary})"),
        Err(e) => {
            eprintln!("emitted report failed self-validation: {e}");
            std::process::exit(1);
        }
    }
}

/// Cargo runs bench binaries with the *package* directory as CWD, so a
/// repo-root-relative path (as `scripts/verify.sh` passes) would not
/// resolve; retry such paths against the shared bench report directory.
fn resolve_report_path(path: &str) -> String {
    let p = std::path::Path::new(path);
    if p.is_relative() && !p.exists() {
        if let Some(name) = p.file_name() {
            let fallback = vcgp_testkit::bench::report_dir().join(name);
            if fallback.exists() {
                return fallback.display().to_string();
            }
        }
    }
    path.to_string()
}

/// Required workload prefixes: a report missing any of them is incomplete.
const REQUIRED: &[&str] = &["spin_supersteps/", "pagerank_nocombine/", "sssp_combine/", "wcc_combine/"];

/// Checks that an emitted `BENCH_engine*.json` is well-formed: parses, has
/// the engine group, covers every required workload, and every bench has
/// positive timing plus a positive throughput rate.
fn validate(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("malformed JSON: {e}"))?;
    let groups = match doc.get("groups") {
        Some(json::Value::Array(gs)) if !gs.is_empty() => gs,
        _ => return Err("no bench groups".into()),
    };
    let mut seen = vec![false; REQUIRED.len()];
    let mut benches = 0usize;
    for g in groups {
        let list = match g.get("benches") {
            Some(json::Value::Array(bs)) => bs,
            _ => return Err("group without benches array".into()),
        };
        for b in list {
            benches += 1;
            let id = b
                .get("id")
                .and_then(json::Value::as_str)
                .ok_or("bench without id")?;
            let mean = b
                .get("mean_ns")
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{id}: missing mean_ns"))?;
            if mean.is_nan() || mean <= 0.0 {
                return Err(format!("{id}: non-positive mean_ns {mean}"));
            }
            let samples = b
                .get("samples")
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{id}: missing samples"))?;
            if samples < 1.0 {
                return Err(format!("{id}: no samples"));
            }
            for (i, prefix) in REQUIRED.iter().enumerate() {
                if id.starts_with(prefix) {
                    seen[i] = true;
                    let rate = b
                        .get("throughput")
                        .and_then(|t| t.get("per_second"))
                        .and_then(json::Value::as_f64)
                        .ok_or_else(|| format!("{id}: missing throughput"))?;
                    if rate.is_nan() || rate <= 0.0 {
                        return Err(format!("{id}: non-positive throughput {rate}"));
                    }
                }
            }
        }
    }
    for (i, prefix) in REQUIRED.iter().enumerate() {
        if !seen[i] {
            return Err(format!("missing required workload {prefix}*"));
        }
    }
    Ok(format!("{benches} benches, all workloads covered"))
}
