//! The compressed-sparse-row graph shared by every crate in the workspace.

use std::fmt;

/// Vertex identifier. Graphs are limited to `u32::MAX - 1` vertices, which
/// keeps adjacency arrays compact (see the type-size guidance in the Rust
/// performance book: indices rarely need to be `usize`).
pub type VertexId = u32;

/// Sentinel for "no vertex" (used by traversals and parent arrays).
pub const INVALID_VERTEX: VertexId = u32::MAX;

/// An immutable graph in compressed-sparse-row form.
///
/// * Undirected graphs store each edge `{u, v}` in both adjacency lists;
///   [`Graph::num_edges`] still reports the *logical* edge count `m`.
/// * Directed graphs additionally carry a reverse (in-neighbor) CSR so that
///   algorithms needing parents (weakly connected components, simulation)
///   do not have to rebuild it.
/// * Adjacency lists are sorted by target id — the paper's Euler-tour
///   algorithm (§3.4.1) explicitly assumes sorted adjacency, and sortedness
///   makes neighbor lookups binary-searchable.
/// * Edge weights are carried inline (all `1.0` for unweighted graphs);
///   vertex labels are optional and used by the pattern-simulation rows.
#[derive(Clone, PartialEq)]
pub struct Graph {
    pub(crate) directed: bool,
    pub(crate) weighted: bool,
    pub(crate) num_edges: usize,
    pub(crate) offsets: Vec<usize>,
    pub(crate) targets: Vec<VertexId>,
    pub(crate) weights: Vec<f64>,
    pub(crate) rev_offsets: Vec<usize>,
    pub(crate) rev_targets: Vec<VertexId>,
    pub(crate) rev_weights: Vec<f64>,
    pub(crate) labels: Option<Vec<u32>>,
}

impl Graph {
    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges `m` (an undirected edge counts once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of directed arcs stored in the forward CSR
    /// (`2m` for undirected graphs, `m` for digraphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether any edge carries a weight other than `1.0`.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Whether vertices carry labels.
    #[inline]
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Out-neighbors of `v`, sorted by id.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (a, b) = self.out_range(v);
        &self.targets[a..b]
    }

    /// Weights parallel to [`Graph::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: VertexId) -> &[f64] {
        let (a, b) = self.out_range(v);
        &self.weights[a..b]
    }

    /// `(neighbor, weight)` pairs for the out-edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let (a, b) = self.out_range(v);
        self.targets[a..b]
            .iter()
            .copied()
            .zip(self.weights[a..b].iter().copied())
    }

    /// In-neighbors of `v` (equal to out-neighbors for undirected graphs).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        if self.directed {
            let (a, b) = self.in_range(v);
            &self.rev_targets[a..b]
        } else {
            self.out_neighbors(v)
        }
    }

    /// `(neighbor, weight)` pairs for the in-edges of `v`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let (targets, weights): (&[VertexId], &[f64]) = if self.directed {
            let (a, b) = self.in_range(v);
            (&self.rev_targets[a..b], &self.rev_weights[a..b])
        } else {
            let (a, b) = self.out_range(v);
            (&self.targets[a..b], &self.weights[a..b])
        };
        targets.iter().copied().zip(weights.iter().copied())
    }

    /// Degree of `v` in an undirected graph; out-degree in a digraph.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let (a, b) = self.out_range(v);
        b - a
    }

    /// In-degree of `v` (equal to degree for undirected graphs).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        if self.directed {
            let (a, b) = self.in_range(v);
            b - a
        } else {
            self.out_degree(v)
        }
    }

    /// `d(v)` for undirected graphs, `d_in(v) + d_out(v)` for digraphs —
    /// exactly the quantity the BPPA properties are stated in terms of.
    #[inline]
    pub fn bppa_degree(&self, v: VertexId) -> usize {
        if self.directed {
            self.out_degree(v) + self.in_degree(v)
        } else {
            self.out_degree(v)
        }
    }

    /// Neighbors of `v` in an undirected graph.
    ///
    /// # Panics
    /// Panics if the graph is directed (use `out_neighbors`/`in_neighbors`).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        assert!(!self.directed, "neighbors() requires an undirected graph");
        self.out_neighbors(v)
    }

    /// Whether the arc `u -> v` (or undirected edge `{u, v}`) exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of the arc `u -> v`, if present. With parallel edges the first
    /// stored weight is returned.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (a, _) = self.out_range(u);
        let neighbors = self.out_neighbors(u);
        let idx = neighbors.binary_search(&v).ok()?;
        // binary_search may land anywhere within a run of parallel edges;
        // rewind to the first.
        let mut first = idx;
        while first > 0 && neighbors[first - 1] == v {
            first -= 1;
        }
        Some(self.weights[a + first])
    }

    /// Label of `v` (0 when the graph is unlabeled).
    #[inline]
    pub fn label(&self, v: VertexId) -> u32 {
        self.labels.as_ref().map_or(0, |l| l[v as usize])
    }

    /// The label array, if present.
    #[inline]
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Maximum `bppa_degree` over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices()
            .map(|v| self.bppa_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over every logical edge `(u, v, w)`. Undirected edges are
    /// yielded once with `u <= v`; directed arcs are yielded as stored.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        self.vertices().flat_map(move |u| {
            self.out_edges(u)
                .filter(move |&(v, _)| self.directed || u <= v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    #[inline]
    fn out_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.offsets[v], self.offsets[v + 1])
    }

    #[inline]
    fn in_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.rev_offsets[v], self.rev_offsets[v + 1])
    }

    /// The undirected version of a digraph: every arc becomes an undirected
    /// edge; duplicate/antiparallel arcs are collapsed. Used by the weakly
    /// connected component workload. Returns a clone for undirected inputs.
    pub fn to_undirected(&self) -> Graph {
        if !self.directed {
            return self.clone();
        }
        let mut b = crate::builder::GraphBuilder::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            if u != v {
                b.add_weighted_edge(u, v, w);
            } else {
                b.add_weighted_edge(u, u, w);
            }
        }
        if let Some(labels) = &self.labels {
            b.set_labels(labels.clone());
        }
        b.dedup().build()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .field("directed", &self.directed)
            .field("weighted", &self.weighted)
            .field("labeled", &self.labels.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    fn triangle_plus_tail() -> crate::Graph {
        // 0-1, 1-2, 2-0 triangle plus 2-3 tail.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn undirected_basics() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert!(!g.is_directed());
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.out_degree(2), 3);
        assert_eq!(g.in_degree(2), 3);
        assert_eq!(g.bppa_degree(2), 3);
        assert_eq!(g.max_degree(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn directed_basics() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(0, 2);
        let g = b.build();
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.bppa_degree(0), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn edge_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.5);
        b.add_weighted_edge(1, 2, 0.5);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        assert_eq!(g.edge_weight(1, 0), Some(2.5));
        assert_eq!(g.edge_weight(2, 1), Some(0.5));
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = triangle_plus_tail();
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn to_undirected_collapses_antiparallel() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let g = b.build().to_undirected();
        assert!(!g.is_directed());
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn labels_roundtrip() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.set_labels(vec![7, 8, 9]);
        let g = b.build();
        assert!(g.is_labeled());
        assert_eq!(g.label(0), 7);
        assert_eq!(g.label(2), 9);
        assert_eq!(g.labels(), Some(&[7, 8, 9][..]));
    }

    #[test]
    fn unlabeled_label_is_zero() {
        let g = triangle_plus_tail();
        assert!(!g.is_labeled());
        assert_eq!(g.label(3), 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        for v in g.vertices() {
            assert!(g.neighbors(v).is_empty());
        }
    }
}
