//! Graph substrate for the `vcgp` workspace.
//!
//! Provides the compressed-sparse-row [`Graph`] type shared by the Pregel
//! engine, the sequential baselines, and the benchmark harness, together with
//! deterministic generators for every graph family used by the paper's
//! experiments, edge-list IO, and traversal utilities.
//!
//! Everything in this crate is deterministic: random generators are driven by
//! an explicit seed through a local SplitMix64 implementation, so every
//! experiment in the workspace is exactly reproducible.

pub mod builder;
pub mod generators;
pub mod graph;
pub mod io;
pub mod mutation;
pub mod properties;
pub mod rng;
pub mod traversal;

pub use builder::GraphBuilder;
pub use graph::{Graph, VertexId, INVALID_VERTEX};
pub use mutation::{apply_batch, splice_slice, ApplyDelta, ApplyStats, Mutation};
pub use rng::SplitMix64;
