//! Breadth-first traversal utilities shared by baselines, validators, and
//! the benchmark harness.

use crate::graph::{Graph, VertexId, INVALID_VERTEX};
use std::collections::VecDeque;

/// BFS hop distances from `src` (following out-edges); `u32::MAX` marks
/// unreachable vertices.
pub fn bfs_levels(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut levels = vec![u32::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    levels[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let next = levels[u as usize] + 1;
        for &v in g.out_neighbors(u) {
            if levels[v as usize] == u32::MAX {
                levels[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    levels
}

/// BFS parents from `src`; `INVALID_VERTEX` for the root and unreachable
/// vertices. The parent of `v` is the vertex from which BFS first reached it.
pub fn bfs_parents(g: &Graph, src: VertexId) -> Vec<VertexId> {
    let mut parent = vec![INVALID_VERTEX; g.num_vertices()];
    let mut seen = vec![false; g.num_vertices()];
    let mut queue = VecDeque::new();
    seen[src as usize] = true;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Connected components of an undirected graph: `(component_id_per_vertex,
/// component_count)`. Component ids are the smallest vertex id in each
/// component — the paper's "color" convention (§3.3.1).
pub fn connected_components(g: &Graph) -> (Vec<VertexId>, usize) {
    assert!(
        !g.is_directed(),
        "connected_components requires an undirected graph"
    );
    let n = g.num_vertices();
    let mut comp = vec![INVALID_VERTEX; n];
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        if comp[s as usize] != INVALID_VERTEX {
            continue;
        }
        count += 1;
        comp[s as usize] = s;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if comp[v as usize] == INVALID_VERTEX {
                    comp[v as usize] = s;
                    queue.push_back(v);
                }
            }
        }
    }
    (comp, count)
}

/// Whether an undirected graph is connected (the empty graph counts as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    g.num_vertices() == 0 || connected_components(g).1 == 1
}

/// Whether an undirected graph is a tree (connected with `m = n - 1`).
pub fn is_tree(g: &Graph) -> bool {
    !g.is_directed()
        && g.num_vertices() > 0
        && g.num_edges() == g.num_vertices() - 1
        && is_connected(g)
}

/// Eccentricity of `src`: the largest BFS distance to any reachable vertex.
pub fn eccentricity(g: &Graph, src: VertexId) -> u32 {
    bfs_levels(g, src)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn bfs_levels_path() {
        let g = generators::path(5);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.build();
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels[1], 1);
        assert_eq!(levels[2], u32::MAX);
    }

    #[test]
    fn bfs_parents_tree_shape() {
        let g = generators::path(4);
        let p = bfs_parents(&g, 0);
        assert_eq!(p, vec![INVALID_VERTEX, 0, 1, 2]);
    }

    #[test]
    fn components_two_islands() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(3, 4);
        let g = b.build();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp, vec![0, 0, 2, 3, 3]);
    }

    #[test]
    fn directed_bfs_follows_arcs() {
        let g = generators::directed_path(4);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_levels(&g, 3), vec![u32::MAX, u32::MAX, u32::MAX, 0]);
    }

    #[test]
    fn tree_detection() {
        assert!(is_tree(&generators::path(6)));
        assert!(is_tree(&generators::random_tree(40, 1)));
        assert!(!is_tree(&generators::cycle(6)));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        assert!(!is_tree(&b.build()));
    }

    #[test]
    fn eccentricity_of_path_ends_and_middle() {
        let g = generators::path(7);
        assert_eq!(eccentricity(&g, 0), 6);
        assert_eq!(eccentricity(&g, 3), 3);
    }

    #[test]
    fn connected_check() {
        assert!(is_connected(&generators::gnm_connected(40, 60, 2)));
        assert!(is_connected(&GraphBuilder::new(0).build()));
        assert!(!is_connected(&GraphBuilder::new(2).build()));
    }
}
