//! Deterministic pseudo-random number generation.
//!
//! A local SplitMix64 implementation (Steele, Lea & Flood 2014) keeps every
//! generator in the workspace reproducible across platforms and toolchain
//! versions — reproducibility of the benchmark inputs is a correctness
//! requirement for this project, so we do not depend on an external RNG crate
//! whose stream could change between releases.

/// SplitMix64 pseudo-random generator.
///
/// Passes BigCrush when used as a 64-bit generator and is more than adequate
/// for graph generation. Construction from any seed (including 0) is fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly-random value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire 2019: unbiased bounded generation without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly-random `usize` in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniformly-random `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `\[0, 1\]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Forks an independent generator; the fork and the parent produce
    /// unrelated streams.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

/// Stateless 64-bit mix of up to three values, used when a deterministic
/// value must be derived from identifiers alone (e.g. consistent undirected
/// edge weights derived from the canonical endpoint pair).
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut g = SplitMix64::new(
        a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.rotate_left(32).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ c.wrapping_mul(0x1656_67B1_9E37_79F9),
    );
    g.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_below_in_range() {
        let mut g = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[g.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut g = SplitMix64::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "shuffle left identity");
    }

    #[test]
    fn mix3_deterministic_and_sensitive() {
        assert_eq!(mix3(1, 2, 3), mix3(1, 2, 3));
        assert_ne!(mix3(1, 2, 3), mix3(1, 2, 4));
        assert_ne!(mix3(1, 2, 3), mix3(2, 1, 3));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
