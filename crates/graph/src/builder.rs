//! Incremental construction of [`Graph`] values.

use crate::graph::{Graph, VertexId};
use crate::mutation::{ApplyStats, Mutation};

/// Builds a [`Graph`] from an edge list.
///
/// The builder accumulates `(u, v, w)` triples, then sorts them into CSR form
/// at [`GraphBuilder::build`]. Undirected edges are mirrored automatically.
///
/// ```
/// use vcgp_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    dedup: bool,
    edges: Vec<(VertexId, VertexId, f64)>,
    labels: Option<Vec<u32>>,
}

impl GraphBuilder {
    /// Starts an undirected graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self::with_directedness(n, false)
    }

    /// Starts a directed graph on `n` vertices.
    pub fn directed(n: usize) -> Self {
        Self::with_directedness(n, true)
    }

    fn with_directedness(n: usize, directed: bool) -> Self {
        assert!(
            n < u32::MAX as usize,
            "graphs are limited to u32::MAX - 1 vertices"
        );
        GraphBuilder {
            n,
            directed,
            dedup: false,
            edges: Vec::new(),
            labels: None,
        }
    }

    /// Requests duplicate-edge removal at build time. For weighted graphs the
    /// minimum weight among duplicates is kept (matching the edge-cleaning
    /// rule of the Borůvka workload).
    pub fn dedup(&mut self) -> &mut Self {
        self.dedup = true;
        self
    }

    /// Adds an unweighted edge (weight `1.0`).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.add_weighted_edge(u, v, 1.0)
    }

    /// Adds a weighted edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_weighted_edge(&mut self, u: VertexId, v: VertexId, w: f64) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} vertices",
            self.n
        );
        self.edges.push((u, v, w));
        self
    }

    /// Sets vertex labels (used by the pattern-simulation workloads).
    ///
    /// # Panics
    /// Panics at `build` time if the label count differs from `n`.
    pub fn set_labels(&mut self, labels: Vec<u32>) -> &mut Self {
        self.labels = Some(labels);
        self
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// A builder pre-loaded with `g`'s edges, labels, and directedness, so
    /// a mutation batch can be replayed through a from-scratch rebuild.
    /// This is the *oracle* path for [`crate::mutation::apply_batch`]'s
    /// incremental CSR splice (property-tested equal); the serving layer
    /// uses the splice, tests use this.
    pub fn from_graph(g: &Graph) -> GraphBuilder {
        let mut b = Self::with_directedness(g.num_vertices(), g.is_directed());
        b.edges = g.edges().collect();
        b.labels = g.labels().map(|l| l.to_vec());
        b
    }

    /// Applies a mutation batch to the builder's edge list, with semantics
    /// identical to [`crate::mutation::apply_batch`] (see its module docs):
    /// duplicate/self-loop/out-of-range inserts, deletes of missing edges,
    /// and reweights on unweighted graphs are counted no-ops, matching the
    /// `gnm_connected` generator guard.
    pub fn apply(&mut self, batch: &[Mutation]) -> ApplyStats {
        let mut stats = ApplyStats::default();
        // Reweights only apply once the edge set is weighted — initially or
        // via an explicit non-unit insert earlier in this batch.
        let mut weighted_gate = self.edges.iter().any(|&(_, _, w)| w != 1.0);
        for m in batch {
            let applied = match *m {
                Mutation::InsertEdge { u, v, w } => self.apply_insert(u, v, w, &mut weighted_gate),
                Mutation::DeleteEdge { u, v } => self.apply_delete(u, v),
                Mutation::DeleteEdgeAt { u, rank } => match self.resolve_rank(u, rank) {
                    Some(t) => self.apply_delete(u, t),
                    None => false,
                },
                Mutation::Reweight { u, v, w } => {
                    weighted_gate && self.apply_reweight(u, v, w, &mut weighted_gate)
                }
                Mutation::ReweightAt { u, rank, w } => {
                    weighted_gate
                        && match self.resolve_rank(u, rank) {
                            Some(t) => self.apply_reweight(u, t, w, &mut weighted_gate),
                            None => false,
                        }
                }
                Mutation::AddVertex { label } => {
                    if self.n + 1 >= u32::MAX as usize {
                        false
                    } else {
                        self.n += 1;
                        if let Some(labels) = &mut self.labels {
                            labels.push(label);
                        }
                        true
                    }
                }
                Mutation::RemoveVertex { v } => {
                    if (v as usize) >= self.n {
                        false
                    } else {
                        let before = self.edges.len();
                        self.edges.retain(|&(a, b, _)| a != v && b != v);
                        self.edges.len() != before
                    }
                }
            };
            if applied {
                stats.applied += 1;
            } else {
                stats.noops += 1;
            }
        }
        stats
    }

    /// Whether the logical edge `{u, v}` (arc `u -> v` on digraphs) exists.
    fn holds_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edges
            .iter()
            .any(|&(a, b, _)| (a, b) == (u, v) || (!self.directed && (a, b) == (v, u)))
    }

    /// The target at position `rank % out_degree(u)` of `u`'s sorted
    /// current adjacency, or `None` when `u` is out of range or isolated.
    fn resolve_rank(&self, u: VertexId, rank: u32) -> Option<VertexId> {
        if (u as usize) >= self.n {
            return None;
        }
        let mut adj: Vec<VertexId> = Vec::new();
        for &(a, b, _) in &self.edges {
            if a == u {
                adj.push(b);
            } else if !self.directed && b == u {
                adj.push(a);
            }
        }
        if adj.is_empty() {
            return None;
        }
        adj.sort_unstable();
        Some(adj[rank as usize % adj.len()])
    }

    fn apply_insert(&mut self, u: VertexId, v: VertexId, w: f64, gate: &mut bool) -> bool {
        if u == v || (u as usize) >= self.n || (v as usize) >= self.n || self.holds_edge(u, v) {
            return false;
        }
        self.edges.push((u, v, w));
        if w != 1.0 {
            *gate = true;
        }
        true
    }

    fn apply_delete(&mut self, u: VertexId, v: VertexId) -> bool {
        if (u as usize) >= self.n || (v as usize) >= self.n {
            return false;
        }
        let before = self.edges.len();
        self.edges
            .retain(|&(a, b, _)| !((a, b) == (u, v) || (!self.directed && (a, b) == (v, u))));
        self.edges.len() != before
    }

    fn apply_reweight(&mut self, u: VertexId, v: VertexId, w: f64, gate: &mut bool) -> bool {
        if (u as usize) >= self.n || (v as usize) >= self.n {
            return false;
        }
        let mut any = false;
        for e in self.edges.iter_mut() {
            if (e.0, e.1) == (u, v) || (!self.directed && (e.0, e.1) == (v, u)) {
                e.2 = w;
                any = true;
            }
        }
        if any && w != 1.0 {
            *gate = true;
        }
        any
    }

    /// Finalizes the graph.
    pub fn build(&mut self) -> Graph {
        if let Some(labels) = &self.labels {
            assert_eq!(labels.len(), self.n, "label count must equal n");
        }
        let mut arcs: Vec<(VertexId, VertexId, f64)> =
            Vec::with_capacity(self.edges.len() * if self.directed { 1 } else { 2 });
        if self.dedup {
            // Canonicalize, sort, and keep the lightest copy of each edge.
            let mut canonical: Vec<(VertexId, VertexId, f64)> = self
                .edges
                .iter()
                .map(|&(u, v, w)| {
                    if !self.directed && u > v {
                        (v, u, w)
                    } else {
                        (u, v, w)
                    }
                })
                .collect();
            canonical.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
            canonical.dedup_by_key(|e| (e.0, e.1));
            self.edges = canonical;
        }
        let num_edges = self.edges.len();
        for &(u, v, w) in &self.edges {
            arcs.push((u, v, w));
            if !self.directed && u != v {
                arcs.push((v, u, w));
            }
        }
        let weighted = arcs.iter().any(|&(_, _, w)| w != 1.0);
        let (offsets, targets, weights) = csr_from_arcs(self.n, &arcs);
        let (rev_offsets, rev_targets, rev_weights) = if self.directed {
            let reversed: Vec<(VertexId, VertexId, f64)> =
                arcs.iter().map(|&(u, v, w)| (v, u, w)).collect();
            csr_from_arcs(self.n, &reversed)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        Graph {
            directed: self.directed,
            weighted,
            num_edges,
            offsets,
            targets,
            weights,
            rev_offsets,
            rev_targets,
            rev_weights,
            labels: self.labels.clone(),
        }
    }
}

/// Counting-sorts arcs into CSR arrays with per-vertex target ordering.
fn csr_from_arcs(
    n: usize,
    arcs: &[(VertexId, VertexId, f64)],
) -> (Vec<usize>, Vec<VertexId>, Vec<f64>) {
    let mut offsets = vec![0usize; n + 1];
    for &(u, _, _) in arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut targets = vec![0 as VertexId; arcs.len()];
    let mut weights = vec![0.0f64; arcs.len()];
    let mut cursor = offsets.clone();
    for &(u, v, w) in arcs {
        let slot = cursor[u as usize];
        targets[slot] = v;
        weights[slot] = w;
        cursor[u as usize] += 1;
    }
    // Sort each adjacency run by target id, keeping weights parallel.
    for v in 0..n {
        let (a, b) = (offsets[v], offsets[v + 1]);
        if b - a > 1 {
            let mut idx: Vec<usize> = (a..b).collect();
            idx.sort_by_key(|&i| targets[i]);
            let sorted_t: Vec<VertexId> = idx.iter().map(|&i| targets[i]).collect();
            let sorted_w: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
            targets[a..b].copy_from_slice(&sorted_t);
            weights[a..b].copy_from_slice(&sorted_w);
        }
    }
    (offsets, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_lightest() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 5.0);
        b.add_weighted_edge(1, 0, 2.0);
        b.add_weighted_edge(0, 1, 9.0);
        let g = b.dedup().build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn directed_dedup_preserves_antiparallel() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        let g = b.dedup().build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn self_loop_undirected_stored_once() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn wrong_label_count_panics() {
        let mut b = GraphBuilder::new(3);
        b.set_labels(vec![1, 2]);
        b.build();
    }

    #[test]
    fn parallel_edges_kept_without_dedup() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn builder_edge_count() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.edge_count(), 0);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn from_graph_roundtrips() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 2.0);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.set_labels(vec![5, 6, 7, 8]);
        let g = b.build();
        let again = GraphBuilder::from_graph(&g).build();
        assert_eq!(again, g);

        let mut d = GraphBuilder::directed(3);
        d.add_edge(0, 1);
        d.add_edge(1, 0);
        d.add_edge(1, 2);
        let dg = d.build();
        assert_eq!(GraphBuilder::from_graph(&dg).build(), dg);
    }

    #[test]
    fn apply_reapply_is_idempotent() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let base = b.build();
        let batch = [
            Mutation::InsertEdge { u: 2, v: 3, w: 1.0 },
            Mutation::DeleteEdge { u: 0, v: 1 },
        ];
        let mut once = GraphBuilder::from_graph(&base);
        let s1 = once.apply(&batch);
        assert_eq!(s1, ApplyStats { applied: 2, noops: 0 });
        let g_once = once.build();
        // The same batch again: every mutation degenerates to a no-op and
        // the built graph is unchanged.
        let mut twice = GraphBuilder::from_graph(&g_once);
        let s2 = twice.apply(&batch);
        assert_eq!(s2, ApplyStats { applied: 0, noops: 2 });
        assert_eq!(twice.build(), g_once);
    }

    #[test]
    fn apply_delete_of_missing_is_noop() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let base = b.build();
        let mut builder = GraphBuilder::from_graph(&base);
        let stats = builder.apply(&[
            Mutation::DeleteEdge { u: 1, v: 2 },
            Mutation::DeleteEdge { u: 0, v: 9 },
            Mutation::DeleteEdgeAt { u: 2, rank: 0 },
        ]);
        assert_eq!(stats, ApplyStats { applied: 0, noops: 3 });
        assert_eq!(builder.build(), base);
    }

    #[test]
    fn apply_insert_guards_match_generator_invariants() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let base = b.build();
        let mut builder = GraphBuilder::from_graph(&base);
        let stats = builder.apply(&[
            Mutation::InsertEdge { u: 1, v: 1, w: 1.0 }, // self-loop
            Mutation::InsertEdge { u: 1, v: 0, w: 1.0 }, // mirror duplicate
            Mutation::InsertEdge { u: 0, v: 7, w: 1.0 }, // out of range
            Mutation::InsertEdge { u: 1, v: 2, w: 1.0 }, // fine
        ]);
        assert_eq!(stats, ApplyStats { applied: 1, noops: 3 });
        let g = builder.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 2));
    }
}
