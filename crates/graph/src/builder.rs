//! Incremental construction of [`Graph`] values.

use crate::graph::{Graph, VertexId};

/// Builds a [`Graph`] from an edge list.
///
/// The builder accumulates `(u, v, w)` triples, then sorts them into CSR form
/// at [`GraphBuilder::build`]. Undirected edges are mirrored automatically.
///
/// ```
/// use vcgp_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    dedup: bool,
    edges: Vec<(VertexId, VertexId, f64)>,
    labels: Option<Vec<u32>>,
}

impl GraphBuilder {
    /// Starts an undirected graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self::with_directedness(n, false)
    }

    /// Starts a directed graph on `n` vertices.
    pub fn directed(n: usize) -> Self {
        Self::with_directedness(n, true)
    }

    fn with_directedness(n: usize, directed: bool) -> Self {
        assert!(
            n < u32::MAX as usize,
            "graphs are limited to u32::MAX - 1 vertices"
        );
        GraphBuilder {
            n,
            directed,
            dedup: false,
            edges: Vec::new(),
            labels: None,
        }
    }

    /// Requests duplicate-edge removal at build time. For weighted graphs the
    /// minimum weight among duplicates is kept (matching the edge-cleaning
    /// rule of the Borůvka workload).
    pub fn dedup(&mut self) -> &mut Self {
        self.dedup = true;
        self
    }

    /// Adds an unweighted edge (weight `1.0`).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.add_weighted_edge(u, v, 1.0)
    }

    /// Adds a weighted edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_weighted_edge(&mut self, u: VertexId, v: VertexId, w: f64) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} vertices",
            self.n
        );
        self.edges.push((u, v, w));
        self
    }

    /// Sets vertex labels (used by the pattern-simulation workloads).
    ///
    /// # Panics
    /// Panics at `build` time if the label count differs from `n`.
    pub fn set_labels(&mut self, labels: Vec<u32>) -> &mut Self {
        self.labels = Some(labels);
        self
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    pub fn build(&mut self) -> Graph {
        if let Some(labels) = &self.labels {
            assert_eq!(labels.len(), self.n, "label count must equal n");
        }
        let mut arcs: Vec<(VertexId, VertexId, f64)> =
            Vec::with_capacity(self.edges.len() * if self.directed { 1 } else { 2 });
        if self.dedup {
            // Canonicalize, sort, and keep the lightest copy of each edge.
            let mut canonical: Vec<(VertexId, VertexId, f64)> = self
                .edges
                .iter()
                .map(|&(u, v, w)| {
                    if !self.directed && u > v {
                        (v, u, w)
                    } else {
                        (u, v, w)
                    }
                })
                .collect();
            canonical.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
            canonical.dedup_by_key(|e| (e.0, e.1));
            self.edges = canonical;
        }
        let num_edges = self.edges.len();
        for &(u, v, w) in &self.edges {
            arcs.push((u, v, w));
            if !self.directed && u != v {
                arcs.push((v, u, w));
            }
        }
        let weighted = arcs.iter().any(|&(_, _, w)| w != 1.0);
        let (offsets, targets, weights) = csr_from_arcs(self.n, &arcs);
        let (rev_offsets, rev_targets, rev_weights) = if self.directed {
            let reversed: Vec<(VertexId, VertexId, f64)> =
                arcs.iter().map(|&(u, v, w)| (v, u, w)).collect();
            csr_from_arcs(self.n, &reversed)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        Graph {
            directed: self.directed,
            weighted,
            num_edges,
            offsets,
            targets,
            weights,
            rev_offsets,
            rev_targets,
            rev_weights,
            labels: self.labels.clone(),
        }
    }
}

/// Counting-sorts arcs into CSR arrays with per-vertex target ordering.
fn csr_from_arcs(
    n: usize,
    arcs: &[(VertexId, VertexId, f64)],
) -> (Vec<usize>, Vec<VertexId>, Vec<f64>) {
    let mut offsets = vec![0usize; n + 1];
    for &(u, _, _) in arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut targets = vec![0 as VertexId; arcs.len()];
    let mut weights = vec![0.0f64; arcs.len()];
    let mut cursor = offsets.clone();
    for &(u, v, w) in arcs {
        let slot = cursor[u as usize];
        targets[slot] = v;
        weights[slot] = w;
        cursor[u as usize] += 1;
    }
    // Sort each adjacency run by target id, keeping weights parallel.
    for v in 0..n {
        let (a, b) = (offsets[v], offsets[v + 1]);
        if b - a > 1 {
            let mut idx: Vec<usize> = (a..b).collect();
            idx.sort_by_key(|&i| targets[i]);
            let sorted_t: Vec<VertexId> = idx.iter().map(|&i| targets[i]).collect();
            let sorted_w: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
            targets[a..b].copy_from_slice(&sorted_t);
            weights[a..b].copy_from_slice(&sorted_w);
        }
    }
    (offsets, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_lightest() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 5.0);
        b.add_weighted_edge(1, 0, 2.0);
        b.add_weighted_edge(0, 1, 9.0);
        let g = b.dedup().build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn directed_dedup_preserves_antiparallel() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        let g = b.dedup().build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn self_loop_undirected_stored_once() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn wrong_label_count_panics() {
        let mut b = GraphBuilder::new(3);
        b.set_labels(vec![1, 2]);
        b.build();
    }

    #[test]
    fn parallel_edges_kept_without_dedup() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn builder_edge_count() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.edge_count(), 0);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        assert_eq!(b.edge_count(), 2);
    }
}
