//! Deterministic graph generators for every family used in the experiments.
//!
//! All generators are pure functions of their arguments (including the seed),
//! so benchmark inputs are exactly reproducible. Families were chosen to
//! expose the behaviours the paper analyzes: paths maximize diameter-bound
//! superstep counts, random trees drive the tree workloads (rows 8-9),
//! `G(n, m)` and R-MAT drive the general rows, bipartite graphs drive row 14,
//! and labeled digraphs with pattern queries drive rows 18-20.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, VertexId};
use crate::rng::{mix3, SplitMix64};

/// Path graph `0 - 1 - ... - n-1`. Diameter `n - 1`: the adversarial family
/// for Hash-Min's superstep bound (§3.3.1 "e.g., for a straight-line graph").
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn directed_path(n: usize) -> Graph {
    let mut b = GraphBuilder::directed(n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3");
    let mut b = GraphBuilder::new(n);
    for v in 0..n as VertexId {
        b.add_edge(v, ((v as usize + 1) % n) as VertexId);
    }
    b.build()
}

/// Directed cycle on `n >= 2` vertices.
pub fn directed_cycle(n: usize) -> Graph {
    assert!(n >= 2, "directed cycle requires n >= 2");
    let mut b = GraphBuilder::directed(n);
    for v in 0..n as VertexId {
        b.add_edge(v, ((v as usize + 1) % n) as VertexId);
    }
    b.build()
}

/// Star with center `0` and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(0, v);
    }
    b.build()
}

/// Complete graph `K_n` — the worst case for the coloring workload's phase
/// count K (§3.6: "K can be as large as O(n) for a complete graph").
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// `rows x cols` grid graph: moderate diameter `rows + cols - 2`, a middle
/// ground between paths and expanders for the diameter workload.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let at = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    b.build()
}

/// Uniform random recursive tree: vertex `v > 0` attaches to a uniform
/// parent in `[0, v)`. Always connected, expected depth `O(log n)`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed ^ 0x7265_6355_7273_6976);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.next_index(v) as VertexId;
        b.add_edge(parent, v as VertexId);
    }
    b.build()
}

/// Complete `k`-ary tree truncated to `n` vertices (vertex `v`'s parent is
/// `(v - 1) / k`). Depth `Θ(log_k n)`.
pub fn kary_tree(n: usize, k: usize) -> Graph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(((v - 1) / k) as VertexId, v as VertexId);
    }
    b.build()
}

/// Caterpillar tree: a spine path of length `n / 2` with alternating legs —
/// a tree with Θ(n) diameter, adversarial for tree workloads that depend on
/// height (e.g. the BCC pipeline's subtree aggregation).
pub fn caterpillar(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    let spine = n.div_ceil(2);
    for v in 1..spine {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    for v in spine..n {
        b.add_edge((v - spine) as VertexId, v as VertexId);
    }
    b.build()
}

/// Simple undirected `G(n, m)`: `m` distinct edges chosen uniformly among
/// all pairs, no self-loops. Not necessarily connected.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0, "gnm needs n >= 2 for any edge");
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges, "gnm: m = {m} exceeds C(n,2) = {max_edges}");
    let mut rng = SplitMix64::new(seed ^ 0x676E_6D5F_7365_6564);
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.next_index(n) as VertexId;
        let v = rng.next_index(n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Connected undirected `G(n, m)`: a uniform random spanning tree skeleton
/// (random attachment) plus `m - (n - 1)` extra distinct edges.
///
/// # Panics
/// Panics if `n == 0` or `m < n - 1`.
pub fn gnm_connected(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 1, "gnm_connected requires n >= 1");
    assert!(m >= n - 1, "gnm_connected requires m >= n - 1");
    let max_edges = if n >= 2 { n * (n - 1) / 2 } else { 0 };
    assert!(m <= max_edges || n == 1, "gnm_connected: m too large");
    let mut rng = SplitMix64::new(seed ^ 0x636F_6E6E_6563_7400);
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    for v in 1..n {
        let parent = rng.next_index(v) as VertexId;
        let key = (parent.min(v as VertexId), parent.max(v as VertexId));
        seen.insert(key);
        b.add_edge(key.0, key.1);
    }
    while seen.len() < m {
        let u = rng.next_index(n) as VertexId;
        let v = rng.next_index(n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` by geometric skipping (Batagelj-Brandes), O(n + m).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "gnp probability out of range");
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = SplitMix64::new(seed ^ 0x676E_705F_7365_6564);
    let log_q = (1.0 - p).ln();
    let (mut v, mut w): (i64, i64) = (1, -1);
    let n = n as i64;
    while v < n {
        let r = rng.next_f64().max(f64::MIN_POSITIVE);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(w as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// R-MAT power-law graph (Chakrabarti et al.) with the Graph500 parameters
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`. Self-loops and duplicates are
/// removed, so the resulting edge count can be slightly below `m`.
pub fn rmat(scale: u32, m: usize, seed: u64) -> Graph {
    let n = 1usize << scale;
    let (a, b_p, c) = (0.57, 0.19, 0.19);
    let mut rng = SplitMix64::new(seed ^ 0x726D_6174_5F73_6565);
    let mut builder = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    while seen.len() < m && attempts < m * 20 {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r = rng.next_f64();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b_p {
                (0, 1)
            } else if r < a + b_p + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        let key = (u.min(v) as VertexId, u.max(v) as VertexId);
        if seen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Simple directed `G(n, m)` (no self-loops, no duplicate arcs).
pub fn digraph_gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0);
    let max_arcs = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max_arcs, "digraph_gnm: m exceeds n(n-1)");
    let mut rng = SplitMix64::new(seed ^ 0x6469_6772_6170_6800);
    let mut b = GraphBuilder::directed(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.next_index(n) as VertexId;
        let v = rng.next_index(n) as VertexId;
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Digraph made of `k` directed cycles of length `n / k`, plus `extra`
/// random inter-cycle arcs: a family with known non-trivial SCC structure
/// (each cycle is one SCC as long as inter-cycle arcs are acyclic across
/// cycles, which we enforce by only adding arcs from lower to higher cycle
/// index).
pub fn cyclic_digraph(n: usize, k: usize, extra: usize, seed: u64) -> Graph {
    assert!(k >= 1 && n >= 2 * k, "need cycles of length >= 2");
    let len = n / k;
    let mut b = GraphBuilder::directed(n);
    let cycle_of = |v: usize| (v / len).min(k - 1);
    // Cycle c covers [c*len, (c+1)*len) except the last which absorbs the tail.
    let mut starts = Vec::with_capacity(k + 1);
    for c in 0..k {
        starts.push(c * len);
    }
    starts.push(n);
    for c in 0..k {
        let (s, e) = (starts[c], starts[c + 1]);
        for v in s..e {
            let next = if v + 1 == e { s } else { v + 1 };
            b.add_edge(v as VertexId, next as VertexId);
        }
    }
    let mut rng = SplitMix64::new(seed ^ 0x7363_635F_6661_6D00);
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < extra && guard < extra * 50 + 100 {
        guard += 1;
        let u = rng.next_index(n);
        let v = rng.next_index(n);
        if cycle_of(u) < cycle_of(v) {
            b.add_edge(u as VertexId, v as VertexId);
            added += 1;
        }
    }
    b.dedup().build()
}

/// Random bipartite graph: left vertices `0..nl`, right `nl..nl+nr`, `m`
/// distinct cross edges. Used by the bipartite-matching workload.
pub fn bipartite(nl: usize, nr: usize, m: usize, seed: u64) -> Graph {
    assert!(m <= nl * nr, "bipartite: m exceeds nl*nr");
    let mut rng = SplitMix64::new(seed ^ 0x6269_7061_7274_6974);
    let mut b = GraphBuilder::new(nl + nr);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.next_index(nl) as VertexId;
        let v = (nl + rng.next_index(nr)) as VertexId;
        if seen.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{nl, nr}` (left `0..nl`, right
/// `nl..nl+nr`) — the adversarial family for the randomized bipartite
/// matching's round count.
pub fn complete_bipartite(nl: usize, nr: usize) -> Graph {
    let mut b = GraphBuilder::new(nl + nr);
    for u in 0..nl as VertexId {
        for v in 0..nr as VertexId {
            b.add_edge(u, (nl as VertexId) + v);
        }
    }
    b.build()
}

/// Labeled digraph for the pattern-simulation rows: `digraph_gnm(n, m)` with
/// labels drawn uniformly from `0..num_labels`.
pub fn labeled_digraph(n: usize, m: usize, num_labels: u32, seed: u64) -> Graph {
    assert!(num_labels >= 1);
    let g = digraph_gnm(n, m, seed);
    let mut rng = SplitMix64::new(seed ^ 0x6C61_6265_6C73_0000);
    let labels: Vec<u32> = (0..n).map(|_| rng.next_below(num_labels as u64) as u32).collect();
    relabel(&g, labels)
}

/// Small connected labeled query pattern for rows 18-20: a random recursive
/// tree on `nq` vertices plus extra arcs, labels from `0..num_labels`.
/// Directed, as required by graph/dual/strong simulation.
pub fn query_pattern(nq: usize, mq_extra: usize, num_labels: u32, seed: u64) -> Graph {
    assert!(nq >= 1 && num_labels >= 1);
    let mut rng = SplitMix64::new(seed ^ 0x7175_6572_7970_6174);
    let mut b = GraphBuilder::directed(nq);
    for v in 1..nq {
        let parent = rng.next_index(v) as VertexId;
        // Orient tree arcs randomly so the pattern exercises both the child
        // and parent conditions of dual simulation.
        if rng.next_bool(0.5) {
            b.add_edge(parent, v as VertexId);
        } else {
            b.add_edge(v as VertexId, parent);
        }
    }
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < mq_extra && guard < mq_extra * 50 + 100 {
        guard += 1;
        let u = rng.next_index(nq) as VertexId;
        let v = rng.next_index(nq) as VertexId;
        if u != v {
            b.add_edge(u, v);
            added += 1;
        }
    }
    let labels: Vec<u32> = (0..nq).map(|_| rng.next_below(num_labels as u64) as u32).collect();
    let g = b.dedup().build();
    relabel(&g, labels)
}

/// Rebuilds `g` with the given vertex labels.
pub fn relabel(g: &Graph, labels: Vec<u32>) -> Graph {
    let mut b = if g.is_directed() {
        GraphBuilder::directed(g.num_vertices())
    } else {
        GraphBuilder::new(g.num_vertices())
    };
    for (u, v, w) in g.edges() {
        b.add_weighted_edge(u, v, w);
    }
    b.set_labels(labels);
    b.build()
}

/// Rebuilds `g` with deterministic pseudo-random edge weights in
/// `[lo, hi)`. The weight of an edge depends only on `(seed, min(u,v),
/// max(u,v))` for undirected graphs — consistent across both stored arcs —
/// and on `(seed, u, v)` for digraphs. With `distinct = true`, a tiny
/// edge-specific perturbation makes all weights distinct (convenient for
/// unique-MST tests).
pub fn with_random_weights(g: &Graph, lo: f64, hi: f64, seed: u64, distinct: bool) -> Graph {
    assert!(hi > lo);
    let mut b = if g.is_directed() {
        GraphBuilder::directed(g.num_vertices())
    } else {
        GraphBuilder::new(g.num_vertices())
    };
    for (u, v, _) in g.edges() {
        let (a, z) = if g.is_directed() || u <= v {
            (u, v)
        } else {
            (v, u)
        };
        let bits = mix3(seed, a as u64, z as u64);
        let mut w = lo + (bits >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo);
        if distinct {
            // A unique low-order offset per canonical pair keeps all weights
            // distinct without observably changing their distribution.
            w += (a as f64 * g.num_vertices() as f64 + z as f64 + 1.0) * 1e-9;
        }
        b.add_weighted_edge(u, v, w);
    }
    if let Some(labels) = g.labels() {
        b.set_labels(labels.to_vec());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_levels, connected_components};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(4), &[3]);
    }

    #[test]
    fn cycle_every_degree_two() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 2);
        }
    }

    #[test]
    fn star_degrees() {
        let g = star(5);
        assert_eq!(g.out_degree(0), 4);
        for v in 1..5 {
            assert_eq!(g.out_degree(v), 1);
        }
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        // Corner has degree 2, center degree 4.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(5), 4);
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(64, seed);
            assert_eq!(g.num_edges(), 63);
            assert_eq!(connected_components(&g).1, 1);
        }
    }

    #[test]
    fn kary_tree_structure() {
        let g = kary_tree(7, 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 3, 4]);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn caterpillar_is_connected_tree() {
        let g = caterpillar(11);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(connected_components(&g).1, 1);
    }

    #[test]
    fn gnm_exact_edge_count_simple() {
        let g = gnm(50, 120, 7);
        assert_eq!(g.num_edges(), 120);
        for v in g.vertices() {
            let nb = g.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "duplicate or unsorted");
            assert!(!nb.contains(&v), "self loop");
        }
    }

    #[test]
    fn gnm_connected_is_connected() {
        for seed in 0..4 {
            let g = gnm_connected(80, 150, seed);
            assert_eq!(g.num_edges(), 150);
            assert_eq!(connected_components(&g).1, 1);
        }
    }

    #[test]
    #[should_panic(expected = "m >= n - 1")]
    fn gnm_connected_rejects_too_few_edges() {
        gnm_connected(5, 3, 1);
    }

    #[test]
    fn gnm_connected_boundary_edge_counts() {
        // Exactly m = n - 1 yields a spanning tree; n = 1, m = 0 is the
        // smallest valid input of the documented contract.
        let tree = gnm_connected(5, 4, 1);
        assert_eq!(tree.num_edges(), 4);
        assert_eq!(connected_components(&tree).1, 1);
        let single = gnm_connected(1, 0, 1);
        assert_eq!(single.num_vertices(), 1);
        assert_eq!(single.num_edges(), 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(5, 1.0, 1).num_edges(), 10);
    }

    #[test]
    fn gnp_density_close_to_p() {
        let n = 200;
        let p = 0.1;
        let g = gnp(n, p, 3);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.15,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn rmat_skewed_degrees() {
        let g = rmat(8, 1024, 5);
        assert!(g.num_edges() > 900, "rmat generated too few edges");
        // Power-law-ish: max degree far above average.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 3.0 * avg);
    }

    #[test]
    fn digraph_gnm_simple() {
        let g = digraph_gnm(40, 200, 11);
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 200);
        for v in g.vertices() {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn bipartite_edges_cross_only() {
        let g = bipartite(10, 15, 40, 2);
        assert_eq!(g.num_edges(), 40);
        for u in 0..10u32 {
            for &v in g.neighbors(u) {
                assert!(v >= 10, "edge within left side");
            }
        }
    }

    #[test]
    fn labeled_digraph_labels_in_range() {
        let g = labeled_digraph(30, 90, 4, 9);
        assert!(g.is_labeled());
        for v in g.vertices() {
            assert!(g.label(v) < 4);
        }
    }

    #[test]
    fn query_pattern_connected_as_undirected() {
        for seed in 0..4 {
            let q = query_pattern(6, 3, 3, seed);
            assert!(q.is_directed());
            let und = q.to_undirected();
            assert_eq!(connected_components(&und).1, 1);
        }
    }

    #[test]
    fn weights_consistent_across_directions() {
        let g = with_random_weights(&gnm_connected(30, 60, 1), 1.0, 10.0, 42, false);
        for (u, v, w) in g.edges() {
            assert_eq!(g.edge_weight(v, u), Some(w));
            assert!((1.0..10.0 + 1e-6).contains(&w));
        }
    }

    #[test]
    fn distinct_weights_are_distinct() {
        let g = with_random_weights(&gnm_connected(40, 90, 2), 0.0, 1.0, 7, true);
        let mut ws: Vec<u64> = g.edges().map(|(_, _, w)| w.to_bits()).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), 90);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gnm(30, 60, 5), gnm(30, 60, 5));
        assert_eq!(random_tree(30, 5), random_tree(30, 5));
        assert_eq!(rmat(6, 100, 5), rmat(6, 100, 5));
        assert_ne!(gnm(30, 60, 5), gnm(30, 60, 6));
    }

    #[test]
    fn path_diameter_is_n_minus_one() {
        let g = path(17);
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels[16], 16);
    }

    #[test]
    fn cyclic_digraph_structure() {
        let g = cyclic_digraph(20, 4, 6, 3);
        assert!(g.is_directed());
        assert!(g.num_edges() >= 20);
    }
}
