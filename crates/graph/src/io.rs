//! Plain-text edge-list IO.
//!
//! Format: one edge per line, `u v [weight]`, whitespace separated. Lines
//! starting with `#` or `%` are comments. An optional header directive
//! `# labels: l0 l1 l2 ...` carries vertex labels. Vertex count is inferred
//! as `max id + 1` unless a `# vertices: n` directive is present.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use std::io::{self, BufRead, Write};

/// Errors surfaced while parsing an edge list.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed line, with its 1-based number and content.
    Malformed { line: usize, content: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads an edge list from `reader`.
pub fn read_edge_list<R: BufRead>(reader: R, directed: bool) -> Result<Graph, ParseError> {
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut labels: Option<Vec<u32>> = None;
    let mut declared_n: Option<usize> = None;
    let mut max_id: u32 = 0;
    let mut any = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#').or_else(|| trimmed.strip_prefix('%')) {
            let rest = rest.trim();
            if let Some(spec) = rest.strip_prefix("vertices:") {
                declared_n = spec.trim().parse().ok();
            } else if let Some(spec) = rest.strip_prefix("labels:") {
                let parsed: Result<Vec<u32>, _> =
                    spec.split_whitespace().map(str::parse).collect();
                match parsed {
                    Ok(ls) => labels = Some(ls),
                    Err(_) => {
                        return Err(ParseError::Malformed {
                            line: idx + 1,
                            content: line.clone(),
                        })
                    }
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = || ParseError::Malformed {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let u: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(parse_err)?;
        let v: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(parse_err)?;
        let w: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|_| parse_err())?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(parse_err());
        }
        max_id = max_id.max(u).max(v);
        any = true;
        edges.push((u, v, w));
    }
    let n = declared_n.unwrap_or(if any { max_id as usize + 1 } else { 0 });
    let mut b = if directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::new(n)
    };
    for (u, v, w) in edges {
        b.add_weighted_edge(u, v, w);
    }
    if let Some(ls) = labels {
        b.set_labels(ls);
    }
    Ok(b.build())
}

/// Writes `g` as an edge list (with `vertices:` and optional `labels:`
/// directives) so that `read_edge_list` round-trips it.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(writer, "# vertices: {}", g.num_vertices())?;
    if let Some(labels) = g.labels() {
        write!(writer, "# labels:")?;
        for l in labels {
            write!(writer, " {l}")?;
        }
        writeln!(writer)?;
    }
    for (u, v, w) in g.edges() {
        if w == 1.0 {
            writeln!(writer, "{u} {v}")?;
        } else {
            writeln!(writer, "{u} {v} {w}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn roundtrip(g: &Graph, directed: bool) -> Graph {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(std::io::Cursor::new(buf), directed).unwrap()
    }

    #[test]
    fn roundtrip_undirected() {
        let g = generators::gnm(30, 60, 3);
        assert_eq!(roundtrip(&g, false), g);
    }

    #[test]
    fn roundtrip_directed_weighted_labeled() {
        let g = generators::with_random_weights(
            &generators::labeled_digraph(20, 50, 3, 4),
            1.0,
            5.0,
            9,
            false,
        );
        assert_eq!(roundtrip(&g, true), g);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# a comment\n% another\n\n0 1\n1 2 2.5\n";
        let g = read_edge_list(std::io::Cursor::new(text), false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(2.5));
    }

    #[test]
    fn isolated_trailing_vertices_need_directive() {
        let text = "# vertices: 5\n0 1\n";
        let g = read_edge_list(std::io::Cursor::new(text), false).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn malformed_line_is_reported_with_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(std::io::Cursor::new(text), false).unwrap_err();
        match err {
            ParseError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn too_many_fields_rejected() {
        let text = "0 1 2.0 extra\n";
        assert!(read_edge_list(std::io::Cursor::new(text), false).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(std::io::Cursor::new(""), false).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
