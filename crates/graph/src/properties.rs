//! Graph property probes used to parameterize the complexity analysis
//! (the paper's Table 1 is stated in terms of `n`, `m`, the diameter `δ`,
//! and query sizes `n_q`, `m_q`).

use crate::graph::{Graph, VertexId};
use crate::traversal::bfs_levels;

/// Exact diameter `δ` by running BFS from every vertex; `None` for a
/// disconnected (or empty) graph. Intended for family metadata at benchmark
/// sizes, not as a competitive diameter algorithm (that is row 1's job).
pub fn exact_diameter(g: &Graph) -> Option<u32> {
    if g.num_vertices() == 0 {
        return None;
    }
    let mut best = 0u32;
    for v in g.vertices() {
        let levels = bfs_levels(g, v);
        let mut ecc = 0u32;
        for &d in &levels {
            if d == u32::MAX {
                return None;
            }
            ecc = ecc.max(d);
        }
        best = best.max(ecc);
    }
    Some(best)
}

/// Cheap diameter lower/upper estimate via a double BFS sweep from `start`:
/// returns the eccentricity of the farthest vertex found. Exact on trees;
/// a 2-approximation lower bound in general. Used for family metadata on
/// large graphs where the exact probe would be quadratic.
pub fn double_sweep_diameter(g: &Graph, start: VertexId) -> Option<u32> {
    if g.num_vertices() == 0 {
        return None;
    }
    let first = bfs_levels(g, start);
    let mut far = start;
    let mut far_d = 0u32;
    for (v, &d) in first.iter().enumerate() {
        if d == u32::MAX {
            return None;
        }
        if d > far_d {
            far_d = d;
            far = v as VertexId;
        }
    }
    let second = bfs_levels(g, far);
    second.into_iter().max()
}

/// Summary degree statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
}

/// Degree statistics over `bppa_degree` (d(v), or d_in+d_out for digraphs).
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    for v in g.vertices() {
        let d = g.bppa_degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / n as f64,
    }
}

/// Whether an undirected graph is bipartite; returns the two-coloring if so.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    assert!(!g.is_directed(), "bipartition requires an undirected graph");
    let n = g.num_vertices();
    let mut color = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as VertexId {
        if color[s as usize] != u8::MAX {
            continue;
        }
        color[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if color[v as usize] == u8::MAX {
                    color[v as usize] = 1 - color[u as usize];
                    queue.push_back(v);
                } else if color[v as usize] == color[u as usize] {
                    return None;
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(exact_diameter(&generators::path(10)), Some(9));
        assert_eq!(exact_diameter(&generators::cycle(10)), Some(5));
        assert_eq!(exact_diameter(&generators::complete(5)), Some(1));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = crate::GraphBuilder::new(3).build();
        assert_eq!(exact_diameter(&g), None);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        for seed in 0..5 {
            let t = generators::random_tree(60, seed);
            assert_eq!(
                double_sweep_diameter(&t, 0),
                exact_diameter(&t),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn double_sweep_lower_bounds_general() {
        let g = generators::gnm_connected(50, 90, 4);
        let exact = exact_diameter(&g).unwrap();
        let sweep = double_sweep_diameter(&g, 0).unwrap();
        assert!(sweep <= exact);
        assert!(sweep * 2 >= exact);
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&generators::star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn bipartition_detects() {
        assert!(bipartition(&generators::path(6)).is_some());
        assert!(bipartition(&generators::cycle(6)).is_some());
        assert!(bipartition(&generators::cycle(5)).is_none());
        let b = generators::bipartite(5, 7, 20, 1);
        let coloring = bipartition(&b).unwrap();
        for (u, v, _) in b.edges() {
            assert_ne!(coloring[u as usize], coloring[v as usize]);
        }
    }
}
