//! Graph mutations and incremental CSR application.
//!
//! The serving layer (`vcgp-stress`) treats the resident [`Graph`] as an
//! immutable epoch snapshot; a writer thread folds a batch of [`Mutation`]s
//! into the *next* epoch's graph. [`apply_batch`] is that fold: it edits
//! only the adjacency rows a batch touches (a sorted edit map over the old
//! CSR) and then splices edited rows with straight copies of the untouched
//! ones — no per-edge re-sorting, dedup passes, or hash probes over the
//! whole edge list the way a from-scratch [`GraphBuilder`] rebuild would
//! need. [`splice_slice`] does the same for a shard's local out-adjacency
//! slice, so a sharded swap rebuilds `S` slices in time proportional to the
//! delta (plus the unavoidable array copies), not `S` full builds.
//!
//! **Semantics mirror the generator guards** (`gnm_connected` refuses
//! self-loops and duplicate edges), so a mutated graph can never leave the
//! class the generators produce:
//!
//! * inserting a self-loop, a duplicate edge, or an edge with an endpoint
//!   outside the current vertex range is a counted no-op;
//! * deleting or reweighting a missing edge is a counted no-op;
//! * reweighting is gated on the graph being weighted (initially, or made
//!   so by an explicit weighted insert in the same batch) — on an
//!   unweighted graph it is a no-op, so a mutation stream can never flip a
//!   graph's weight class implicitly and drop workloads mid-run;
//! * [`Mutation::RemoveVertex`] *detaches* (drops every incident edge) but
//!   never shrinks the id space — vertex ids stay stable across epochs,
//!   which is what keeps shard ownership a frozen pure function of the id.
//!
//! The rank-addressed forms ([`Mutation::DeleteEdgeAt`],
//! [`Mutation::ReweightAt`]) resolve a *positional* index against the
//! current sorted adjacency of `u` at apply time. A seeded mutation stream
//! needs them: on a sparse graph a random `(u, v)` pair almost never names
//! an existing edge, so plain deletes would be ~98 % no-ops; `(u, rank)`
//! always hits while remaining a deterministic function of the stream and
//! the apply order.
//!
//! [`GraphBuilder::apply`](crate::builder::GraphBuilder::apply) implements
//! the same semantics on the builder's edge list and serves as the
//! from-scratch oracle: for any base graph and batch,
//! `apply_batch(g, batch).0 == GraphBuilder::from_graph(g).apply(batch).build()`
//! (property-tested below).

use crate::graph::{Graph, VertexId};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One edit to the resident graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mutation {
    /// Insert the edge `{u, v}` (arc `u -> v` on digraphs) with weight `w`.
    /// No-op if it already exists, is a self-loop, or an endpoint is out of
    /// range. Weights other than `1.0` make the graph weighted.
    InsertEdge {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
        /// Edge weight (`1.0` keeps the graph's weight class unchanged).
        w: f64,
    },
    /// Delete the edge `{u, v}` (arc `u -> v` on digraphs); a no-op when
    /// the edge does not exist.
    DeleteEdge {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
    },
    /// Delete the edge at position `rank % out_degree(u)` in `u`'s sorted
    /// adjacency (at the time this mutation applies); a no-op when `u` is
    /// out of range or currently has no out-edges.
    DeleteEdgeAt {
        /// Vertex whose adjacency is indexed.
        u: VertexId,
        /// Positional index, reduced modulo the current out-degree.
        rank: u32,
    },
    /// Set the weight of the existing edge `{u, v}` to `w`. No-op when the
    /// edge is missing or the graph is unweighted (see the module docs).
    Reweight {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
        /// New weight.
        w: f64,
    },
    /// [`Mutation::Reweight`] addressed by adjacency position, like
    /// [`Mutation::DeleteEdgeAt`].
    ReweightAt {
        /// Vertex whose adjacency is indexed.
        u: VertexId,
        /// Positional index, reduced modulo the current out-degree.
        rank: u32,
        /// New weight.
        w: f64,
    },
    /// Append a new isolated vertex (id = current `n`). The label is stored
    /// only when the graph is labeled.
    AddVertex {
        /// Label for the new vertex (ignored on unlabeled graphs).
        label: u32,
    },
    /// Detach vertex `v`: drop every incident edge. The id space never
    /// shrinks — `v` remains a valid, isolated vertex. No-op when `v` is
    /// out of range or already isolated.
    RemoveVertex {
        /// The vertex to detach.
        v: VertexId,
    },
}

/// How many mutations of a batch changed the graph vs. landed as no-ops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Mutations that changed the graph.
    pub applied: u64,
    /// Mutations absorbed as no-ops (duplicate insert, delete-of-missing,
    /// self-loop, out-of-range id, reweight-on-unweighted, …).
    pub noops: u64,
}

/// The result summary of [`apply_batch`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyDelta {
    /// Applied/no-op counts.
    pub stats: ApplyStats,
    /// Every vertex whose adjacency row (or existence) changed, sorted and
    /// deduplicated — the work-list an incremental shard-slice rebuild
    /// ([`splice_slice`]) needs.
    pub touched: Vec<VertexId>,
    /// Vertex count of the new graph (grows under [`Mutation::AddVertex`]).
    pub new_n: usize,
}

/// One adjacency row under edit: `(target, weight)` pairs sorted by target.
type Row = Vec<(VertexId, f64)>;

/// Inserts `(t, w)` into a sorted row; `false` if `t` is already present.
fn row_insert(row: &mut Row, t: VertexId, w: f64) -> bool {
    match row.binary_search_by_key(&t, |&(x, _)| x) {
        Ok(_) => false,
        Err(idx) => {
            row.insert(idx, (t, w));
            true
        }
    }
}

/// Removes every `(t, _)` entry; returns how many were removed.
fn row_remove_all(row: &mut Row, t: VertexId) -> usize {
    let before = row.len();
    row.retain(|&(x, _)| x != t);
    before - row.len()
}

/// Sets the weight of every `(t, _)` entry; returns how many were updated.
fn row_set_weight(row: &mut Row, t: VertexId, w: f64) -> usize {
    let mut updated = 0;
    for e in row.iter_mut().filter(|e| e.0 == t) {
        e.1 = w;
        updated += 1;
    }
    updated
}

/// The in-flight edit state of one batch application.
struct EditState<'g> {
    g: &'g Graph,
    base_n: usize,
    n: usize,
    directed: bool,
    /// Edited forward rows (absent = unchanged from `g`).
    fwd: BTreeMap<VertexId, Row>,
    /// Edited reverse rows (directed graphs only).
    rev: BTreeMap<VertexId, Row>,
    labels: Option<Vec<u32>>,
    touched: BTreeSet<VertexId>,
    /// Whether reweights apply: true when the base graph is weighted or an
    /// explicit non-unit weight entered during this batch.
    weighted_gate: bool,
    stats: ApplyStats,
}

impl<'g> EditState<'g> {
    fn new(g: &'g Graph) -> Self {
        EditState {
            g,
            base_n: g.num_vertices(),
            n: g.num_vertices(),
            directed: g.is_directed(),
            fwd: BTreeMap::new(),
            rev: BTreeMap::new(),
            labels: g.labels().map(|l| l.to_vec()),
            touched: BTreeSet::new(),
            weighted_gate: g.is_weighted(),
            stats: ApplyStats::default(),
        }
    }

    /// The current forward row of `v`, materializing it into the edit map.
    fn fwd_row(&mut self, v: VertexId) -> &mut Row {
        let (g, base_n) = (self.g, self.base_n);
        self.fwd.entry(v).or_insert_with(|| {
            if (v as usize) < base_n {
                g.out_edges(v).collect()
            } else {
                Vec::new()
            }
        })
    }

    /// The current reverse (in-adjacency) row of `v`; directed graphs only.
    fn rev_row(&mut self, v: VertexId) -> &mut Row {
        debug_assert!(self.directed);
        let (g, base_n) = (self.g, self.base_n);
        self.rev.entry(v).or_insert_with(|| {
            if (v as usize) < base_n {
                g.in_edges(v).collect()
            } else {
                Vec::new()
            }
        })
    }

    fn in_range(&self, v: VertexId) -> bool {
        (v as usize) < self.n
    }

    fn applied(&mut self) {
        self.stats.applied += 1;
    }

    fn noop(&mut self) {
        self.stats.noops += 1;
    }

    fn insert_edge(&mut self, u: VertexId, v: VertexId, w: f64) {
        if u == v || !self.in_range(u) || !self.in_range(v) {
            return self.noop();
        }
        if !row_insert(self.fwd_row(u), v, w) {
            return self.noop();
        }
        if self.directed {
            row_insert(self.rev_row(v), u, w);
        } else {
            row_insert(self.fwd_row(v), u, w);
        }
        self.touched.insert(u);
        self.touched.insert(v);
        if w != 1.0 {
            self.weighted_gate = true;
        }
        self.applied();
    }

    fn delete_edge(&mut self, u: VertexId, v: VertexId) {
        if !self.in_range(u) || !self.in_range(v) {
            return self.noop();
        }
        if row_remove_all(self.fwd_row(u), v) == 0 {
            return self.noop();
        }
        if self.directed {
            row_remove_all(self.rev_row(v), u);
        } else if u != v {
            row_remove_all(self.fwd_row(v), u);
        }
        self.touched.insert(u);
        self.touched.insert(v);
        self.applied();
    }

    /// Resolves `(u, rank)` to the concrete target in `u`'s current sorted
    /// adjacency, or `None` when `u` is out of range or isolated.
    fn resolve_rank(&mut self, u: VertexId, rank: u32) -> Option<VertexId> {
        if !self.in_range(u) {
            return None;
        }
        let row = self.fwd_row(u);
        if row.is_empty() {
            return None;
        }
        Some(row[rank as usize % row.len()].0)
    }

    fn reweight(&mut self, u: VertexId, v: VertexId, w: f64) {
        if !self.weighted_gate || !self.in_range(u) || !self.in_range(v) {
            return self.noop();
        }
        if row_set_weight(self.fwd_row(u), v, w) == 0 {
            return self.noop();
        }
        if self.directed {
            row_set_weight(self.rev_row(v), u, w);
        } else if u != v {
            row_set_weight(self.fwd_row(v), u, w);
        }
        self.touched.insert(u);
        self.touched.insert(v);
        if w != 1.0 {
            self.weighted_gate = true;
        }
        self.applied();
    }

    fn add_vertex(&mut self, label: u32) {
        if self.n + 1 >= u32::MAX as usize {
            return self.noop();
        }
        let id = self.n as VertexId;
        self.n += 1;
        if let Some(labels) = &mut self.labels {
            labels.push(label);
        }
        self.touched.insert(id);
        self.applied();
    }

    fn remove_vertex(&mut self, v: VertexId) {
        if !self.in_range(v) {
            return self.noop();
        }
        let out: Row = self.fwd_row(v).clone();
        let incoming: Row = if self.directed {
            self.rev_row(v).clone()
        } else {
            Vec::new()
        };
        if out.is_empty() && incoming.is_empty() {
            return self.noop();
        }
        for &(t, _) in &out {
            if t == v {
                continue; // the self-loop dies with the row clear below
            }
            if self.directed {
                row_remove_all(self.rev_row(t), v);
            } else {
                row_remove_all(self.fwd_row(t), v);
            }
            self.touched.insert(t);
        }
        for &(s, _) in &incoming {
            if s != v {
                row_remove_all(self.fwd_row(s), v);
                self.touched.insert(s);
            }
        }
        self.fwd_row(v).clear();
        if self.directed {
            self.rev_row(v).clear();
        }
        self.touched.insert(v);
        self.applied();
    }
}

/// Applies `batch` in order to `graph`, returning the new graph and a
/// summary of what changed. See the module docs for the exact semantics of
/// each [`Mutation`]; the input graph is untouched (epoch snapshots are
/// immutable).
pub fn apply_batch(graph: &Graph, batch: &[Mutation]) -> (Graph, ApplyDelta) {
    let mut st = EditState::new(graph);
    for m in batch {
        match *m {
            Mutation::InsertEdge { u, v, w } => st.insert_edge(u, v, w),
            Mutation::DeleteEdge { u, v } => st.delete_edge(u, v),
            Mutation::DeleteEdgeAt { u, rank } => match st.resolve_rank(u, rank) {
                Some(t) => st.delete_edge(u, t),
                None => st.noop(),
            },
            Mutation::Reweight { u, v, w } => st.reweight(u, v, w),
            Mutation::ReweightAt { u, rank, w } => {
                // Gate first so the no-op outcome does not depend on the
                // (irrelevant) adjacency of `u` — and matches the builder
                // oracle exactly.
                if st.weighted_gate {
                    match st.resolve_rank(u, rank) {
                        Some(t) => st.reweight(u, t, w),
                        None => st.noop(),
                    }
                } else {
                    st.noop();
                }
            }
            Mutation::AddVertex { label } => st.add_vertex(label),
            Mutation::RemoveVertex { v } => st.remove_vertex(v),
        }
    }

    let EditState {
        g,
        base_n,
        n,
        directed,
        fwd,
        rev,
        labels,
        touched,
        stats,
        ..
    } = st;

    let (offsets, targets, weights) =
        splice_csr(n, base_n, &g.offsets, &g.targets, &g.weights, &fwd);
    let (rev_offsets, rev_targets, rev_weights) = if directed {
        splice_csr(n, base_n, &g.rev_offsets, &g.rev_targets, &g.rev_weights, &rev)
    } else {
        (Vec::new(), Vec::new(), Vec::new())
    };
    let weighted = weights.iter().any(|&w| w != 1.0);
    let num_edges = if directed {
        targets.len()
    } else {
        // Undirected CSR stores a non-loop edge twice and a self-loop once:
        // arcs = 2(m - loops) + loops, so m = (arcs + loops) / 2.
        let loops = (0..n)
            .map(|v| {
                targets[offsets[v]..offsets[v + 1]]
                    .iter()
                    .filter(|&&t| t as usize == v)
                    .count()
            })
            .sum::<usize>();
        (targets.len() + loops) / 2
    };
    let new_graph = Graph {
        directed,
        weighted,
        num_edges,
        offsets,
        targets,
        weights,
        rev_offsets,
        rev_targets,
        rev_weights,
        labels,
    };
    let delta = ApplyDelta {
        stats,
        touched: touched.into_iter().collect(),
        new_n: n,
    };
    (new_graph, delta)
}

/// Splices edited rows into fresh CSR arrays: untouched rows are copied
/// from the old arrays, edited rows come from the map, rows past the old
/// vertex count default to empty unless edited.
fn splice_csr(
    new_n: usize,
    old_n: usize,
    old_offsets: &[usize],
    old_targets: &[VertexId],
    old_weights: &[f64],
    edits: &BTreeMap<VertexId, Row>,
) -> (Vec<usize>, Vec<VertexId>, Vec<f64>) {
    let mut arcs = old_targets.len();
    for (&v, row) in edits {
        let old_len = if (v as usize) < old_n {
            old_offsets[v as usize + 1] - old_offsets[v as usize]
        } else {
            0
        };
        arcs = arcs + row.len() - old_len;
    }
    let mut offsets = Vec::with_capacity(new_n + 1);
    let mut targets = Vec::with_capacity(arcs);
    let mut weights = Vec::with_capacity(arcs);
    offsets.push(0);
    for v in 0..new_n {
        match edits.get(&(v as VertexId)) {
            Some(row) => {
                for &(t, w) in row {
                    targets.push(t);
                    weights.push(w);
                }
            }
            None if v < old_n => {
                let (a, b) = (old_offsets[v], old_offsets[v + 1]);
                targets.extend_from_slice(&old_targets[a..b]);
                weights.extend_from_slice(&old_weights[a..b]);
            }
            None => {}
        }
        offsets.push(targets.len());
    }
    (offsets, targets, weights)
}

/// Incrementally rebuilds one shard's local out-adjacency slice (see the
/// sharded service: a *directed* CSR over the full id space holding exactly
/// the out-arcs of owned vertices) for the new epoch graph `full_new`,
/// given the `touched` vertex list of [`apply_batch`]'s [`ApplyDelta`] and
/// the shard's ownership predicate. Only touched owned rows are re-read
/// from the new graph; everything else is spliced straight from
/// `old_slice`, including its reverse CSR (patched by multiset diff).
pub fn splice_slice(
    old_slice: &Graph,
    full_new: &Graph,
    touched: &[VertexId],
    owns: &dyn Fn(VertexId) -> bool,
) -> Graph {
    assert!(old_slice.is_directed(), "shard slices are directed CSRs");
    let old_n = old_slice.num_vertices();
    let new_n = full_new.num_vertices();
    debug_assert!(new_n >= old_n, "the id space never shrinks");

    let mut fwd: BTreeMap<VertexId, Row> = BTreeMap::new();
    for &v in touched {
        if (v as usize) < new_n && owns(v) {
            fwd.insert(v, full_new.out_edges(v).collect());
        }
    }

    // Patch the reverse CSR by diffing each edited forward row against its
    // old content: removed arcs drop their (target -> source) mirror,
    // added arcs insert one, keeping every reverse row sorted by source.
    let mut rev: BTreeMap<VertexId, Row> = BTreeMap::new();
    for (&v, new_row) in &fwd {
        let old_row: Row = if (v as usize) < old_n {
            old_slice.out_edges(v).collect()
        } else {
            Vec::new()
        };
        let mut counts: HashMap<(VertexId, u64), i64> = HashMap::new();
        for &(t, w) in new_row {
            *counts.entry((t, w.to_bits())).or_insert(0) += 1;
        }
        for &(t, w) in &old_row {
            *counts.entry((t, w.to_bits())).or_insert(0) -= 1;
        }
        for ((t, wbits), c) in counts {
            if c == 0 {
                continue;
            }
            let row = match rev.entry(t) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(if (t as usize) < old_n {
                    old_slice.in_edges(t).collect()
                } else {
                    Vec::new()
                }),
            };
            let w = f64::from_bits(wbits);
            if c > 0 {
                for _ in 0..c {
                    let idx = row.partition_point(|&(s, _)| s < v);
                    row.insert(idx, (v, w));
                }
            } else {
                for _ in 0..(-c) {
                    if let Some(idx) = row.iter().position(|&(s, rw)| s == v && rw == w) {
                        row.remove(idx);
                    } else if let Some(idx) = row.iter().position(|&(s, _)| s == v) {
                        row.remove(idx);
                    }
                }
            }
        }
    }

    let (offsets, targets, weights) = splice_csr(
        new_n,
        old_n,
        &old_slice.offsets,
        &old_slice.targets,
        &old_slice.weights,
        &fwd,
    );
    let (rev_offsets, rev_targets, rev_weights) = splice_csr(
        new_n,
        old_n,
        &old_slice.rev_offsets,
        &old_slice.rev_targets,
        &old_slice.rev_weights,
        &rev,
    );
    let weighted = weights.iter().any(|&w| w != 1.0);
    let num_edges = targets.len();
    Graph {
        directed: true,
        weighted,
        num_edges,
        offsets,
        targets,
        weights,
        rev_offsets,
        rev_targets,
        rev_weights,
        labels: full_new.labels().map(|l| l.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;
    use crate::rng::SplitMix64;

    fn path4() -> Graph {
        // 0-1-2-3 path, undirected, unweighted.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn insert_then_reapply_is_idempotent() {
        let g = path4();
        let batch = [Mutation::InsertEdge { u: 0, v: 3, w: 1.0 }];
        let (g1, d1) = apply_batch(&g, &batch);
        assert_eq!(d1.stats, ApplyStats { applied: 1, noops: 0 });
        assert!(g1.has_edge(0, 3) && g1.has_edge(3, 0));
        assert_eq!(g1.num_edges(), 4);
        // Re-applying the same batch is a pure no-op: same graph, no drift.
        let (g2, d2) = apply_batch(&g1, &batch);
        assert_eq!(d2.stats, ApplyStats { applied: 0, noops: 1 });
        assert_eq!(g2, g1);
        assert!(d2.touched.is_empty());
    }

    #[test]
    fn delete_of_missing_is_noop() {
        let g = path4();
        let batch = [
            Mutation::DeleteEdge { u: 0, v: 3 },  // never existed
            Mutation::DeleteEdge { u: 0, v: 99 }, // out of range
            Mutation::DeleteEdge { u: 0, v: 1 },  // exists
            Mutation::DeleteEdge { u: 1, v: 0 },  // just deleted (mirror)
        ];
        let (g1, d) = apply_batch(&g, &batch);
        assert_eq!(d.stats, ApplyStats { applied: 1, noops: 3 });
        assert!(!g1.has_edge(0, 1) && !g1.has_edge(1, 0));
        assert_eq!(g1.num_edges(), 2);
    }

    #[test]
    fn self_loop_and_duplicate_inserts_are_noops() {
        let g = path4();
        let (g1, d) = apply_batch(
            &g,
            &[
                Mutation::InsertEdge { u: 2, v: 2, w: 1.0 }, // self-loop
                Mutation::InsertEdge { u: 0, v: 1, w: 1.0 }, // duplicate
                Mutation::InsertEdge { u: 1, v: 0, w: 1.0 }, // mirror duplicate
                Mutation::InsertEdge { u: 9, v: 0, w: 1.0 }, // out of range
            ],
        );
        assert_eq!(d.stats, ApplyStats { applied: 0, noops: 4 });
        assert_eq!(g1, g);
    }

    #[test]
    fn reweight_gated_on_weighted_graphs() {
        let g = path4();
        // Unweighted graph: reweights are no-ops, positional or not.
        let (g1, d) = apply_batch(
            &g,
            &[
                Mutation::Reweight { u: 0, v: 1, w: 5.0 },
                Mutation::ReweightAt { u: 1, rank: 0, w: 5.0 },
            ],
        );
        assert_eq!(d.stats, ApplyStats { applied: 0, noops: 2 });
        assert_eq!(g1, g);
        assert!(!g1.is_weighted());
        // An explicit weighted insert opens the gate within the same batch.
        let (g2, d2) = apply_batch(
            &g,
            &[
                Mutation::InsertEdge { u: 0, v: 2, w: 2.5 },
                Mutation::Reweight { u: 0, v: 1, w: 5.0 },
            ],
        );
        assert_eq!(d2.stats, ApplyStats { applied: 2, noops: 0 });
        assert!(g2.is_weighted());
        assert_eq!(g2.edge_weight(0, 1), Some(5.0));
        assert_eq!(g2.edge_weight(1, 0), Some(5.0));
    }

    #[test]
    fn rank_addressed_delete_hits_sorted_adjacency() {
        let g = path4();
        // Vertex 1's sorted adjacency is [0, 2]; rank 5 % 2 = 1 names 2.
        let (g1, d) = apply_batch(&g, &[Mutation::DeleteEdgeAt { u: 1, rank: 5 }]);
        assert_eq!(d.stats.applied, 1);
        assert!(!g1.has_edge(1, 2));
        assert!(g1.has_edge(1, 0));
        // Isolated vertex: positional delete is a no-op.
        let (g2, _) = apply_batch(&g1, &[Mutation::RemoveVertex { v: 3 }]);
        let (_, d2) = apply_batch(&g2, &[Mutation::DeleteEdgeAt { u: 3, rank: 0 }]);
        assert_eq!(d2.stats, ApplyStats { applied: 0, noops: 1 });
    }

    #[test]
    fn add_vertex_grows_id_space() {
        let g = path4();
        let (g1, d) = apply_batch(
            &g,
            &[
                Mutation::AddVertex { label: 7 },
                Mutation::InsertEdge { u: 4, v: 0, w: 1.0 },
            ],
        );
        assert_eq!(d.stats.applied, 2);
        assert_eq!(g1.num_vertices(), 5);
        assert_eq!(d.new_n, 5);
        assert!(g1.has_edge(4, 0) && g1.has_edge(0, 4));
        // Unlabeled base: the label is ignored, the graph stays unlabeled.
        assert!(!g1.is_labeled());
        assert!(d.touched.contains(&4));
    }

    #[test]
    fn add_vertex_extends_labels_on_labeled_graphs() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.set_labels(vec![3, 4]);
        let g = b.build();
        let (g1, _) = apply_batch(&g, &[Mutation::AddVertex { label: 9 }]);
        assert_eq!(g1.labels(), Some(&[3, 4, 9][..]));
    }

    #[test]
    fn remove_vertex_detaches_but_keeps_id() {
        let g = path4();
        let (g1, d) = apply_batch(&g, &[Mutation::RemoveVertex { v: 1 }]);
        assert_eq!(d.stats.applied, 1);
        assert_eq!(g1.num_vertices(), 4);
        assert!(g1.neighbors(1).is_empty());
        assert!(!g1.has_edge(0, 1) && !g1.has_edge(2, 1));
        assert_eq!(g1.num_edges(), 1);
        // Detaching an already-isolated vertex is a no-op.
        let (g2, d2) = apply_batch(&g1, &[Mutation::RemoveVertex { v: 1 }]);
        assert_eq!(d2.stats, ApplyStats { applied: 0, noops: 1 });
        assert_eq!(g2, g1);
    }

    #[test]
    fn directed_apply_maintains_reverse_csr() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        let g = b.build();
        let (g1, d) = apply_batch(
            &g,
            &[
                Mutation::InsertEdge { u: 3, v: 1, w: 1.0 },
                Mutation::DeleteEdge { u: 0, v: 1 },
                Mutation::RemoveVertex { v: 2 },
            ],
        );
        assert_eq!(d.stats.applied, 3);
        assert_eq!(g1.out_neighbors(3), &[1]);
        assert_eq!(g1.in_neighbors(1), &[3]);
        assert!(g1.out_neighbors(2).is_empty());
        assert!(g1.in_neighbors(2).is_empty());
        assert!(g1.in_neighbors(0).is_empty()); // 2 -> 0 died with vertex 2
        assert_eq!(g1.num_edges(), 1);
    }

    /// Draws a random but seed-deterministic mutation batch over a graph
    /// with `n` vertices, exercising every variant.
    fn random_batch(rng: &mut SplitMix64, n: usize, len: usize) -> Vec<Mutation> {
        (0..len)
            .map(|_| {
                let u = rng.next_index(n + 2) as VertexId; // sometimes out of range
                let v = rng.next_index(n + 2) as VertexId;
                let w = if rng.next_bool(0.5) {
                    1.0
                } else {
                    (rng.next_below(8) + 1) as f64 / 2.0
                };
                match rng.next_below(7) {
                    0 => Mutation::InsertEdge { u, v, w },
                    1 => Mutation::DeleteEdge { u, v },
                    2 => Mutation::DeleteEdgeAt { u, rank: rng.next_below(16) as u32 },
                    3 => Mutation::Reweight { u, v, w },
                    4 => Mutation::ReweightAt { u, rank: rng.next_below(16) as u32, w },
                    5 => Mutation::AddVertex { label: rng.next_below(8) as u32 },
                    _ => Mutation::RemoveVertex { v },
                }
            })
            .collect()
    }

    #[test]
    fn apply_batch_equals_builder_oracle() {
        // The incremental CSR splice must agree bit-for-bit with replaying
        // the same semantics through a from-scratch GraphBuilder rebuild,
        // on directed and undirected, weighted and unweighted bases.
        for seed in 0..12u64 {
            let mut rng = SplitMix64::new(0xBA7C_0000 + seed);
            let n = 6 + rng.next_index(10);
            let m = (n - 1) + rng.next_index(n);
            let base = if seed % 2 == 0 {
                generators::gnm_connected(n, m, seed)
            } else {
                let mut b = GraphBuilder::directed(n);
                for _ in 0..m {
                    let u = rng.next_index(n) as VertexId;
                    let v = rng.next_index(n) as VertexId;
                    if u != v {
                        b.add_weighted_edge(u, v, (rng.next_below(4) + 1) as f64);
                    }
                }
                b.dedup().build()
            };
            let batch = random_batch(&mut rng, base.num_vertices(), 24);
            let (incremental, delta) = apply_batch(&base, &batch);
            let mut oracle = GraphBuilder::from_graph(&base);
            let oracle_stats = oracle.apply(&batch);
            let rebuilt = oracle.build();
            assert_eq!(incremental, rebuilt, "seed {seed}");
            assert_eq!(delta.stats, oracle_stats, "seed {seed}");
            assert_eq!(
                delta.stats.applied + delta.stats.noops,
                batch.len() as u64,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn splice_slice_equals_full_slice_rebuild() {
        let base = generators::gnm_connected(24, 60, 3);
        let owns = |shard: usize, s_total: usize| move |v: VertexId| v as usize % s_total == shard;
        let build_slice = |full: &Graph, shard: usize, s_total: usize| {
            let n = full.num_vertices();
            let mut b = GraphBuilder::directed(n);
            for v in 0..n as VertexId {
                if v as usize % s_total == shard {
                    for (t, w) in full.out_edges(v) {
                        b.add_weighted_edge(v, t, w);
                    }
                }
            }
            if let Some(labels) = full.labels() {
                b.set_labels(labels.to_vec());
            }
            b.build()
        };
        let mut rng = SplitMix64::new(0x51CE);
        let batch = random_batch(&mut rng, base.num_vertices(), 20);
        let (new_full, delta) = apply_batch(&base, &batch);
        for s in 0..3 {
            let old_slice = build_slice(&base, s, 3);
            let spliced = splice_slice(&old_slice, &new_full, &delta.touched, &owns(s, 3));
            let rebuilt = build_slice(&new_full, s, 3);
            assert_eq!(spliced, rebuilt, "shard {s}");
        }
    }

    #[test]
    fn untouched_graph_splices_to_equal_graph() {
        let g = generators::gnm_connected(16, 30, 9);
        let (g1, d) = apply_batch(&g, &[]);
        assert_eq!(g1, g);
        assert_eq!(d.stats, ApplyStats::default());
        assert!(d.touched.is_empty());
    }
}
