//! Row 15: betweenness centrality on unweighted graphs, vertex-centric
//! (Redekopp et al. \[18\]): a BSP realization of Brandes' algorithm.
//!
//! Per source: a forward BFS wave accumulates shortest-path counts `σ`
//! level by level; then the master walks levels downward and each level's
//! vertices push their dependency `δ` to the previous level. `O(ecc(s))`
//! supersteps and `O(m)` messages per level-pair per source — `O(mn)`
//! total, matching Brandes sequentially (row 15: "more work: no"), but not
//! BPPA (supersteps scale with `n·δ`, not `log n`).

use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Per-vertex Brandes state for one source.
#[derive(Debug, Clone)]
pub struct BrandesState {
    /// BFS hop distance from the source (`-1` = unreached).
    dist: i64,
    /// Number of shortest paths from the source.
    sigma: f64,
    /// Accumulated dependency.
    delta: f64,
}

impl Default for BrandesState {
    fn default() -> Self {
        BrandesState {
            dist: -1,
            sigma: 0.0,
            delta: 0.0,
        }
    }
}

impl StateSize for BrandesState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Forward σ contribution.
    Sigma(f64),
    /// Backward dependency broadcast: `(dist, sigma, delta)` of the sender.
    Dep(i64, f64, f64),
}

struct Brandes {
    source: VertexId,
}

/// Globals: 0 = phase (0 forward, 1 backward), 1 = current backward level.
/// Aggregators: 0 = MaxI64 of distances set this superstep.
impl VertexProgram for Brandes {
    type Value = BrandesState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        if ctx.global(0).as_i64() == 0 {
            // ---- Forward BFS with sigma accumulation ----
            if ctx.superstep() == 0 {
                if ctx.id() == self.source {
                    let state = ctx.value_mut();
                    state.dist = 0;
                    state.sigma = 1.0;
                    ctx.aggregate(0, AggValue::I64(0));
                    ctx.send_to_all_out_neighbors(Msg::Sigma(1.0));
                }
                ctx.vote_to_halt();
                return;
            }
            if ctx.value().dist < 0 {
                let sigma: f64 = messages
                    .iter()
                    .map(|m| match m {
                        Msg::Sigma(s) => *s,
                        _ => 0.0,
                    })
                    .sum();
                if sigma > 0.0 {
                    let dist = ctx.superstep() as i64;
                    let state = ctx.value_mut();
                    state.dist = dist;
                    state.sigma = sigma;
                    ctx.aggregate(0, AggValue::I64(dist));
                    ctx.send_to_all_out_neighbors(Msg::Sigma(sigma));
                }
            }
            ctx.vote_to_halt();
        } else {
            // ---- Backward dependency accumulation, level by level ----
            let my_dist = ctx.value().dist;
            if my_dist < 0 {
                ctx.vote_to_halt();
                return;
            }
            let mut gained = 0.0;
            for m in messages {
                if let Msg::Dep(d, s, delta) = *m {
                    if d == my_dist + 1 {
                        gained += ctx.value().sigma / s * (1.0 + delta);
                    }
                }
            }
            ctx.value_mut().delta += gained;
            let level = ctx.global(1).as_i64();
            if my_dist == level && level > 0 {
                let (sigma, delta) = (ctx.value().sigma, ctx.value().delta);
                ctx.send_to_all_out_neighbors(Msg::Dep(my_dist, sigma, delta));
            }
            ctx.vote_to_halt();
        }
    }

    fn combiner(&self) -> Option<fn(&mut Msg, Msg)> {
        // Sigma messages are summable, but Dep messages are not (receivers
        // filter by sender level) — no combiner.
        None
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![AggregatorDef::new("max_dist", AggOp::MaxI64)]
    }

    fn globals(&self) -> Vec<AggValue> {
        vec![
            AggValue::I64(0),  // phase
            AggValue::I64(-1), // backward level
            AggValue::I64(0),  // overall max distance (accumulated)
        ]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        let phase = master.global(0).as_i64();
        if phase == 0 {
            let seen = master.read_aggregate(0).as_i64();
            if seen != i64::MIN {
                let acc = master.global(2).as_i64().max(seen);
                master.set_global(2, AggValue::I64(acc));
            }
            if master.num_active() == 0 {
                // Forward wave exhausted: begin the backward sweep from the
                // deepest level.
                let max_dist = master.global(2).as_i64();
                if max_dist == 0 {
                    master.halt(); // isolated source
                    return;
                }
                master.set_global(0, AggValue::I64(1));
                master.set_global(1, AggValue::I64(max_dist));
                master.reactivate_all();
            }
        } else {
            let level = master.global(1).as_i64();
            if level <= 0 {
                master.halt();
                return;
            }
            master.set_global(1, AggValue::I64(level - 1));
            master.reactivate_all();
        }
    }
}

/// Result of vertex-centric betweenness.
#[derive(Debug, Clone)]
pub struct BetweennessResult {
    /// Centrality per vertex (raw ordered-pair convention, matching the
    /// sequential Brandes baseline).
    pub scores: Vec<f64>,
    /// Merged instrumentation of all per-source runs.
    pub stats: RunStats,
}

/// Runs BSP Brandes from every vertex in `sources` (or all vertices when
/// `None`), summing dependencies.
pub fn run(graph: &Graph, sources: Option<&[VertexId]>, config: &PregelConfig) -> BetweennessResult {
    let n = graph.num_vertices();
    let all: Vec<VertexId>;
    let sources = match sources {
        Some(s) => s,
        None => {
            all = (0..n as VertexId).collect();
            &all
        }
    };
    let mut scores = vec![0.0f64; n];
    let mut stats = RunStats::empty(config.num_workers);
    for &s in sources {
        let (values, run_stats) = vcgp_pregel::run(&Brandes { source: s }, graph, config);
        for (v, state) in values.into_iter().enumerate() {
            if v as VertexId != s {
                scores[v] += state.delta;
            }
        }
        stats.merge(run_stats);
    }
    BetweennessResult { scores, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    fn close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_brandes_on_shapes() {
        let cfg = PregelConfig::single_worker();
        for g in [
            generators::path(7),
            generators::star(7),
            generators::cycle(8),
            generators::grid(3, 4),
        ] {
            let vc = run(&g, None, &cfg);
            let sq = vcgp_sequential::betweenness::betweenness(&g, None);
            close(&vc.scores, &sq.scores);
        }
    }

    #[test]
    fn matches_brandes_on_random() {
        for seed in 0..4 {
            let g = generators::gnm_connected(40, 90, seed);
            let vc = run(&g, None, &PregelConfig::single_worker());
            let sq = vcgp_sequential::betweenness::betweenness(&g, None);
            close(&vc.scores, &sq.scores);
        }
    }

    #[test]
    fn sampled_sources_match() {
        let g = generators::gnm_connected(50, 120, 5);
        let sources = [0u32, 7, 13, 42];
        let vc = run(&g, Some(&sources), &PregelConfig::single_worker());
        let sq = vcgp_sequential::betweenness::betweenness(&g, Some(&sources));
        close(&vc.scores, &sq.scores);
    }

    #[test]
    fn supersteps_scale_with_sources_times_ecc() {
        let g = generators::path(20);
        let one = run(&g, Some(&[0]), &PregelConfig::single_worker());
        // Forward ~20 + backward ~20 supersteps for the far end source.
        assert!(one.stats.supersteps() >= 38);
        let two = run(&g, Some(&[0, 10]), &PregelConfig::single_worker());
        assert!(two.stats.supersteps() > one.stats.supersteps());
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::gnm_connected(35, 80, 8);
        let a = run(&g, None, &PregelConfig::single_worker());
        let b = run(&g, None, &PregelConfig::default().with_workers(4));
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
