//! Row 18: distributed graph simulation (Fard et al. \[5\], §3.7).
//!
//! Every data vertex keeps a `matchSet` of query vertices it may simulate
//! (initialized by label equality) plus the last-reported match sets of its
//! children. Vertices repeatedly drop query vertices whose child conditions
//! are unwitnessed and push the shrunken set to their parents, until no set
//! changes. Message volume per superstep is `O(m · n_q)` and the superstep
//! count can reach `O(m)` — the paper's `O(m²(n_q + m_q))` time-processor
//! product versus HHK's `O((m + n)(m_q + n_q))`.

use std::collections::HashMap;
use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{Context, PregelConfig, RunStats, StateSize, VertexProgram};

/// Per-vertex simulation state.
#[derive(Debug, Clone, Default)]
pub struct SimState {
    /// Sorted query vertices this vertex currently simulates.
    pub match_set: Vec<VertexId>,
    /// Last known match sets of out-neighbors ("children").
    children: HashMap<VertexId, Vec<VertexId>>,
}

impl StateSize for SimState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.match_set.len() * 4
            + self
                .children.values().map(|v| 8 + v.len() * 4)
                .sum::<usize>()
    }
}

/// The vertex program, parameterized by the (small) query pattern, which is
/// replicated to every worker — standard practice in distributed pattern
/// matching.
struct GraphSim<'q> {
    query: &'q Graph,
}

impl GraphSim<'_> {
    /// Re-evaluates the match set against the currently known child match
    /// sets; returns true if anything was dropped.
    fn refine(&self, ctx: &mut Context<'_, Self>) -> bool {
        let me_set = ctx.value().match_set.clone();
        let mut kept = Vec::with_capacity(me_set.len());
        for &q in &me_set {
            let ok = self.query.out_neighbors(q).iter().all(|&q_child| {
                // The witness scan walks up to all reported children.
                ctx.charge(ctx.value().children.len() as u64 + 1);
                ctx.value()
                    .children
                    .values()
                    .any(|set| set.binary_search(&q_child).is_ok())
            });
            if ok {
                kept.push(q);
            }
        }
        let changed = kept.len() != me_set.len();
        if changed {
            ctx.value_mut().match_set = kept;
        }
        changed
    }
}

impl VertexProgram for GraphSim<'_> {
    type Value = SimState;
    /// `(sender, sender's current match set)`.
    type Message = (VertexId, Vec<VertexId>);

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[(VertexId, Vec<VertexId>)]) {
        if ctx.superstep() == 0 {
            let label = ctx.graph().label(ctx.id());
            let initial: Vec<VertexId> = self
                .query
                .vertices()
                .filter(|&q| self.query.label(q) == label)
                .collect();
            ctx.charge(self.query.num_vertices() as u64);
            ctx.value_mut().match_set = initial.clone();
            if !initial.is_empty() {
                // Parents assume unreported children are empty.
                let me = ctx.id();
                ctx.send_to_all_in_neighbors((me, initial));
            }
        } else {
            for (child, set) in messages {
                ctx.charge(set.len() as u64);
                ctx.value_mut().children.insert(*child, set.clone());
            }
            if self.refine(ctx) {
                let me = ctx.id();
                let set = ctx.value().match_set.clone();
                ctx.send_to_all_in_neighbors((me, set));
            }
        }
        ctx.vote_to_halt();
    }

    fn master_compute(&self, master: &mut vcgp_pregel::MasterContext<'_>) {
        // Every vertex must run one refinement round even if none of its
        // children reported (unreported children are empty — exactly the
        // case that forces a drop).
        if master.superstep() == 0 {
            master.reactivate_all();
        }
    }
}

/// Result of vertex-centric graph simulation.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// `matches[u]` = sorted query vertices simulated by data vertex `u`
    /// (cleared to empty everywhere when the simulation does not exist).
    pub matches: Vec<Vec<VertexId>>,
    /// Whether every query vertex found at least one match.
    pub exists: bool,
    /// Engine instrumentation.
    pub stats: RunStats,
}

pub(crate) fn finalize(
    query: &Graph,
    mut matches: Vec<Vec<VertexId>>,
    stats: RunStats,
) -> SimulationResult {
    let mut covered = vec![false; query.num_vertices()];
    for set in &matches {
        for &q in set {
            covered[q as usize] = true;
        }
    }
    let exists = covered.iter().all(|&c| c);
    if !exists {
        matches.iter_mut().for_each(Vec::clear);
    }
    SimulationResult {
        matches,
        exists,
        stats,
    }
}

/// Runs graph simulation of `query` (labeled digraph) over `data`.
pub fn run(query: &Graph, data: &Graph, config: &PregelConfig) -> SimulationResult {
    assert!(query.is_directed() && data.is_directed(), "simulation runs on digraphs");
    let program = GraphSim { query };
    let (values, stats) = vcgp_pregel::run(&program, data, config);
    finalize(
        query,
        values.into_iter().map(|s| s.match_set).collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_hhk_baseline() {
        for seed in 0..6 {
            let q = generators::query_pattern(4, 2, 3, seed);
            let d = generators::labeled_digraph(50, 200, 3, seed + 100);
            let vc = run(&q, &d, &PregelConfig::single_worker());
            let sq = vcgp_sequential::simulation::graph_simulation(&q, &d);
            assert_eq!(vc.exists, sq.exists, "seed {seed}");
            assert_eq!(vc.matches, sq.matches, "seed {seed}");
        }
    }

    #[test]
    fn single_label_query_matches_everything_with_children() {
        // Query: A -> A on a directed cycle of As: everything matches.
        let mut qb = vcgp_graph::GraphBuilder::directed(2);
        qb.add_edge(0, 1);
        qb.set_labels(vec![0, 0]);
        let q = qb.build();
        let d = generators::relabel(&generators::directed_cycle(6), vec![0; 6]);
        let vc = run(&q, &d, &PregelConfig::single_worker());
        assert!(vc.exists);
        for set in &vc.matches {
            assert_eq!(set, &vec![0, 1]);
        }
    }

    #[test]
    fn nonexistent_simulation_clears_everything() {
        let mut qb = vcgp_graph::GraphBuilder::directed(2);
        qb.add_edge(0, 1);
        qb.set_labels(vec![0, 7]); // label 7 absent from data
        let q = qb.build();
        let d = generators::labeled_digraph(30, 90, 3, 5);
        let vc = run(&q, &d, &PregelConfig::single_worker());
        assert!(!vc.exists);
        assert!(vc.matches.iter().all(Vec::is_empty));
    }

    #[test]
    fn chain_query_prunes_shallow_tails() {
        // Query path A->B->C; data path A->B->C plus a dangling A->B.
        let mut qb = vcgp_graph::GraphBuilder::directed(3);
        qb.add_edge(0, 1);
        qb.add_edge(1, 2);
        qb.set_labels(vec![0, 1, 2]);
        let q = qb.build();
        let mut db = vcgp_graph::GraphBuilder::directed(5);
        db.add_edge(0, 1);
        db.add_edge(1, 2);
        db.add_edge(3, 4); // A->B with no C below
        db.set_labels(vec![0, 1, 2, 0, 1]);
        let d = db.build();
        let vc = run(&q, &d, &PregelConfig::single_worker());
        assert!(vc.exists);
        assert_eq!(vc.matches[0], vec![0]);
        assert_eq!(vc.matches[1], vec![1]);
        assert_eq!(vc.matches[2], vec![2]);
        assert!(vc.matches[3].is_empty(), "A without B->C child must drop");
        assert!(vc.matches[4].is_empty(), "B without C child must drop");
    }

    #[test]
    fn parallel_matches_serial() {
        let q = generators::query_pattern(5, 3, 3, 2);
        let d = generators::labeled_digraph(80, 320, 3, 9);
        let a = run(&q, &d, &PregelConfig::single_worker());
        let b = run(&q, &d, &PregelConfig::default().with_workers(4));
        assert_eq!(a.matches, b.matches);
    }
}
