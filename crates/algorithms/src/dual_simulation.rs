//! Row 19: distributed dual simulation (Fard et al. \[5\]).
//!
//! Extends graph simulation with the symmetric *parent* condition: a match
//! `(q, u)` additionally requires, for every query edge `q'' -> q`, an
//! incoming data edge `u'' -> u` with `(q'', u'')` matched. Vertices
//! therefore track the match sets of both children and parents and notify
//! both sides when they shrink. Same asymptotic profile as row 18.

use std::collections::HashMap;
use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{Context, MasterContext, PregelConfig, StateSize, VertexProgram};

pub use crate::graph_simulation::SimulationResult;

/// Per-vertex dual-simulation state.
#[derive(Debug, Clone, Default)]
pub struct DualState {
    /// Sorted query vertices this vertex currently simulates.
    pub match_set: Vec<VertexId>,
    /// Last known match sets of out-neighbors.
    children: HashMap<VertexId, Vec<VertexId>>,
    /// Last known match sets of in-neighbors.
    parents: HashMap<VertexId, Vec<VertexId>>,
}

impl StateSize for DualState {
    fn state_bytes(&self) -> usize {
        let maps = self
            .children
            .iter()
            .chain(self.parents.iter())
            .map(|(_, v)| 8 + v.len() * 4)
            .sum::<usize>();
        std::mem::size_of::<Self>() + self.match_set.len() * 4 + maps
    }
}

/// Messages carry the sender, its new match set, and whether the sender is
/// the receiver's child (i.e. travelled along an in-edge of the receiver).
#[derive(Debug, Clone)]
pub struct Update {
    sender: VertexId,
    set: Vec<VertexId>,
    from_child: bool,
}

struct DualSim<'q> {
    query: &'q Graph,
}

impl DualSim<'_> {
    fn broadcast(ctx: &mut Context<'_, Self>, set: Vec<VertexId>) {
        let me = ctx.id();
        // To parents (receivers see us as their child)...
        let parents = ctx.in_neighbors();
        for &p in parents {
            ctx.send(
                p,
                Update {
                    sender: me,
                    set: set.clone(),
                    from_child: true,
                },
            );
        }
        // ...and to children (receivers see us as their parent).
        let children = ctx.out_neighbors();
        for &c in children {
            ctx.send(
                c,
                Update {
                    sender: me,
                    set: set.clone(),
                    from_child: false,
                },
            );
        }
    }

    fn refine(&self, ctx: &mut Context<'_, Self>) -> bool {
        let me_set = ctx.value().match_set.clone();
        let mut kept = Vec::with_capacity(me_set.len());
        for &q in &me_set {
            let children_ok = self.query.out_neighbors(q).iter().all(|&q_child| {
                // The witness scan walks up to all reported children.
                ctx.charge(ctx.value().children.len() as u64 + 1);
                ctx.value()
                    .children
                    .values()
                    .any(|set| set.binary_search(&q_child).is_ok())
            });
            let parents_ok = children_ok
                && self.query.in_neighbors(q).iter().all(|&q_parent| {
                    ctx.charge(ctx.value().parents.len() as u64 + 1);
                    ctx.value()
                        .parents
                        .values()
                        .any(|set| set.binary_search(&q_parent).is_ok())
                });
            if children_ok && parents_ok {
                kept.push(q);
            }
        }
        let changed = kept.len() != me_set.len();
        if changed {
            ctx.value_mut().match_set = kept;
        }
        changed
    }
}

impl VertexProgram for DualSim<'_> {
    type Value = DualState;
    type Message = Update;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Update]) {
        if ctx.superstep() == 0 {
            let label = ctx.graph().label(ctx.id());
            let initial: Vec<VertexId> = self
                .query
                .vertices()
                .filter(|&q| self.query.label(q) == label)
                .collect();
            ctx.charge(self.query.num_vertices() as u64);
            ctx.value_mut().match_set = initial.clone();
            if !initial.is_empty() {
                Self::broadcast(ctx, initial);
            }
        } else {
            for update in messages {
                ctx.charge(update.set.len() as u64);
                let map = if update.from_child {
                    &mut ctx.value_mut().children
                } else {
                    &mut ctx.value_mut().parents
                };
                map.insert(update.sender, update.set.clone());
            }
            if self.refine(ctx) {
                let set = ctx.value().match_set.clone();
                Self::broadcast(ctx, set);
            }
        }
        ctx.vote_to_halt();
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        if master.superstep() == 0 {
            master.reactivate_all();
        }
    }
}

/// Runs dual simulation of `query` over `data`.
pub fn run(query: &Graph, data: &Graph, config: &PregelConfig) -> SimulationResult {
    assert!(query.is_directed() && data.is_directed(), "simulation runs on digraphs");
    let program = DualSim { query };
    let (values, stats) = vcgp_pregel::run(&program, data, config);
    crate::graph_simulation::finalize(
        query,
        values.into_iter().map(|s| s.match_set).collect(),
        stats,
    )
}

/// Raw fixpoint match sets without the existence convention — the strong
/// simulation pipeline needs candidate rows even when some query vertex is
/// globally unmatched.
pub fn run_raw(query: &Graph, data: &Graph, config: &PregelConfig) -> SimulationResult {
    assert!(query.is_directed() && data.is_directed(), "simulation runs on digraphs");
    let program = DualSim { query };
    let (values, stats) = vcgp_pregel::run(&program, data, config);
    let matches: Vec<Vec<VertexId>> = values.into_iter().map(|s| s.match_set).collect();
    SimulationResult {
        matches,
        exists: true,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_ma_baseline() {
        for seed in 0..6 {
            let q = generators::query_pattern(4, 2, 3, seed);
            let d = generators::labeled_digraph(50, 200, 3, seed + 100);
            let vc = run(&q, &d, &PregelConfig::single_worker());
            let sq = vcgp_sequential::simulation::dual_simulation(&q, &d);
            assert_eq!(vc.exists, sq.exists, "seed {seed}");
            assert_eq!(vc.matches, sq.matches, "seed {seed}");
        }
    }

    #[test]
    fn parent_condition_prunes_orphans() {
        // Query A -> B. Data: A -> B, plus an orphan B.
        let mut qb = vcgp_graph::GraphBuilder::directed(2);
        qb.add_edge(0, 1);
        qb.set_labels(vec![0, 1]);
        let q = qb.build();
        let mut db = vcgp_graph::GraphBuilder::directed(3);
        db.add_edge(0, 1);
        db.set_labels(vec![0, 1, 1]);
        let d = db.build();
        let vc = run(&q, &d, &PregelConfig::single_worker());
        assert!(vc.exists);
        assert_eq!(vc.matches[1], vec![1]);
        assert!(vc.matches[2].is_empty(), "orphan B must be pruned by dual");
        // Plain graph simulation keeps the orphan.
        let gs = crate::graph_simulation::run(&q, &d, &PregelConfig::single_worker());
        assert_eq!(gs.matches[2], vec![1]);
    }

    #[test]
    fn dual_subset_of_graph_simulation() {
        for seed in 0..4 {
            let q = generators::query_pattern(4, 2, 3, seed);
            let d = generators::labeled_digraph(40, 150, 3, seed + 30);
            let ds = run(&q, &d, &PregelConfig::single_worker());
            let gs = crate::graph_simulation::run(&q, &d, &PregelConfig::single_worker());
            if !gs.exists {
                assert!(!ds.exists);
                continue;
            }
            if ds.exists {
                for u in 0..40usize {
                    for qv in &ds.matches[u] {
                        assert!(gs.matches[u].contains(qv), "seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let q = generators::query_pattern(5, 3, 3, 7);
        let d = generators::labeled_digraph(70, 280, 3, 11);
        let a = run(&q, &d, &PregelConfig::single_worker());
        let b = run(&q, &d, &PregelConfig::default().with_workers(4));
        assert_eq!(a.matches, b.matches);
    }
}
