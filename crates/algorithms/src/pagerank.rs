//! Row 2: PageRank, as in the original Pregel paper (§3.2).
//!
//! Superstep 0 initializes every score to `1/n` and sends `score/outdeg`
//! along out-edges; each later superstep sums the incoming values into
//! `sum` and sets `score = (1 - α)/n + α · sum`. After `K` update rounds
//! the master halts. A balanced Pregel algorithm but not BPPA: `K` (≈ 30 in
//! the Pregel paper) is independent of — and typically above — `log n`.

use vcgp_graph::Graph;
use vcgp_pregel::{Context, MasterContext, PregelConfig, RunStats, VertexProgram};

/// Result of vertex-centric PageRank.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Final score per vertex.
    pub scores: Vec<f64>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

struct PageRank {
    alpha: f64,
    iterations: u32,
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Message = f64;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[f64]) {
        let n = ctx.num_vertices() as f64;
        if ctx.superstep() == 0 {
            *ctx.value_mut() = 1.0 / n;
        } else {
            let sum: f64 = messages.iter().sum();
            *ctx.value_mut() = (1.0 - self.alpha) / n + self.alpha * sum;
        }
        if ctx.superstep() < self.iterations as u64 {
            let deg = ctx.out_neighbors().len();
            if deg > 0 {
                let share = *ctx.value() / deg as f64;
                ctx.send_to_all_out_neighbors(share);
            }
        }
        ctx.vote_to_halt();
    }

    fn combiner(&self) -> Option<fn(&mut f64, f64)> {
        Some(|acc, m| *acc += m)
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        // Keep all vertices running through the final update round.
        if master.superstep() < self.iterations as u64 {
            master.reactivate_all();
        }
    }
}

/// Runs `iterations` rounds of PageRank with teleport probability
/// `1 - alpha` (i.e. damping factor `alpha`).
pub fn run(graph: &Graph, alpha: f64, iterations: u32, config: &PregelConfig) -> PageRankResult {
    assert!((0.0..=1.0).contains(&alpha));
    let (scores, stats) = vcgp_pregel::run(&PageRank { alpha, iterations }, graph, config);
    PageRankResult { scores, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_power_iteration_exactly() {
        for seed in 0..4 {
            let g = generators::digraph_gnm(60, 240, seed);
            let vc = run(&g, 0.85, 25, &PregelConfig::single_worker());
            let sq = vcgp_sequential::pagerank::pagerank(&g, 0.85, 25, 0.0);
            close(&vc.scores, &sq.scores, 1e-9);
        }
    }

    #[test]
    fn superstep_count_is_k_plus_one() {
        let g = generators::digraph_gnm(30, 120, 1);
        let r = run(&g, 0.85, 30, &PregelConfig::single_worker());
        assert_eq!(r.stats.supersteps(), 31);
    }

    #[test]
    fn per_superstep_messages_are_m() {
        let g = generators::directed_cycle(40);
        let r = run(&g, 0.85, 10, &PregelConfig::single_worker());
        for s in &r.stats.superstep_stats[..10] {
            assert_eq!(s.messages_sent, 40);
        }
        assert_eq!(r.stats.superstep_stats[10].messages_sent, 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::digraph_gnm(100, 400, 9);
        let a = run(&g, 0.85, 20, &PregelConfig::single_worker());
        let b = run(&g, 0.85, 20, &PregelConfig::default().with_workers(4));
        // Floating sums may associate differently across workers.
        close(&a.scores, &b.scores, 1e-12);
    }

    #[test]
    fn sink_mass_not_redistributed() {
        // 0 -> 1, 1 is a sink: its score stabilizes at base + α·(share of 0).
        let mut b = vcgp_graph::GraphBuilder::directed(2);
        b.add_edge(0, 1);
        let g = b.build();
        let r = run(&g, 0.5, 40, &PregelConfig::single_worker());
        let base = 0.25; // (1 - α)/n
        assert!((r.scores[0] - base).abs() < 1e-9);
        assert!((r.scores[1] - (base + 0.5 * base)).abs() < 1e-9);
    }
}
