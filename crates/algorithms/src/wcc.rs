//! Row 6: weakly connected components of a digraph.
//!
//! Hash-Min with messages flowing along *both* edge directions — the
//! vertex-centric equivalent of running connected components on the
//! underlying undirected graph, as in Yan et al. \[25\]. Inherits Hash-Min's
//! profile: balanced, `O(δ)` supersteps, `O(mδ)` time-processor product.

use vcgp_graph::Graph;
use vcgp_pregel::{Context, PregelConfig, RunStats, VertexId, VertexProgram};

/// Result of weakly connected components.
#[derive(Debug, Clone)]
pub struct WccResult {
    /// Smallest vertex id in each vertex's weak component.
    pub components: Vec<VertexId>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

struct Wcc;

impl Wcc {
    fn broadcast(ctx: &mut Context<'_, Self>, value: u32) {
        ctx.send_to_all_out_neighbors(value);
        ctx.send_to_all_in_neighbors(value);
    }
}

impl VertexProgram for Wcc {
    type Value = u32;
    type Message = u32;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[u32]) {
        if ctx.superstep() == 0 {
            let mut min = ctx.id();
            for &u in ctx.out_neighbors().iter().chain(ctx.in_neighbors()) {
                min = min.min(u);
            }
            ctx.charge((ctx.out_neighbors().len() + ctx.in_neighbors().len()) as u64);
            *ctx.value_mut() = min;
            Self::broadcast(ctx, min);
        } else if let Some(m) = messages.iter().copied().min() {
            if m < *ctx.value() {
                *ctx.value_mut() = m;
                Self::broadcast(ctx, m);
            }
        }
        ctx.vote_to_halt();
    }

    fn combiner(&self) -> Option<fn(&mut u32, u32)> {
        Some(|acc, m| *acc = (*acc).min(m))
    }
}

/// Runs weakly connected components on a digraph.
pub fn run(graph: &Graph, config: &PregelConfig) -> WccResult {
    assert!(graph.is_directed(), "wcc expects a digraph");
    let (components, stats) = vcgp_pregel::run(&Wcc, graph, config);
    WccResult { components, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_sequential_wcc() {
        for seed in 0..5 {
            let g = generators::digraph_gnm(70, 100, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = vcgp_sequential::connectivity::wcc(&g);
            assert_eq!(vc.components, sq.components, "seed {seed}");
        }
    }

    #[test]
    fn direction_is_ignored() {
        // 2 -> 1 -> 0: still one weak component colored 0.
        let mut b = vcgp_graph::GraphBuilder::directed(3);
        b.add_edge(2, 1);
        b.add_edge(1, 0);
        let r = run(&b.build(), &PregelConfig::single_worker());
        assert_eq!(r.components, vec![0, 0, 0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::digraph_gnm(150, 260, 3);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(5));
        assert_eq!(a.components, b.components);
    }

    #[test]
    fn directed_path_takes_linear_supersteps() {
        let g = generators::directed_path(40);
        let r = run(&g, &PregelConfig::single_worker());
        assert!(r.components.iter().all(|&c| c == 0));
        assert!(r.stats.supersteps() >= 39);
    }
}
