//! Row 16: single-source shortest paths, as in the Pregel paper (§3.1
//! of \[12\]).
//!
//! Bellman-Ford-style relaxation: the source starts at distance 0 and every
//! improvement is flooded along out-edges with the edge weight added. A
//! min combiner collapses concurrent offers. The time-processor product is
//! `O(mn)` in the worst case — more work than Dijkstra's
//! `O(m + n log n)` (row 16 is a "more work: yes").

use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{Context, PregelConfig, RunStats, StateSize, VertexProgram};

/// Result of vertex-centric SSSP.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// Distance from the source per vertex (`f64::INFINITY` unreachable).
    pub dist: Vec<f64>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Per-vertex state: current tentative distance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Dist(f64);

impl Default for Dist {
    fn default() -> Self {
        Dist(f64::INFINITY)
    }
}

impl StateSize for Dist {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

struct Sssp {
    source: VertexId,
}

impl VertexProgram for Sssp {
    type Value = Dist;
    type Message = f64;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[f64]) {
        let current = ctx.value().0;
        let offered = messages.iter().copied().fold(
            if ctx.superstep() == 0 && ctx.id() == self.source {
                0.0
            } else {
                f64::INFINITY
            },
            f64::min,
        );
        if offered < current {
            ctx.value_mut().0 = offered;
            let (graph, id) = (ctx.graph(), ctx.id());
            for (v, w) in graph.out_edges(id) {
                assert!(w >= 0.0, "sssp requires non-negative weights");
                ctx.send(v, offered + w);
            }
        }
        ctx.vote_to_halt();
    }

    fn combiner(&self) -> Option<fn(&mut f64, f64)> {
        Some(|acc, m| *acc = acc.min(m))
    }
}

/// Runs Pregel SSSP from `source`.
pub fn run(graph: &Graph, source: VertexId, config: &PregelConfig) -> SsspResult {
    let (values, stats) = vcgp_pregel::run(&Sssp { source }, graph, config);
    SsspResult {
        dist: values.into_iter().map(|d| d.0).collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    fn weighted(n: usize, m: usize, seed: u64) -> Graph {
        generators::with_random_weights(
            &generators::gnm_connected(n, m, seed),
            0.1,
            5.0,
            seed,
            false,
        )
    }

    #[test]
    fn matches_dijkstra() {
        for seed in 0..5 {
            let g = weighted(80, 200, seed);
            let vc = run(&g, 0, &PregelConfig::single_worker());
            let sq = vcgp_sequential::sssp::sssp(&g, 0);
            for v in 0..80 {
                assert!(
                    (vc.dist[v] - sq.dist[v]).abs() < 1e-9,
                    "seed {seed}, vertex {v}: {} vs {}",
                    vc.dist[v],
                    sq.dist[v]
                );
            }
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut b = vcgp_graph::GraphBuilder::new(3);
        b.add_edge(0, 1);
        let r = run(&b.build(), 0, &PregelConfig::single_worker());
        assert!(r.dist[2].is_infinite());
        assert_eq!(r.dist[1], 1.0);
    }

    #[test]
    fn directed_respects_orientation() {
        let g = generators::directed_path(5);
        let r = run(&g, 2, &PregelConfig::single_worker());
        assert!(r.dist[0].is_infinite());
        assert_eq!(r.dist[4], 2.0);
    }

    #[test]
    fn adversarial_weights_cause_rerelaxation() {
        // Decreasing weights along a path plus shortcut edges force many
        // distance improvements — the O(mn) behaviour the paper analyzes.
        let n = 40;
        let mut b = vcgp_graph::GraphBuilder::directed(n);
        for v in 0..n as u32 - 1 {
            b.add_weighted_edge(v, v + 1, 1.0);
        }
        // Shortcuts that arrive "late": edge 0 -> k with weight k - 0.5.
        for k in 2..n as u32 {
            b.add_weighted_edge(0, k, k as f64 - 0.5);
        }
        let g = b.build();
        let r = run(&g, 0, &PregelConfig::single_worker());
        let sq = vcgp_sequential::sssp::sssp(&g, 0);
        for v in 0..n {
            assert!((r.dist[v] - sq.dist[v]).abs() < 1e-9);
        }
        assert!(r.stats.supersteps() >= 3);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = weighted(120, 360, 11);
        let a = run(&g, 5, &PregelConfig::single_worker());
        let b = run(&g, 5, &PregelConfig::default().with_workers(4));
        assert_eq!(a.dist, b.dist);
    }
}
