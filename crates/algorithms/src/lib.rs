//! The twenty vertex-centric algorithms of Khan (EDBT 2017), Table 1,
//! implemented against the instrumented Pregel engine in `vcgp-pregel`.
//!
//! Each module exposes a `run` entry point returning the algorithm's result
//! together with the [`vcgp_pregel::RunStats`] instrumentation; multi-stage
//! pipelines (rows 5, 9, 11, 15, 20) merge the stats of their stages so the
//! analysis layer sees the complete superstep trace.
//!
//! | Row | Module | Algorithm |
//! |-----|--------|-----------|
//! | 1   | [`diameter`] | eccentricity propagation with history sets \[15\] |
//! | 2   | [`pagerank`] | Pregel PageRank \[12\] |
//! | 3   | [`cc_hashmin`] | Hash-Min connected components \[12, 25\] |
//! | 4   | [`cc_sv`] | Shiloach-Vishkin connected components \[25\] |
//! | 5   | [`bcc`] | Tarjan-Vishkin biconnected components \[25\] |
//! | 6   | [`wcc`] | weakly connected components (Hash-Min over both edge directions) \[25\] |
//! | 7   | [`scc`] | forward/backward coloring SCC \[20, 25\] |
//! | 8   | [`euler_tour`] | two-superstep Euler tour of a tree \[25\] |
//! | 9   | [`tree_order`] | pre/post-order via Euler tour + list ranking \[25\] |
//! | 10  | [`spanning_tree`] | S-V hooking with tree-edge recording \[22, 25\] |
//! | 11  | [`mst_boruvka`] | Borůvka MST with conjoined trees \[4, 20\] |
//! | 12  | [`coloring_mis`] | Luby-MIS graph coloring \[10, 20\] |
//! | 13  | [`matching_preis`] | locally-dominant maximum weight matching \[16, 20\] |
//! | 14  | [`bipartite_matching`] | four-phase bipartite maximal matching \[12\] |
//! | 15  | [`betweenness`] | per-source BSP Brandes \[18\] |
//! | 16  | [`sssp`] | Pregel single-source shortest paths \[12\] |
//! | 17  | [`diameter`] (with distances) | all-pair shortest paths \[15\] |
//! | 18  | [`graph_simulation`] | distributed graph simulation \[5\] |
//! | 19  | [`dual_simulation`] | distributed dual simulation \[5\] |
//! | 20  | [`strong_simulation`] | distributed strong simulation \[5\] |

pub mod bcc;
pub mod betweenness;
pub mod bipartite_matching;
pub mod cc_hashmin;
pub mod cc_sv;
pub mod coloring_mis;
pub mod diameter;
pub mod dual_simulation;
pub mod euler_tour;
pub mod graph_simulation;
pub mod list_ranking;
pub mod matching_preis;
pub mod mst_boruvka;
pub mod pagerank;
pub mod scc;
pub mod spanning_tree;
pub mod sssp;
pub mod st_reachability;
pub mod strong_simulation;
pub mod tree_order;
pub mod triangle_counting;
pub mod wcc;
