//! Row 10: spanning tree via S-V hooking (Tarjan & Vishkin \[22\], Yan et
//! al. \[25\]).
//!
//! Each successful hook in the Shiloach-Vishkin rounds is justified by one
//! graph edge; the set of those edges is a spanning forest. The module is a
//! thin wrapper over [`crate::cc_sv`] that re-exports the recorded edges as
//! the primary result — the cost profile is S-V's: `O((m + n) log n)`
//! time-processor product, not BPPA, versus BFS's `O(m + n)`.

use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{PregelConfig, RunStats};

/// Result of the vertex-centric spanning tree.
#[derive(Debug, Clone)]
pub struct SpanningTreeResult {
    /// Forest edges in canonical sorted form.
    pub tree_edges: Vec<(VertexId, VertexId)>,
    /// Component color per vertex (smallest member id).
    pub components: Vec<VertexId>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs the S-V spanning tree on an undirected graph.
pub fn run(graph: &Graph, config: &PregelConfig) -> SpanningTreeResult {
    let sv = crate::cc_sv::run(graph, config);
    SpanningTreeResult {
        tree_edges: sv.tree_edges,
        components: sv.components,
        stats: sv.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn spans_connected_graph() {
        for seed in 0..5 {
            let g = generators::gnm_connected(80, 200, seed);
            let r = run(&g, &PregelConfig::single_worker());
            assert_eq!(r.tree_edges.len(), 79, "seed {seed}");
            let mut b = GraphBuilder::new(80);
            for &(u, v) in &r.tree_edges {
                b.add_edge(u, v);
            }
            assert!(vcgp_graph::traversal::is_tree(&b.build()), "seed {seed}");
        }
    }

    #[test]
    fn same_edge_count_as_bfs_baseline() {
        let g = generators::gnm(100, 160, 7);
        let vc = run(&g, &PregelConfig::single_worker());
        let sq = vcgp_sequential::connectivity::spanning_tree(&g);
        assert_eq!(vc.tree_edges.len(), sq.tree_edges);
    }

    #[test]
    fn tree_input_returns_itself() {
        let t = generators::random_tree(50, 3);
        let r = run(&t, &PregelConfig::single_worker());
        let mut expected: Vec<(u32, u32)> = t.edges().map(|(u, v, _)| (u, v)).collect();
        expected.sort_unstable();
        assert_eq!(r.tree_edges, expected);
    }
}
