//! Row 14: bipartite maximal matching, the four-phase randomized algorithm
//! of the Pregel paper \[12\].
//!
//! Cycles of four supersteps: (0) unmatched left vertices request all
//! right neighbors; (1) an unmatched right vertex grants one request at
//! random; (2) a left vertex accepts one grant at random; (3) the accepted
//! right vertex records the match. When a full cycle produces no grant, no
//! free-free edge remains and the matching is maximal. Expected
//! `O(log n)` cycles; each vertex's traffic is bounded by its degree, so
//! the algorithm is BPPA — but its `O(m log n)` work exceeds the greedy
//! sequential `O(m + n)` (row 14: "more work: yes, BPPA: yes").

use vcgp_graph::{Graph, VertexId, INVALID_VERTEX};
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Cycle phases (global slot 0).
mod phase {
    pub const REQUEST: i64 = 0;
    pub const GRANT: i64 = 1;
    pub const ACCEPT: i64 = 2;
    pub const FINALIZE: i64 = 3;
}

/// Per-vertex state: just the matched partner.
#[derive(Debug, Clone)]
pub struct MateState {
    /// Matched partner (`INVALID_VERTEX` while free).
    pub mate: VertexId,
}

impl Default for MateState {
    fn default() -> Self {
        MateState {
            mate: INVALID_VERTEX,
        }
    }
}

impl StateSize for MateState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[derive(Debug, Clone, Copy)]
enum Msg {
    Request(VertexId),
    Grant(VertexId),
    Accept(VertexId),
}

struct BipartiteMatching {
    /// Vertices `0..nl` form the left side.
    nl: usize,
}

impl BipartiteMatching {
    fn is_left(&self, v: VertexId) -> bool {
        (v as usize) < self.nl
    }
}

impl VertexProgram for BipartiteMatching {
    type Value = MateState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        let me = ctx.id();
        let matched = ctx.value().mate != INVALID_VERTEX;
        match ctx.global(0).as_i64() {
            phase::REQUEST => {
                if self.is_left(me) && !matched {
                    ctx.send_to_all_out_neighbors(Msg::Request(me));
                }
            }
            phase::GRANT => {
                if !self.is_left(me) && !matched {
                    let mut requesters: Vec<VertexId> = messages
                        .iter()
                        .filter_map(|m| match m {
                            Msg::Request(u) => Some(*u),
                            _ => None,
                        })
                        .collect();
                    // Sorting makes the random pick independent of message
                    // arrival order (and therefore of the worker count).
                    requesters.sort_unstable();
                    if !requesters.is_empty() {
                        let pick = requesters
                            [ctx.rng().next_index(requesters.len())];
                        ctx.send(pick, Msg::Grant(me));
                        ctx.aggregate(0, AggValue::Bool(true));
                    }
                }
            }
            phase::ACCEPT => {
                if self.is_left(me) && !matched {
                    let mut grants: Vec<VertexId> = messages
                        .iter()
                        .filter_map(|m| match m {
                            Msg::Grant(u) => Some(*u),
                            _ => None,
                        })
                        .collect();
                    grants.sort_unstable();
                    if !grants.is_empty() {
                        let pick = grants[ctx.rng().next_index(grants.len())];
                        ctx.value_mut().mate = pick;
                        ctx.send(pick, Msg::Accept(me));
                    }
                }
            }
            phase::FINALIZE => {
                for m in messages {
                    if let Msg::Accept(u) = m {
                        debug_assert!(!self.is_left(me) && !matched);
                        ctx.value_mut().mate = *u;
                    }
                }
            }
            other => unreachable!("invalid bipartite phase {other}"),
        }
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![AggregatorDef::new("granted", AggOp::Or)]
    }

    fn globals(&self) -> Vec<AggValue> {
        vec![AggValue::I64(phase::REQUEST)]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        let current = master.global(0).as_i64();
        if current == phase::GRANT && !master.read_aggregate(0).as_bool() {
            // No grant means no free-free edge: the matching is maximal.
            master.halt();
            return;
        }
        master.set_global(0, AggValue::I64((current + 1) % 4));
        master.reactivate_all();
    }
}

/// Result of bipartite matching.
#[derive(Debug, Clone)]
pub struct BipartiteResult {
    /// Partner per vertex.
    pub mate: Vec<VertexId>,
    /// Matched edge count.
    pub size: usize,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs the four-phase matching; vertices `0..nl` are the left side.
pub fn run(graph: &Graph, nl: usize, config: &PregelConfig) -> BipartiteResult {
    assert!(!graph.is_directed(), "bipartite matching runs on undirected graphs");
    assert!(nl <= graph.num_vertices());
    debug_assert!(
        graph
            .edges()
            .all(|(u, v, _)| ((u as usize) < nl) != ((v as usize) < nl)),
        "edges must cross the bipartition"
    );
    let (values, stats) = vcgp_pregel::run(&BipartiteMatching { nl }, graph, config);
    let mate: Vec<VertexId> = values.into_iter().map(|s| s.mate).collect();
    let size = mate
        .iter()
        .take(nl)
        .filter(|&&m| m != INVALID_VERTEX)
        .count();
    BipartiteResult { mate, size, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;
    use vcgp_sequential::matching::is_maximal_matching;

    #[test]
    fn maximal_on_random_bipartite() {
        for seed in 0..6 {
            let g = generators::bipartite(25, 25, 120, seed);
            let r = run(&g, 25, &PregelConfig::single_worker().with_seed(seed));
            assert!(is_maximal_matching(&g, &r.mate), "seed {seed}");
        }
    }

    #[test]
    fn perfect_on_complete_bipartite() {
        let g = generators::bipartite(6, 6, 36, 1);
        let r = run(&g, 6, &PregelConfig::single_worker());
        assert_eq!(r.size, 6);
    }

    #[test]
    fn size_comparable_to_greedy() {
        // Both are maximal matchings: sizes within a factor of two.
        let g = generators::bipartite(40, 40, 200, 3);
        let vc = run(&g, 40, &PregelConfig::single_worker());
        let sq = vcgp_sequential::matching::bipartite_greedy(&g, 40);
        assert!(vc.size * 2 >= sq.size);
        assert!(sq.size * 2 >= vc.size);
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = generators::bipartite(5, 5, 0, 1);
        let r = run(&g, 5, &PregelConfig::single_worker());
        assert_eq!(r.size, 0);
        assert!(r.stats.supersteps() <= 2);
    }

    #[test]
    fn per_vertex_traffic_bounded_by_degree() {
        let g = generators::bipartite(30, 30, 150, 7);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let r = run(&g, 30, &cfg);
        let pv = r.stats.per_vertex.as_ref().unwrap();
        for v in g.vertices() {
            let d = g.bppa_degree(v) as u64;
            assert!(pv.max_sent[v as usize] <= d.max(1));
            assert!(pv.max_received[v as usize] <= d);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::bipartite(35, 35, 160, 9);
        let a = run(&g, 35, &PregelConfig::single_worker().with_seed(3));
        let b = run(&g, 35, &PregelConfig::default().with_workers(4).with_seed(3));
        assert_eq!(a.mate, b.mate);
    }
}
