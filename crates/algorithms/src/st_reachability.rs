//! §3.8 demonstrator: ad-hoc s-t reachability in the vertex-centric model.
//!
//! The paper's first "difficult" category is online ad-hoc queries —
//! "vertex-centric model usually operates on the entire graph, which is
//! often not necessary" \[9\]. This BFS-wave implementation even stops as
//! early as the model allows (the master halts the superstep after `t` is
//! reached), yet it still expands the *full* frontier of every level,
//! touching a large slice of the graph where the sequential bidirectional
//! BFS touches a neighborhood.

use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Per-vertex state: BFS level from `s` (`u32::MAX` = unreached).
#[derive(Debug, Clone, Copy)]
pub struct Level(pub u32);

impl Default for Level {
    fn default() -> Self {
        Level(u32::MAX)
    }
}

impl StateSize for Level {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

struct StReach {
    s: VertexId,
    t: VertexId,
}

impl VertexProgram for StReach {
    type Value = Level;
    type Message = ();

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[()]) {
        let unreached = ctx.value().0 == u32::MAX;
        if ctx.superstep() == 0 {
            if ctx.id() == self.s {
                ctx.value_mut().0 = 0;
                ctx.aggregate(1, AggValue::I64(1));
                if self.s == self.t {
                    ctx.aggregate(0, AggValue::Bool(true));
                } else {
                    ctx.send_to_all_out_neighbors(());
                }
            }
        } else if unreached && !messages.is_empty() {
            ctx.value_mut().0 = ctx.superstep() as u32;
            ctx.aggregate(1, AggValue::I64(1));
            if ctx.id() == self.t {
                ctx.aggregate(0, AggValue::Bool(true));
            } else {
                ctx.send_to_all_out_neighbors(());
            }
        }
        ctx.vote_to_halt();
    }

    fn combiner(&self) -> Option<fn(&mut (), ())> {
        Some(|_, _| {})
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![
            AggregatorDef::new("reached", AggOp::Or),
            AggregatorDef::new("newly_visited", AggOp::SumI64),
        ]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        if master.read_aggregate(0).as_bool() {
            // Early termination — the best the synchronous model offers;
            // the full frontier of every earlier level has already run.
            master.halt();
        }
    }
}

/// Result of the vertex-centric reachability query.
#[derive(Debug, Clone)]
pub struct ReachabilityResult {
    /// Whether `t` was reached.
    pub reachable: bool,
    /// Hop distance when reachable.
    pub distance: Option<u32>,
    /// Vertices that executed with a set level (the query's footprint).
    pub visited: usize,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs the BFS-wave reachability query from `s` to `t`.
pub fn run(graph: &Graph, s: VertexId, t: VertexId, config: &PregelConfig) -> ReachabilityResult {
    let (values, stats) = vcgp_pregel::run(&StReach { s, t }, graph, config);
    let visited = values.iter().filter(|l| l.0 != u32::MAX).count();
    let distance = values[t as usize].0;
    ReachabilityResult {
        reachable: distance != u32::MAX,
        distance: (distance != u32::MAX).then_some(distance),
        visited,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn distances_match_bidirectional_bfs() {
        for seed in 0..4 {
            let g = generators::gnm_connected(70, 150, seed);
            for t in [0u32, 13, 69] {
                let vc = run(&g, 7, t, &PregelConfig::single_worker());
                let sq = vcgp_sequential::reachability::st_reachability(&g, 7, t);
                assert_eq!(vc.reachable, sq.reachable);
                assert_eq!(vc.distance, sq.distance, "seed {seed} t {t}");
            }
        }
    }

    #[test]
    fn unreachable_target() {
        let mut b = vcgp_graph::GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(3, 4);
        let r = run(&b.build(), 0, 4, &PregelConfig::single_worker());
        assert!(!r.reachable);
    }

    #[test]
    fn footprint_dwarfs_sequential_on_local_queries() {
        // Adjacent endpoints in the middle of a long path: the paper's
        // ad-hoc-query complaint in one assert.
        let g = generators::path(4_000);
        let vc = run(&g, 2_000, 2_001, &PregelConfig::single_worker());
        let sq = vcgp_sequential::reachability::st_reachability(&g, 2_000, 2_001);
        assert_eq!(vc.distance, Some(1));
        assert!(sq.visited < 10);
        // The wave expands symmetrically level by level; by the time the
        // master halts it has touched only the 1-hop frontier here, but on
        // a far query it floods everything:
        let far_vc = run(&g, 0, 3_999, &PregelConfig::single_worker());
        let far_sq = vcgp_sequential::reachability::st_reachability(&g, 0, 3_999);
        assert_eq!(far_vc.visited, 4_000, "the wave touched the whole graph");
        assert!(far_sq.visited <= 4_000);
    }

    #[test]
    fn early_halt_limits_supersteps() {
        let g = generators::gnm_connected(200, 600, 2);
        let r = run(&g, 0, 5, &PregelConfig::single_worker());
        assert!(r.reachable);
        let d = r.distance.unwrap() as u64;
        assert!(r.stats.supersteps() <= d + 2);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::gnm_connected(150, 400, 8);
        let a = run(&g, 3, 140, &PregelConfig::single_worker());
        let b = run(&g, 3, 140, &PregelConfig::default().with_workers(4));
        assert_eq!(a.distance, b.distance);
        assert_eq!(a.visited, b.visited);
    }
}
