//! List ranking by synchronous pointer jumping (§3.4.2, Figure 4(b)).
//!
//! Each list element `v` holds `val(v)` and a predecessor pointer; the
//! algorithm computes `sum(v)` = the sum of values from `v` back to the
//! head. Each round executes the recurrence
//! `sum(v) += sum(pred(v)); pred(v) = pred(pred(v))` for every element
//! simultaneously, realized in two supersteps (request, reply).
//!
//! The predecessor function starts injective (it is a list) and composition
//! preserves injectivity, so every element sends and receives at most one
//! message per superstep — the algorithm is BPPA, terminating in
//! `O(log n)` rounds. The element at position `i` participates in
//! `O(log i)` rounds, giving the paper's `O(n log n)` time-processor
//! product (Stirling).
//!
//! This module is used standalone (tests, figures) and as a stage of the
//! row 9 pre/post-order pipeline and the row 5 BCC pipeline.

use vcgp_graph::{GraphBuilder, INVALID_VERTEX};
use vcgp_pregel::{Context, PregelConfig, RunStats, StateSize, VertexProgram};

/// Per-element state.
#[derive(Debug, Clone, Default)]
pub struct RankState {
    /// Running sum from this element back to the head.
    pub sum: u64,
    /// Current predecessor pointer (`INVALID_VERTEX` = reached the head).
    pub pred: u32,
}

impl StateSize for RankState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Messages: even supersteps carry requests, odd supersteps carry the
/// predecessor's `(sum, pred)` snapshot.
#[derive(Debug, Clone, Copy)]
pub enum Msg {
    /// "Send me your state" (payload: requester id).
    Req(u32),
    /// The predecessor's state at the start of this round.
    Reply {
        /// Predecessor's running sum.
        sum: u64,
        /// Predecessor's own pointer.
        pred: u32,
    },
}

struct ListRank;

impl VertexProgram for ListRank {
    type Value = RankState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        if ctx.superstep() % 2 == 0 {
            // Jump phase: fold in the reply from the previous round, then
            // request the (possibly new) predecessor's state.
            for m in messages {
                if let Msg::Reply { sum, pred } = *m {
                    let state = ctx.value_mut();
                    state.sum += sum;
                    state.pred = pred;
                }
            }
            let pred = ctx.value().pred;
            if pred == INVALID_VERTEX {
                ctx.vote_to_halt();
            } else {
                let me = ctx.id();
                ctx.send(pred, Msg::Req(me));
            }
        } else {
            // Reply phase: answer at most one requester (pred is injective).
            let snapshot = (ctx.value().sum, ctx.value().pred);
            for m in messages {
                if let Msg::Req(requester) = *m {
                    ctx.send(
                        requester,
                        Msg::Reply {
                            sum: snapshot.0,
                            pred: snapshot.1,
                        },
                    );
                }
            }
            if ctx.value().pred == INVALID_VERTEX {
                ctx.vote_to_halt();
            }
        }
    }
}

/// Result of list ranking.
#[derive(Debug, Clone)]
pub struct ListRankingResult {
    /// `sum[v]` for every element.
    pub sums: Vec<u64>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Ranks a list given per-element predecessor pointers (`INVALID_VERTEX`
/// for the head) and values. Elements may appear in any order — exactly the
/// setting of §3.4.2.
///
/// # Panics
/// Panics if `preds` and `vals` lengths differ, or if `preds` is not an
/// injective pointer structure ending at a head (i.e. not a linked list).
pub fn run(preds: &[u32], vals: &[u64], config: &PregelConfig) -> ListRankingResult {
    assert_eq!(preds.len(), vals.len(), "one value per element");
    let n = preds.len();
    // Validate list shape: injective predecessors.
    let mut indegree = vec![0u8; n];
    for &p in preds {
        if p != INVALID_VERTEX {
            assert!((p as usize) < n, "pred out of range");
            indegree[p as usize] = indegree[p as usize]
                .checked_add(1)
                .expect("pred must be injective");
            assert!(indegree[p as usize] <= 1, "pred must be injective");
        }
    }
    // The engine runs over an edgeless graph: the list structure lives in
    // the element state, as in the paper's formulation.
    let graph = GraphBuilder::new(n).build();
    let init: Vec<RankState> = preds
        .iter()
        .zip(vals)
        .map(|(&pred, &val)| RankState { sum: val, pred })
        .collect();
    let (values, stats) = vcgp_pregel::run_with_values(&ListRank, &graph, init, config);
    ListRankingResult {
        sums: values.into_iter().map(|s| s.sum).collect(),
        stats,
    }
}

/// Sequential prefix sums for validation and the benchmark baseline.
pub fn sequential_sums(preds: &[u32], vals: &[u64]) -> Vec<u64> {
    let n = preds.len();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut succ = vec![INVALID_VERTEX; n];
    let mut head = INVALID_VERTEX;
    for (v, &p) in preds.iter().enumerate() {
        if p == INVALID_VERTEX {
            assert_eq!(head, INVALID_VERTEX, "multiple heads");
            head = v as u32;
        } else {
            succ[p as usize] = v as u32;
        }
    }
    let mut cur = head;
    while cur != INVALID_VERTEX {
        order.push(cur);
        cur = succ[cur as usize];
    }
    assert_eq!(order.len(), n, "pred structure is not a single list");
    let mut sums = vec![0u64; n];
    let mut acc = 0u64;
    for v in order {
        acc += vals[v as usize];
        sums[v as usize] = acc;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::SplitMix64;

    /// A list of n elements in scrambled storage order; returns
    /// (preds, vals, expected_sums).
    fn scrambled_list(n: usize, seed: u64) -> (Vec<u32>, Vec<u64>) {
        let mut order: Vec<u32> = (0..n as u32).collect();
        SplitMix64::new(seed).shuffle(&mut order);
        let mut preds = vec![INVALID_VERTEX; n];
        for w in order.windows(2) {
            preds[w[1] as usize] = w[0];
        }
        let vals: Vec<u64> = (0..n).map(|i| (i as u64 % 7) + 1).collect();
        (preds, vals)
    }

    #[test]
    fn ranks_identity_list_with_unit_values() {
        let n = 16;
        let preds: Vec<u32> = (0..n as u32)
            .map(|v| if v == 0 { INVALID_VERTEX } else { v - 1 })
            .collect();
        let vals = vec![1u64; n];
        let r = run(&preds, &vals, &PregelConfig::single_worker());
        let expected: Vec<u64> = (1..=n as u64).collect();
        assert_eq!(r.sums, expected);
    }

    #[test]
    fn matches_sequential_on_scrambled_lists() {
        for seed in 0..6 {
            let (preds, vals) = scrambled_list(100, seed);
            let r = run(&preds, &vals, &PregelConfig::single_worker());
            assert_eq!(r.sums, sequential_sums(&preds, &vals), "seed {seed}");
        }
    }

    #[test]
    fn logarithmic_supersteps() {
        let (preds, vals) = scrambled_list(1024, 3);
        let r = run(&preds, &vals, &PregelConfig::single_worker());
        // ~2 supersteps per doubling round: log2(1024) = 10 rounds.
        assert!(
            r.stats.supersteps() <= 2 * 11 + 2,
            "{} supersteps",
            r.stats.supersteps()
        );
        let (preds4, vals4) = scrambled_list(4096, 3);
        let r4 = run(&preds4, &vals4, &PregelConfig::single_worker());
        assert!(
            r4.stats.supersteps() <= r.stats.supersteps() + 6,
            "supersteps must grow logarithmically"
        );
    }

    #[test]
    fn one_message_per_element_per_superstep() {
        let (preds, vals) = scrambled_list(128, 1);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let r = run(&preds, &vals, &cfg);
        let pv = r.stats.per_vertex.as_ref().unwrap();
        for v in 0..128 {
            assert!(pv.max_sent[v] <= 1, "element {v} sent {}", pv.max_sent[v]);
            assert!(pv.max_received[v] <= 1);
        }
    }

    #[test]
    fn total_messages_n_log_n() {
        let count = |n: usize| {
            let (preds, vals) = scrambled_list(n, 5);
            run(&preds, &vals, &PregelConfig::single_worker())
                .stats
                .total_messages() as f64
        };
        let m1 = count(256);
        let m2 = count(1024);
        // n log n: 1024*10 / 256*8 = 5x; plain n would be 4x.
        let ratio = m2 / m1;
        assert!((4.2..6.0).contains(&ratio), "ratio {ratio} not ~n log n");
    }

    #[test]
    fn singleton_list() {
        let r = run(&[INVALID_VERTEX], &[42], &PregelConfig::single_worker());
        assert_eq!(r.sums, vec![42]);
    }

    #[test]
    fn parallel_matches_serial() {
        let (preds, vals) = scrambled_list(200, 9);
        let a = run(&preds, &vals, &PregelConfig::single_worker());
        let b = run(&preds, &vals, &PregelConfig::default().with_workers(4));
        assert_eq!(a.sums, b.sums);
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn non_injective_pred_rejected() {
        run(&[INVALID_VERTEX, 0, 0], &[1, 1, 1], &PregelConfig::single_worker());
    }
}
