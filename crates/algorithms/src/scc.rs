//! Row 7: strongly connected components, vertex-centric.
//!
//! The forward/backward *coloring* algorithm implemented on Pregel-like
//! systems by Salihoglu & Widom \[20\] (and in spirit by Yan et al. \[25\]):
//! repeat until every vertex is assigned — (a) every unassigned vertex
//! takes its own id as color and the maximum color is propagated along
//! out-edges to a fixpoint; (b) each color's pivot (the vertex whose color
//! equals its id) starts a backward wave along in-edges that stays within
//! its color; every vertex reached belongs to the pivot's SCC and retires.
//!
//! Each round costs `O(δ)`-ish supersteps with `O(m)` messages per
//! superstep and removes at least one SCC — asymptotically more work than
//! Tarjan's linear-time DFS (row 7 is "more work: yes", not BPPA).

use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Phase identifiers (global slot 0).
mod phase {
    /// Reset colors of unassigned vertices and send them forward.
    pub const COLOR_INIT: i64 = 0;
    /// Max-color propagation along out-edges, to fixpoint.
    pub const COLOR_PROP: i64 = 1;
    /// Pivots start the backward wave.
    pub const BACKWARD_INIT: i64 = 2;
    /// Backward wave within the color, to fixpoint.
    pub const BACKWARD_PROP: i64 = 3;
}

/// Per-vertex SCC state.
#[derive(Debug, Clone)]
pub struct SccState {
    /// Current forward color (max id reaching this vertex).
    color: VertexId,
    /// Assigned SCC pivot (`u32::MAX` while undecided).
    pub scc: VertexId,
}

impl StateSize for SccState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

struct SccColoring;

impl SccState {
    fn assigned(&self) -> bool {
        self.scc != u32::MAX
    }
}

impl VertexProgram for SccColoring {
    type Value = SccState;
    type Message = VertexId;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[VertexId]) {
        if ctx.value().assigned() {
            ctx.vote_to_halt();
            return;
        }
        match ctx.global(0).as_i64() {
            phase::COLOR_INIT => {
                let me = ctx.id();
                ctx.value_mut().color = me;
                ctx.aggregate(1, AggValue::I64(1)); // unassigned count
                ctx.send_to_all_out_neighbors(me);
            }
            phase::COLOR_PROP => {
                let best = messages.iter().copied().max();
                if let Some(c) = best {
                    if c > ctx.value().color {
                        ctx.value_mut().color = c;
                        ctx.aggregate(0, AggValue::Bool(true));
                        ctx.send_to_all_out_neighbors(c);
                    }
                }
            }
            phase::BACKWARD_INIT => {
                let me = ctx.id();
                if ctx.value().color == me {
                    // Pivot: the maximum vertex of its SCC.
                    ctx.value_mut().scc = me;
                    ctx.send_to_all_in_neighbors(me);
                }
            }
            phase::BACKWARD_PROP => {
                let color = ctx.value().color;
                if messages.contains(&color) {
                    ctx.value_mut().scc = color;
                    ctx.aggregate(0, AggValue::Bool(true));
                    ctx.send_to_all_in_neighbors(color);
                }
            }
            other => unreachable!("invalid SCC phase {other}"),
        }
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![
            AggregatorDef::new("changed", AggOp::Or),
            AggregatorDef::new("unassigned", AggOp::SumI64),
        ]
    }

    fn globals(&self) -> Vec<AggValue> {
        vec![AggValue::I64(phase::COLOR_INIT)]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        let current = master.global(0).as_i64();
        let changed = master.read_aggregate(0).as_bool();
        let next = match current {
            phase::COLOR_INIT => {
                if master.read_aggregate(1).as_i64() == 0 {
                    master.halt();
                    return;
                }
                phase::COLOR_PROP
            }
            phase::COLOR_PROP => {
                if changed {
                    phase::COLOR_PROP
                } else {
                    phase::BACKWARD_INIT
                }
            }
            phase::BACKWARD_INIT => phase::BACKWARD_PROP,
            phase::BACKWARD_PROP => {
                if changed {
                    phase::BACKWARD_PROP
                } else {
                    phase::COLOR_INIT
                }
            }
            other => unreachable!("invalid SCC phase {other}"),
        };
        master.set_global(0, AggValue::I64(next));
        master.reactivate_all();
    }
}

/// Result of vertex-centric SCC.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// Component label per vertex, normalized to the smallest member id
    /// (same convention as the sequential baseline).
    pub components: Vec<VertexId>,
    /// Number of SCCs.
    pub count: usize,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs the coloring SCC algorithm on a digraph.
pub fn run(graph: &Graph, config: &PregelConfig) -> SccResult {
    assert!(graph.is_directed(), "scc requires a digraph");
    let init: Vec<SccState> = graph
        .vertices()
        .map(|v| SccState {
            color: v,
            scc: u32::MAX,
        })
        .collect();
    let (values, stats) = vcgp_pregel::run_with_values(&SccColoring, graph, init, config);
    // Normalize pivot labels (max member) to min-member labels.
    let n = graph.num_vertices();
    let mut min_of_pivot: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (v, state) in values.iter().enumerate() {
        debug_assert!(state.assigned(), "vertex {v} left unassigned");
        let entry = min_of_pivot.entry(state.scc).or_insert(u32::MAX);
        *entry = (*entry).min(v as u32);
    }
    let components: Vec<u32> = (0..n).map(|v| min_of_pivot[&values[v].scc]).collect();
    SccResult {
        count: min_of_pivot.len(),
        components,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_tarjan() {
        for seed in 0..6 {
            let g = generators::digraph_gnm(60, 150, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = vcgp_sequential::scc::scc(&g);
            assert_eq!(vc.components, sq.components, "seed {seed}");
            assert_eq!(vc.count, sq.count, "seed {seed}");
        }
    }

    #[test]
    fn cycle_single_component() {
        let r = run(
            &generators::directed_cycle(12),
            &PregelConfig::single_worker(),
        );
        assert_eq!(r.count, 1);
        assert!(r.components.iter().all(|&c| c == 0));
    }

    #[test]
    fn dag_all_singletons() {
        let r = run(
            &generators::directed_path(10),
            &PregelConfig::single_worker(),
        );
        assert_eq!(r.count, 10);
    }

    #[test]
    fn cyclic_family_counts() {
        let g = generators::cyclic_digraph(60, 6, 15, 2);
        let vc = run(&g, &PregelConfig::single_worker());
        assert_eq!(vc.count, 6);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::cyclic_digraph(80, 4, 30, 5);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(a.components, b.components);
        assert_eq!(a.stats.supersteps(), b.stats.supersteps());
    }

    #[test]
    fn isolated_vertices_are_their_own_scc() {
        let g = vcgp_graph::GraphBuilder::directed(4).build();
        let r = run(&g, &PregelConfig::single_worker());
        assert_eq!(r.count, 4);
        assert_eq!(r.components, vec![0, 1, 2, 3]);
    }
}
