//! Row 12: graph coloring via Luby's maximal-independent-set algorithm
//! (§3.6), as implemented on Pregel by Salihoglu & Widom \[20\].
//!
//! Each color phase runs Luby rounds over the still-eligible vertices:
//! (1) every eligible vertex tentatively joins the MIS with probability
//! `1/(2 d(v))` (`d(v)` = its current uncolored degree; degree-0 vertices
//! join outright) and announces itself; (2) a tentative vertex whose id is
//! smaller than every tentative neighbor's joins the MIS and takes the
//! phase's color; (3) neighbors of new MIS members delete them from their
//! adjacency and become ineligible for this color. When no eligible vertex
//! remains the master advances to the next color. Expected `O(log n)`
//! supersteps per phase, `K` phases — `O(K m log n)` time-processor product
//! versus the sequential `O(K m)`.
//!
//! The "graph mutation" of the paper (removing colored vertices) is
//! realized by keeping the live adjacency inside the vertex value, as
//! Giraph implementations do.

use std::collections::HashSet;
use vcgp_graph::Graph;
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Luby round phases (global slot 0).
mod phase {
    pub const TENTATIVE: i64 = 0;
    pub const RESOLVE: i64 = 1;
    pub const REMOVE: i64 = 2;
}

/// Per-vertex coloring state.
#[derive(Debug, Clone, Default)]
pub struct ColorState {
    /// Uncolored neighbors (the live adjacency of the mutated graph).
    alive: HashSet<u32>,
    /// Assigned color (`u32::MAX` while uncolored).
    pub color: u32,
    /// Eligible to join the MIS of the current color phase.
    eligible: bool,
    /// Tentatively selected in the current Luby round.
    tentative: bool,
    /// Color phase this vertex last synchronized its eligibility with.
    synced_color: u32,
}

impl StateSize for ColorState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.alive.len() * 4
    }
}

#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Tentative MIS candidate announcement (id).
    Tentative(u32),
    /// The sender joined the MIS this round (id).
    InMis(u32),
}

struct LubyColoring;

impl VertexProgram for LubyColoring {
    type Value = ColorState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        if ctx.value().color != u32::MAX {
            ctx.vote_to_halt();
            return;
        }
        let current_color = ctx.global(1).as_i64() as u32;
        match ctx.global(0).as_i64() {
            phase::TENTATIVE => {
                if ctx.superstep() == 0 {
                    // Adopt the static adjacency as the live adjacency.
                    let neighbors: HashSet<u32> =
                        ctx.out_neighbors().iter().copied().collect();
                    ctx.charge(neighbors.len() as u64);
                    ctx.value_mut().alive = neighbors;
                }
                // New color phase: everyone uncolored becomes eligible.
                if ctx.value().synced_color != current_color {
                    let state = ctx.value_mut();
                    state.synced_color = current_color;
                    state.eligible = true;
                }
                if !ctx.value().eligible {
                    return;
                }
                let d = ctx.value().alive.len();
                if d == 0 {
                    // Isolated in the residual graph: a trivial MIS member.
                    ctx.value_mut().color = current_color;
                    return;
                }
                let tentative = ctx.rng().next_bool(1.0 / (2.0 * d as f64));
                ctx.value_mut().tentative = tentative;
                if tentative {
                    let me = ctx.id();
                    let alive: Vec<u32> = ctx.value().alive.iter().copied().collect();
                    for u in alive {
                        ctx.send(u, Msg::Tentative(me));
                    }
                }
            }
            phase::RESOLVE => {
                if !ctx.value().tentative {
                    return;
                }
                ctx.value_mut().tentative = false;
                let me = ctx.id();
                let min_neighbor = messages
                    .iter()
                    .filter_map(|m| match m {
                        Msg::Tentative(u) => Some(*u),
                        _ => None,
                    })
                    .min();
                if min_neighbor.is_none_or(|u| u > me) {
                    // Smallest tentative id in the neighborhood: join.
                    ctx.value_mut().color = current_color;
                    let alive: Vec<u32> = ctx.value().alive.iter().copied().collect();
                    for u in alive {
                        ctx.send(u, Msg::InMis(me));
                    }
                }
            }
            phase::REMOVE => {
                let mut removed_any = false;
                for m in messages {
                    if let Msg::InMis(u) = m {
                        ctx.value_mut().alive.remove(u);
                        removed_any = true;
                    }
                }
                if removed_any {
                    // A neighbor took the current color.
                    ctx.value_mut().eligible = false;
                }
                ctx.aggregate(0, AggValue::Bool(ctx.value().eligible));
                ctx.aggregate(1, AggValue::I64(1)); // still uncolored
            }
            other => unreachable!("invalid Luby phase {other}"),
        }
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![
            AggregatorDef::new("any_eligible", AggOp::Or),
            AggregatorDef::new("uncolored", AggOp::SumI64),
        ]
    }

    fn globals(&self) -> Vec<AggValue> {
        vec![AggValue::I64(phase::TENTATIVE), AggValue::I64(0)]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        let current = master.global(0).as_i64();
        if current == phase::REMOVE {
            if master.read_aggregate(1).as_i64() == 0 {
                master.halt();
                return;
            }
            if !master.read_aggregate(0).as_bool() {
                // This color's MIS is maximal: next color phase.
                let color = master.global(1).as_i64();
                master.set_global(1, AggValue::I64(color + 1));
            }
        }
        master.set_global(0, AggValue::I64((current + 1) % 3));
        master.reactivate_all();
    }
}

/// Result of vertex-centric coloring.
#[derive(Debug, Clone)]
pub struct ColoringResult {
    /// Color per vertex.
    pub colors: Vec<u32>,
    /// Number of colors used (`K`).
    pub num_colors: u32,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs Luby-MIS coloring on an undirected graph.
pub fn run(graph: &Graph, config: &PregelConfig) -> ColoringResult {
    assert!(!graph.is_directed(), "coloring runs on undirected graphs");
    let init: Vec<ColorState> = graph
        .vertices()
        .map(|_| ColorState {
            alive: HashSet::new(),
            color: u32::MAX,
            eligible: true,
            tentative: false,
            synced_color: 0,
        })
        .collect();
    let (values, stats) = vcgp_pregel::run_with_values(&LubyColoring, graph, init, config);
    let colors: Vec<u32> = values.into_iter().map(|s| s.color).collect();
    let num_colors = colors.iter().copied().max().map_or(0, |c| c + 1);
    ColoringResult {
        colors,
        num_colors,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;
    use vcgp_sequential::coloring::is_valid_mis_coloring;

    #[test]
    fn produces_valid_mis_colorings() {
        for seed in 0..6 {
            let g = generators::gnm(50, 120, seed);
            let cfg = PregelConfig::single_worker().with_seed(seed);
            let r = run(&g, &cfg);
            assert!(r.colors.iter().all(|&c| c != u32::MAX), "seed {seed}");
            assert!(is_valid_mis_coloring(&g, &r.colors), "seed {seed}");
        }
    }

    #[test]
    fn path_uses_few_colors() {
        // MIS peeling on a path legally needs 2 or 3 colors (the remainder
        // of an MIS removal can still contain adjacent vertices).
        let g = generators::path(30);
        let r = run(&g, &PregelConfig::single_worker());
        assert!((2..=3).contains(&r.num_colors), "{} colors", r.num_colors);
        assert!(is_valid_mis_coloring(&g, &r.colors));
    }

    #[test]
    fn complete_graph_uses_n_colors() {
        // K phases = n on a complete graph: the paper's worst case for K.
        let g = generators::complete(8);
        let r = run(&g, &PregelConfig::single_worker());
        assert_eq!(r.num_colors, 8);
        assert!(is_valid_mis_coloring(&g, &r.colors));
    }

    #[test]
    fn isolated_vertices_first_color() {
        let g = vcgp_graph::GraphBuilder::new(5).build();
        let r = run(&g, &PregelConfig::single_worker());
        assert!(r.colors.iter().all(|&c| c == 0));
        assert_eq!(r.num_colors, 1);
    }

    #[test]
    fn color_count_close_to_sequential() {
        // Luby and LF-MIS both peel maximal independent sets; color counts
        // are comparable (within ~2x), not identical.
        let g = generators::gnm(80, 240, 9);
        let vc = run(&g, &PregelConfig::single_worker());
        let sq = vcgp_sequential::coloring::coloring_lf_mis(&g);
        assert!(vc.num_colors <= sq.num_colors * 2 + 2);
        assert!(sq.num_colors <= vc.num_colors * 2 + 2);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::gnm(60, 150, 4);
        let a = run(&g, &PregelConfig::single_worker().with_seed(7));
        let b = run(&g, &PregelConfig::default().with_workers(4).with_seed(7));
        assert_eq!(a.colors, b.colors, "deterministic rng must make runs equal");
    }

    #[test]
    fn different_seeds_still_valid() {
        let g = generators::gnm(40, 90, 2);
        for seed in [1u64, 99, 12345] {
            let r = run(&g, &PregelConfig::single_worker().with_seed(seed));
            assert!(is_valid_mis_coloring(&g, &r.colors), "seed {seed}");
        }
    }
}
