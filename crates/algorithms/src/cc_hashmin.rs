//! Row 3: Hash-Min connected components (§3.3.1).
//!
//! Every vertex repeatedly adopts and forwards the smallest vertex id it
//! has seen; after `O(δ)` supersteps every vertex holds the smallest id of
//! its component (the component's "color"). A balanced Pregel algorithm —
//! each superstep is `O(d(v))` per vertex — but not BPPA, because the
//! superstep count is the diameter, not `O(log n)`.

use vcgp_pregel::{Context, PregelConfig, RunStats, VertexProgram};
use vcgp_graph::VertexId;
use vcgp_graph::Graph;

/// Result of Hash-Min.
#[derive(Debug, Clone)]
pub struct HashMinResult {
    /// Smallest vertex id in each vertex's component.
    pub components: Vec<VertexId>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

struct HashMin;

impl VertexProgram for HashMin {
    type Value = u32;
    type Message = u32;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[u32]) {
        self.compute_impl(ctx, messages);
    }

    fn combiner(&self) -> Option<fn(&mut u32, u32)> {
        Some(|acc, m| *acc = (*acc).min(m))
    }
}

/// Runs Hash-Min on an undirected graph.
pub fn run(graph: &Graph, config: &PregelConfig) -> HashMinResult {
    assert!(!graph.is_directed(), "hash-min runs on undirected graphs");
    let (components, stats) = vcgp_pregel::run(&HashMin, graph, config);
    HashMinResult { components, stats }
}

/// Hash-Min with the *finish-computations-serially* optimization of
/// Salihoglu & Widom \[20\] (one of the optimization techniques the paper's
/// introduction lists): once the active frontier drops below
/// `serial_threshold` vertices, the master halts the distributed phase and
/// the coordinator finishes the remaining label propagation sequentially.
/// On high-diameter graphs this removes the long superstep tail in which
/// only a handful of vertices are active while every superstep still pays
/// the synchronization floor `L`.
pub fn run_with_fcs(
    graph: &Graph,
    serial_threshold: usize,
    config: &PregelConfig,
) -> HashMinResult {
    assert!(!graph.is_directed(), "hash-min runs on undirected graphs");
    struct HashMinFcs {
        threshold: usize,
    }
    impl VertexProgram for HashMinFcs {
        type Value = u32;
        type Message = u32;
        fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[u32]) {
            HashMin.compute_impl(ctx, messages);
        }
        fn combiner(&self) -> Option<vcgp_pregel::Combiner<u32>> {
            Some(|acc, m| *acc = (*acc).min(m))
        }
        fn master_compute(&self, master: &mut vcgp_pregel::MasterContext<'_>) {
            if master.superstep() > 0 && master.num_active() <= self.threshold {
                master.halt();
            }
        }
    }
    let program = HashMinFcs {
        threshold: serial_threshold,
    };
    let (mut components, stats) = vcgp_pregel::run(&program, graph, config);
    // Serial finish: propagate remaining improvements to the fixpoint with
    // a worklist (the coordinator-side tail).
    let mut queue: std::collections::VecDeque<u32> = graph.vertices().collect();
    let mut queued = vec![true; graph.num_vertices()];
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        let label = components[u as usize];
        for &v in graph.out_neighbors(u) {
            if label < components[v as usize] {
                components[v as usize] = label;
                if !queued[v as usize] {
                    queued[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    HashMinResult { components, stats }
}

impl HashMin {
    /// Shared kernel between the plain and FCS-wrapped programs.
    fn compute_impl<P>(&self, ctx: &mut Context<'_, P>, messages: &[u32])
    where
        P: VertexProgram<Value = u32, Message = u32> + ?Sized,
    {
        if ctx.superstep() == 0 {
            let mut min = ctx.id();
            for &u in ctx.out_neighbors() {
                min = min.min(u);
            }
            ctx.charge(ctx.out_neighbors().len() as u64);
            *ctx.value_mut() = min;
            ctx.send_to_all_out_neighbors(min);
        } else {
            let incoming = messages.iter().copied().min();
            if let Some(m) = incoming {
                if m < *ctx.value() {
                    *ctx.value_mut() = m;
                    ctx.send_to_all_out_neighbors(m);
                }
            }
        }
        ctx.vote_to_halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_sequential_cc() {
        for seed in 0..5 {
            let g = generators::gnm(80, 110, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = vcgp_sequential::connectivity::cc(&g);
            assert_eq!(vc.components, sq.components, "seed {seed}");
        }
    }

    #[test]
    fn path_takes_diameter_supersteps() {
        let g = generators::path(50);
        let r = run(&g, &PregelConfig::single_worker());
        assert!(r.components.iter().all(|&c| c == 0));
        // Propagating id 0 down the path takes ~n supersteps: the paper's
        // straight-line adversarial case for the superstep bound.
        assert!(
            r.stats.supersteps() >= 49,
            "only {} supersteps",
            r.stats.supersteps()
        );
    }

    #[test]
    fn short_diameter_converges_fast() {
        let g = generators::star(64);
        let r = run(&g, &PregelConfig::single_worker());
        assert!(r.stats.supersteps() <= 4);
    }

    #[test]
    fn balanced_per_vertex_messages() {
        // BPPA properties 1-3 hold for hash-min: per-vertex traffic is
        // bounded by the degree in every superstep.
        let g = generators::gnm_connected(100, 300, 3);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let r = run(&g, &cfg);
        let pv = r.stats.per_vertex.as_ref().unwrap();
        for v in g.vertices() {
            let d = g.bppa_degree(v) as u64;
            assert!(pv.max_sent[v as usize] <= d);
            assert!(pv.max_received[v as usize] <= d);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let g = generators::gnm(200, 400, 7);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(a.components, b.components);
        assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    }

    #[test]
    fn fcs_matches_plain_result() {
        for seed in 0..4 {
            let g = generators::gnm(150, 220, seed);
            let plain = run(&g, &PregelConfig::single_worker());
            for threshold in [0usize, 5, 50, 1000] {
                let fcs = run_with_fcs(&g, threshold, &PregelConfig::single_worker());
                assert_eq!(
                    fcs.components, plain.components,
                    "seed {seed}, threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn fcs_cuts_the_superstep_tail_on_permuted_paths() {
        // A path whose vertex ids are a random permutation of positions:
        // local minima stall after a few supersteps and only the global
        // minimum keeps crawling — a one-vertex frontier for Θ(n)
        // supersteps, which is exactly the tail FCS hands to the
        // coordinator.
        let n = 2000usize;
        let mut positions: Vec<u32> = (0..n as u32).collect();
        vcgp_graph::SplitMix64::new(17).shuffle(&mut positions);
        let mut b = vcgp_graph::GraphBuilder::new(n);
        for w in positions.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let plain = run(&g, &PregelConfig::single_worker());
        let fcs = run_with_fcs(&g, 32, &PregelConfig::single_worker());
        assert_eq!(fcs.components, plain.components);
        assert!(
            fcs.stats.supersteps() * 5 < plain.stats.supersteps(),
            "{} vs {} supersteps",
            fcs.stats.supersteps(),
            plain.stats.supersteps()
        );
    }
}
