//! Rows 1 and 17: exact diameter and unweighted APSP by simultaneous
//! eccentricity propagation (Pennycuff & Weninger \[15\], §3.1, Figure 1).
//!
//! Every vertex originates a unique message carrying its id in superstep 0
//! and keeps a *history set* of originator ids already seen; unseen ids are
//! recorded (their first-arrival superstep is the hop distance) and
//! relayed. The algorithm floods `Θ(n)` distinct messages over `O(m)` edges
//! each — `O(mn)` traffic, `O(δ)` supersteps — and its history set makes
//! per-vertex storage `Θ(n)`: the textbook BPPA property-1 violation.

use std::collections::HashMap;
use vcgp_graph::Graph;
use vcgp_pregel::{AggOp, AggValue, AggregatorDef, Context, PregelConfig, RunStats, StateSize,
    VertexProgram};

/// Per-vertex state: the history of seen originators with their hop
/// distances, and the eccentricity observed so far.
#[derive(Debug, Clone, Default)]
pub struct EccState {
    /// Originator id → hop distance at first arrival. Grows to `Θ(n)` —
    /// this map *is* the paper's history set (distances retained for APSP).
    pub seen: HashMap<u32, u32>,
    /// Largest hop distance observed (the vertex's eccentricity once the
    /// run converges).
    pub ecc: u32,
}

impl StateSize for EccState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.seen.len() * 8
    }
}

struct Eccentricity;

impl VertexProgram for Eccentricity {
    type Value = EccState;
    type Message = u32;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[u32]) {
        let superstep = ctx.superstep();
        if superstep == 0 {
            let id = ctx.id();
            ctx.value_mut().seen.insert(id, 0);
            ctx.send_to_all_out_neighbors(id);
        } else {
            let dist = superstep as u32;
            let mut fresh: Vec<u32> = Vec::new();
            for &origin in messages {
                // One unit per history-set probe.
                ctx.charge(1);
                if !ctx.value().seen.contains_key(&origin) {
                    ctx.value_mut().seen.insert(origin, dist);
                    fresh.push(origin);
                }
            }
            if !fresh.is_empty() {
                let state = ctx.value_mut();
                state.ecc = state.ecc.max(dist);
                let ecc = state.ecc;
                ctx.aggregate(0, AggValue::I64(ecc as i64));
                for origin in fresh {
                    ctx.send_to_all_out_neighbors(origin);
                }
            }
        }
        ctx.vote_to_halt();
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![AggregatorDef::new("max_ecc", AggOp::MaxI64)]
    }
}

/// Result of the diameter / APSP computation.
#[derive(Debug, Clone)]
pub struct DiameterResult {
    /// The exact diameter (max eccentricity).
    pub diameter: u32,
    /// Per-vertex eccentricities.
    pub eccentricities: Vec<u32>,
    /// Per-vertex distance maps (the APSP output of row 17).
    pub distances: Vec<HashMap<u32, u32>>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs eccentricity propagation on a connected undirected graph.
///
/// # Panics
/// Panics if the graph is empty or some vertex never heard from some
/// originator (i.e. the graph is disconnected).
pub fn run(graph: &Graph, config: &PregelConfig) -> DiameterResult {
    assert!(!graph.is_directed(), "row 1/17 run on undirected graphs");
    assert!(graph.num_vertices() > 0, "diameter of empty graph undefined");
    let (values, stats) = vcgp_pregel::run(&Eccentricity, graph, config);
    let n = graph.num_vertices();
    let mut eccentricities = Vec::with_capacity(n);
    let mut distances = Vec::with_capacity(n);
    let mut diameter = 0u32;
    for state in values {
        assert_eq!(
            state.seen.len(),
            n,
            "disconnected input: eccentricities are infinite"
        );
        diameter = diameter.max(state.ecc);
        eccentricities.push(state.ecc);
        distances.push(state.seen);
    }
    DiameterResult {
        diameter,
        eccentricities,
        distances,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn diameter_of_known_shapes() {
        let cfg = PregelConfig::single_worker();
        assert_eq!(run(&generators::path(12), &cfg).diameter, 11);
        assert_eq!(run(&generators::cycle(9), &cfg).diameter, 4);
        assert_eq!(run(&generators::star(7), &cfg).diameter, 2);
        assert_eq!(run(&generators::complete(6), &cfg).diameter, 1);
        assert_eq!(run(&generators::grid(3, 5), &cfg).diameter, 6);
    }

    #[test]
    fn matches_sequential_everything() {
        for seed in 0..4 {
            let g = generators::gnm_connected(40, 90, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = vcgp_sequential::diameter::diameter(&g);
            assert_eq!(vc.diameter, sq.diameter, "seed {seed}");
            assert_eq!(vc.eccentricities, sq.eccentricities, "seed {seed}");
            // APSP cross-check (row 17).
            let apsp = vcgp_sequential::diameter::apsp(&g);
            for u in 0..40usize {
                for v in 0..40u32 {
                    assert_eq!(vc.distances[u][&v], apsp.dist[u][v as usize]);
                }
            }
        }
    }

    #[test]
    fn supersteps_track_diameter() {
        // δ supersteps of propagation + the first + the final silent one.
        let g = generators::path(20);
        let r = run(&g, &PregelConfig::single_worker());
        assert_eq!(r.stats.supersteps(), 19 + 2);
    }

    #[test]
    fn message_volume_is_theta_mn() {
        // Each of the n originator ids crosses each edge in both directions
        // at most once: total algorithm-level messages ≈ 2mn / something
        // comparable. Verify the growth doubles when n doubles at fixed
        // average degree by comparing two path graphs.
        let small = run(&generators::cycle(32), &PregelConfig::single_worker());
        let large = run(&generators::cycle(64), &PregelConfig::single_worker());
        let ratio = large.stats.total_messages() as f64 / small.stats.total_messages() as f64;
        assert!((3.5..4.6).contains(&ratio), "expected ~4x (mn), got {ratio}");
    }

    #[test]
    fn history_set_storage_is_theta_n() {
        let g = generators::gnm_connected(60, 120, 2);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let r = run(&g, &cfg);
        let pv = r.stats.per_vertex.as_ref().unwrap();
        // Every vertex ends up storing all 60 originators: far above d(v).
        for v in g.vertices() {
            assert!(pv.max_state_bytes[v as usize] >= 60 * 8);
        }
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_is_rejected() {
        let g = vcgp_graph::GraphBuilder::new(4).build();
        run(&g, &PregelConfig::single_worker());
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::gnm_connected(50, 110, 8);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(a.diameter, b.diameter);
        assert_eq!(a.eccentricities, b.eccentricities);
        assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    }
}
