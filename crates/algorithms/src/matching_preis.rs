//! Row 13: maximum weight matching by locally-dominant edges (§3 of \[20\],
//! the vertex-centric realization of Preis's 1/2-approximation \[16\]).
//!
//! Rounds of three phases: (1) every unmatched vertex points at its
//! heaviest unmatched neighbor and proposes to it; (2) mutual proposals
//! become matched edges, announced to all remaining neighbors; (3) the
//! announced vertices are deleted from live adjacencies. The globally
//! heaviest live edge is always mutual, so every round makes progress;
//! `K` rounds of `O(m)` messages give the paper's `O(Km)` time-processor
//! product versus the sequential `O(m)`.
//!
//! With distinct edge weights the computed matching is exactly the greedy
//! heaviest-edge-first matching, enabling edge-for-edge validation.

use vcgp_graph::{Graph, VertexId, INVALID_VERTEX};
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Round phases (global slot 0).
mod phase {
    pub const PROPOSE: i64 = 0;
    pub const RESOLVE: i64 = 1;
    pub const REMOVE: i64 = 2;
}

/// Per-vertex matching state.
#[derive(Debug, Clone, Default)]
pub struct MatchState {
    /// Unmatched neighbors with edge weights (live adjacency).
    alive: Vec<(u32, f64)>,
    /// Current proposal target.
    candidate: u32,
    /// Matched partner (`INVALID_VERTEX` while unmatched).
    pub mate: u32,
}

impl StateSize for MatchState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.alive.len() * 12
    }
}

#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Proposal from the sender.
    Propose(u32),
    /// The sender got matched; remove it from live adjacency.
    Matched(u32),
}

struct LocallyDominant;

impl VertexProgram for LocallyDominant {
    type Value = MatchState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        if ctx.value().mate != INVALID_VERTEX {
            ctx.vote_to_halt();
            return;
        }
        match ctx.global(0).as_i64() {
            phase::PROPOSE => {
                if ctx.superstep() == 0 {
                    let live: Vec<(u32, f64)> = ctx
                        .graph()
                        .out_edges(ctx.id())
                        .filter(|&(u, _)| u != ctx.id())
                        .collect();
                    ctx.charge(live.len() as u64);
                    ctx.value_mut().alive = live;
                }
                let best = ctx
                    .value()
                    .alive
                    .iter()
                    .copied()
                    // Heaviest weight; ties by smallest id (deterministic).
                    .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
                ctx.charge(ctx.value().alive.len() as u64);
                match best {
                    Some((u, _)) => {
                        ctx.value_mut().candidate = u;
                        ctx.aggregate(0, AggValue::Bool(true)); // live edge exists
                        let me = ctx.id();
                        ctx.send(u, Msg::Propose(me));
                    }
                    None => {
                        // No live neighbors: this vertex can never match.
                        ctx.value_mut().candidate = INVALID_VERTEX;
                    }
                }
            }
            phase::RESOLVE => {
                let candidate = ctx.value().candidate;
                if candidate == INVALID_VERTEX {
                    return;
                }
                let mutual = messages
                    .iter()
                    .any(|m| matches!(m, Msg::Propose(u) if *u == candidate));
                if mutual {
                    ctx.value_mut().mate = candidate;
                    let me = ctx.id();
                    let alive: Vec<u32> =
                        ctx.value().alive.iter().map(|&(u, _)| u).collect();
                    for u in alive {
                        ctx.send(u, Msg::Matched(me));
                    }
                }
            }
            phase::REMOVE => {
                for m in messages {
                    if let Msg::Matched(u) = m {
                        ctx.value_mut().alive.retain(|&(v, _)| v != *u);
                        ctx.charge(1);
                    }
                }
            }
            other => unreachable!("invalid matching phase {other}"),
        }
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![AggregatorDef::new("any_live_edge", AggOp::Or)]
    }

    fn globals(&self) -> Vec<AggValue> {
        vec![AggValue::I64(phase::PROPOSE)]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        let current = master.global(0).as_i64();
        if current == phase::PROPOSE && !master.read_aggregate(0).as_bool() {
            // No unmatched vertex has a live neighbor: maximal.
            master.halt();
            return;
        }
        master.set_global(0, AggValue::I64((current + 1) % 3));
        master.reactivate_all();
    }
}

/// Result of vertex-centric matching.
#[derive(Debug, Clone)]
pub struct MatchingResult {
    /// Partner per vertex (`INVALID_VERTEX` = unmatched).
    pub mate: Vec<VertexId>,
    /// Total matched weight.
    pub total_weight: f64,
    /// Number of matched edges.
    pub size: usize,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs locally-dominant matching on a weighted undirected graph.
pub fn run(graph: &Graph, config: &PregelConfig) -> MatchingResult {
    assert!(!graph.is_directed(), "matching runs on undirected graphs");
    let init: Vec<MatchState> = graph
        .vertices()
        .map(|_| MatchState {
            alive: Vec::new(),
            candidate: INVALID_VERTEX,
            mate: INVALID_VERTEX,
        })
        .collect();
    let (values, stats) = vcgp_pregel::run_with_values(&LocallyDominant, graph, init, config);
    let mate: Vec<u32> = values.into_iter().map(|s| s.mate).collect();
    let mut total = 0.0;
    let mut size = 0usize;
    for v in graph.vertices() {
        let m = mate[v as usize];
        if m != INVALID_VERTEX && v < m {
            total += graph.edge_weight(v, m).expect("matched edge must exist");
            size += 1;
        }
    }
    MatchingResult {
        mate,
        total_weight: total,
        size,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;
    use vcgp_sequential::matching::{is_maximal_matching, mwm_greedy};

    fn weighted(n: usize, m: usize, seed: u64) -> Graph {
        generators::with_random_weights(&generators::gnm(n, m, seed), 0.0, 1.0, seed, true)
    }

    #[test]
    fn equals_greedy_on_distinct_weights() {
        for seed in 0..6 {
            let g = weighted(60, 150, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = mwm_greedy(&g);
            assert_eq!(vc.mate, sq.mate, "seed {seed}");
            assert!((vc.total_weight - sq.total_weight).abs() < 1e-9);
            assert_eq!(vc.size, sq.size);
        }
    }

    #[test]
    fn matching_is_maximal() {
        for seed in 0..4 {
            let g = weighted(50, 110, seed + 50);
            let vc = run(&g, &PregelConfig::single_worker());
            assert!(is_maximal_matching(&g, &vc.mate), "seed {seed}");
        }
    }

    #[test]
    fn increasing_weight_path_needs_many_rounds() {
        // Weights increase toward one end: each round matches only the
        // locally-dominant tail edge — K = Θ(n) rounds, the adversarial
        // case behind the paper's O(Km) bound.
        let n = 24;
        let mut b = vcgp_graph::GraphBuilder::new(n);
        for v in 0..n as u32 - 1 {
            b.add_weighted_edge(v, v + 1, (v + 1) as f64);
        }
        let g = b.build();
        let r = run(&g, &PregelConfig::single_worker());
        assert!(is_maximal_matching(&g, &r.mate));
        // Supersteps ≈ 3 per matched tail edge.
        assert!(
            r.stats.supersteps() >= (n as u64 / 2 - 2) * 3,
            "{} supersteps",
            r.stats.supersteps()
        );
    }

    #[test]
    fn empty_and_singleton() {
        let g = vcgp_graph::GraphBuilder::new(2).build();
        let r = run(&g, &PregelConfig::single_worker());
        assert!(r.mate.iter().all(|&m| m == INVALID_VERTEX));
        assert_eq!(r.size, 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = weighted(90, 220, 3);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(a.mate, b.mate);
    }
}
