//! Row 5: biconnected components, vertex-centric — the Tarjan-Vishkin
//! reduction \[22\] as pipelined on Pregel by Yan et al. \[25\].
//!
//! Stages (each a Pregel job; stats are merged):
//!
//! 1. spanning tree by S-V hooking (row 10);
//! 2. rooted tree functions `pre(v)`, `nd(v)`, `parent(v)` via Euler tour +
//!    list ranking (row 9's pipeline);
//! 3. a two-superstep exchange on the original graph computing
//!    `m(v) = min/max` of `pre` over `v` and its *non-tree* neighbors;
//! 4. bottom-up subtree aggregation on the tree producing
//!    `low(v)/high(v)` = min/max of `m` over `subtree(v)` (O(tree height)
//!    supersteps; Yan et al. use an `O(log n)` tour-based variant — the
//!    verdicts are unaffected, see DESIGN.md);
//! 5. Hash-Min connected components over the *auxiliary graph* whose
//!    vertices are tree edges `(parent(w), w) ≡ w` and whose edges follow
//!    Tarjan-Vishkin's two rules; aux components = biconnected components.
//!
//! Every stage inherits the S-V/list-ranking cost profile:
//! `O((m + n) log n)` time-processor product versus Hopcroft-Tarjan's
//! linear DFS — "more work: yes", not BPPA.

use crate::{cc_hashmin, cc_sv, tree_order};
use std::collections::HashMap;
use vcgp_graph::{Graph, GraphBuilder, VertexId, INVALID_VERTEX};
use vcgp_pregel::{Context, PregelConfig, RunStats, StateSize, VertexProgram};

/// Stage 3 state: pre-order info plus the min/max over non-tree neighbors.
#[derive(Debug, Clone, Default)]
struct ExchangeState {
    pre: u32,
    parent: VertexId,
    mlow: u32,
    mhigh: u32,
}

impl StateSize for ExchangeState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

struct PreExchange;

impl VertexProgram for PreExchange {
    type Value = ExchangeState;
    /// `(sender, pre(sender), parent(sender))`.
    type Message = (VertexId, u32, VertexId);

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[(VertexId, u32, VertexId)]) {
        if ctx.superstep() == 0 {
            let me = ctx.id();
            let (pre, parent) = (ctx.value().pre, ctx.value().parent);
            ctx.send_to_all_out_neighbors((me, pre, parent));
        } else {
            let me = ctx.id();
            let my_parent = ctx.value().parent;
            let mut lo = ctx.value().pre;
            let mut hi = ctx.value().pre;
            for &(u, pre_u, parent_u) in messages {
                // Skip tree edges: u is my parent, or I am u's parent.
                if u == my_parent || parent_u == me {
                    continue;
                }
                lo = lo.min(pre_u);
                hi = hi.max(pre_u);
            }
            let state = ctx.value_mut();
            state.mlow = lo;
            state.mhigh = hi;
        }
        ctx.vote_to_halt();
    }
}

/// Stage 4 state: bottom-up subtree min/max.
#[derive(Debug, Clone, Copy, Default)]
struct AggState {
    /// Children yet to report.
    pending: u32,
    low: u32,
    high: u32,
    parent: VertexId,
}

impl StateSize for AggState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

struct SubtreeAgg;

impl VertexProgram for SubtreeAgg {
    type Value = AggState;
    /// `(low, high)` of a completed child subtree.
    type Message = (u32, u32);

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[(u32, u32)]) {
        for &(lo, hi) in messages {
            let state = ctx.value_mut();
            state.low = state.low.min(lo);
            state.high = state.high.max(hi);
            state.pending -= 1;
        }
        let state = *ctx.value();
        let subtree_complete = state.pending == 0 && state.parent != INVALID_VERTEX;
        // Leaves fire in superstep 0; inner vertices fire on the superstep
        // their last child reports.
        if subtree_complete && (!messages.is_empty() || ctx.superstep() == 0) {
            ctx.send(state.parent, (state.low, state.high));
        }
        ctx.vote_to_halt();
    }
}

/// Result of the vertex-centric BCC pipeline.
#[derive(Debug, Clone)]
pub struct BccResult {
    /// Block id per logical edge, indexed in `g.edges()` order.
    pub block_of_edge: Vec<u32>,
    /// Number of biconnected components.
    pub count: usize,
    /// Merged instrumentation of all pipeline stages.
    pub stats: RunStats,
}

/// Runs the Tarjan-Vishkin pipeline on a connected undirected simple graph.
pub fn run(graph: &Graph, config: &PregelConfig) -> BccResult {
    assert!(!graph.is_directed(), "bcc runs on undirected graphs");
    assert!(
        vcgp_graph::traversal::is_connected(graph),
        "bcc pipeline requires a connected graph"
    );
    assert!(
        graph.edges().all(|(u, v, _)| u != v),
        "bcc runs on simple graphs (no self-loops)"
    );
    let n = graph.num_vertices();
    if n <= 1 || graph.num_edges() == 0 {
        return BccResult {
            block_of_edge: Vec::new(),
            count: 0,
            stats: RunStats::empty(config.num_workers),
        };
    }

    // Stage 1: spanning tree.
    let sv = cc_sv::run(graph, config);
    let mut stats = sv.stats;
    let mut tb = GraphBuilder::new(n);
    let mut is_tree_edge: HashMap<(VertexId, VertexId), bool> = HashMap::new();
    for &(u, v) in &sv.tree_edges {
        tb.add_edge(u, v);
        is_tree_edge.insert((u, v), true);
    }
    let tree = tb.build();

    // Stage 2: pre-order, subtree sizes, parents (rooted at 0).
    let orders = tree_order::run(&tree, 0, config);
    stats.merge(orders.stats.clone());
    let (pre, nd, parent) = (orders.pre, orders.nd, orders.parent);

    // Stage 3: min/max pre over self + non-tree neighbors.
    let init: Vec<ExchangeState> = graph
        .vertices()
        .map(|v| ExchangeState {
            pre: pre[v as usize],
            parent: parent[v as usize],
            mlow: pre[v as usize],
            mhigh: pre[v as usize],
        })
        .collect();
    let (m_values, ex_stats) = vcgp_pregel::run_with_values(&PreExchange, graph, init, config);
    stats.merge(ex_stats);

    // Stage 4: subtree aggregation of (mlow, mhigh) on the tree.
    let mut children = vec![0u32; n];
    for v in 1..n {
        children[parent[v] as usize] += 1;
    }
    // Note: `parent` indexes tree vertices 1.. by construction only when
    // rooted at 0 with vertex ids preserved, which stage 2 guarantees.
    let agg_init: Vec<AggState> = graph
        .vertices()
        .map(|v| AggState {
            pending: children[v as usize],
            low: m_values[v as usize].mlow,
            high: m_values[v as usize].mhigh,
            parent: parent[v as usize],
        })
        .collect();
    let (agg_values, agg_stats) =
        vcgp_pregel::run_with_values(&SubtreeAgg, &tree, agg_init, config);
    stats.merge(agg_stats);
    let low: Vec<u32> = agg_values.iter().map(|s| s.low).collect();
    let high: Vec<u32> = agg_values.iter().map(|s| s.high).collect();

    // Stage 5: the auxiliary graph. Aux vertex w (w != root 0) stands for
    // tree edge (parent(w), w).
    let tree_set: std::collections::HashSet<(VertexId, VertexId)> =
        sv.tree_edges.iter().copied().collect();
    let related = |a: usize, b: usize| {
        // Is a an ancestor of b?
        pre[a] <= pre[b] && pre[b] < pre[a] + nd[a]
    };
    let mut aux = GraphBuilder::new(n);
    for (u, v, _) in graph.edges() {
        let (u, v) = (u as usize, v as usize);
        if tree_set.contains(&(u as u32, v as u32)) {
            continue;
        }
        // Rule 1: unrelated non-tree edge {u, v} joins aux vertices u, v.
        if !related(u, v) && !related(v, u) {
            aux.add_edge(u as u32, v as u32);
        }
    }
    for w in 1..n {
        let v = parent[w] as usize;
        if v != 0 {
            // Rule 2: tree edge (parent(v), v) ~ (v, w) when subtree(w)
            // escapes v's interval.
            if low[w] < pre[v] || high[w] >= pre[v] + nd[v] {
                aux.add_edge(v as u32, w as u32);
            }
        }
    }
    let aux_graph = aux.dedup().build();
    let cc = cc_hashmin::run(&aux_graph, config);
    stats.merge(cc.stats);

    // Assignment: tree edge (parent(w), w) -> component of aux vertex w;
    // non-tree edge {u, v} -> component of its deeper endpoint.
    let mut block_ids: HashMap<u32, u32> = HashMap::new();
    let mut block_of_edge = Vec::with_capacity(graph.num_edges());
    for (u, v, _) in graph.edges() {
        let aux_vertex = if tree_set.contains(&(u, v)) {
            // The child endpoint identifies the tree edge.
            if parent[v as usize] == u {
                v
            } else {
                u
            }
        } else if pre[u as usize] > pre[v as usize] {
            u
        } else {
            v
        };
        let label = cc.components[aux_vertex as usize];
        let next = block_ids.len() as u32;
        let id = *block_ids.entry(label).or_insert(next);
        block_of_edge.push(id);
    }
    BccResult {
        count: block_ids.len(),
        block_of_edge,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;
    use vcgp_sequential::bcc::canonical_blocks;

    fn assert_matches_sequential(g: &Graph, label: &str) {
        let vc = run(g, &PregelConfig::single_worker());
        let sq = vcgp_sequential::bcc::bcc(g);
        assert_eq!(vc.count, sq.count, "{label}: block count");
        assert_eq!(
            canonical_blocks(&vc.block_of_edge),
            canonical_blocks(&sq.block_of_edge),
            "{label}: partitions differ"
        );
    }

    #[test]
    fn cycle_single_block() {
        assert_matches_sequential(&generators::cycle(8), "cycle");
    }

    #[test]
    fn path_all_bridges() {
        assert_matches_sequential(&generators::path(10), "path");
    }

    #[test]
    fn star_all_bridges() {
        assert_matches_sequential(&generators::star(9), "star");
    }

    #[test]
    fn shared_vertex_triangles() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(2, 4);
        assert_matches_sequential(&b.build(), "two triangles");
    }

    #[test]
    fn random_connected_graphs() {
        for seed in 0..6 {
            let g = generators::gnm_connected(50, 90, seed);
            assert_matches_sequential(&g, &format!("gnm seed {seed}"));
        }
    }

    #[test]
    fn dense_graph_one_block() {
        assert_matches_sequential(&generators::complete(8), "complete");
    }

    #[test]
    fn grid_is_mostly_biconnected() {
        assert_matches_sequential(&generators::grid(4, 5), "grid");
    }

    #[test]
    fn tree_input_every_edge_its_own_block() {
        let t = generators::random_tree(30, 5);
        let vc = run(&t, &PregelConfig::single_worker());
        assert_eq!(vc.count, 29);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::gnm_connected(60, 120, 7);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(
            canonical_blocks(&a.block_of_edge),
            canonical_blocks(&b.block_of_edge)
        );
    }
}
