//! Row 8: Euler tour of a tree in two supersteps (Yan et al. \[25\], §3.4.1).
//!
//! Superstep 0: every vertex `v` sends `⟨u, next_v(u)⟩` to each neighbor
//! `u`, where `next_v` cycles through `v`'s sorted adjacency list.
//! Superstep 1: every vertex `u` stores `next_v(u)` keyed by `v`; the
//! successor of tour arc `(u, v)` is then `(v, next_v(u))`.
//!
//! The only Table 1 row that is **both** work-optimal (`O(n)`
//! time-processor product) **and** BPPA: constant supersteps, `O(d(v))`
//! messages and storage per vertex.

use std::collections::HashMap;
use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{Context, PregelConfig, RunStats, StateSize, VertexProgram};

/// Per-vertex state: `next[v] = next_v(u)` for each neighbor `v` of `u`,
/// i.e. the successor target of tour arc `(u, v)`.
#[derive(Debug, Clone, Default)]
pub struct NextMap {
    /// Neighbor `v` → `next_v(u)`.
    pub next: HashMap<VertexId, VertexId>,
}

impl StateSize for NextMap {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.next.len() * 8
    }
}

struct EulerTour;

impl VertexProgram for EulerTour {
    type Value = NextMap;
    type Message = (VertexId, VertexId);

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[(VertexId, VertexId)]) {
        if ctx.superstep() == 0 {
            let neighbors = ctx.out_neighbors();
            let me = ctx.id();
            let deg = neighbors.len();
            for i in 0..deg {
                let u = neighbors[i];
                let next_u = neighbors[(i + 1) % deg];
                ctx.send(u, (me, next_u));
            }
        } else {
            for &(v, next_v_of_me) in messages {
                ctx.value_mut().next.insert(v, next_v_of_me);
            }
        }
        ctx.vote_to_halt();
    }
}

/// Result of the Euler tour computation.
#[derive(Debug, Clone)]
pub struct EulerTourResult {
    /// Per-vertex successor maps: `next_of[u][v]` is the target of the arc
    /// following `(u, v)` in the tour.
    pub next_of: Vec<HashMap<VertexId, VertexId>>,
    /// The materialized tour from `(root, first(root))`, `2(n-1)` arcs.
    pub tour: Vec<(VertexId, VertexId)>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs the two-superstep Euler tour on a tree, materializing the circuit
/// from `root`.
pub fn run(graph: &Graph, root: VertexId, config: &PregelConfig) -> EulerTourResult {
    assert!(
        vcgp_graph::traversal::is_tree(graph),
        "euler tour requires a tree"
    );
    assert!(graph.num_vertices() >= 2, "need at least one edge");
    let (values, stats) = vcgp_pregel::run(&EulerTour, graph, config);
    let next_of: Vec<HashMap<VertexId, VertexId>> = values.into_iter().map(|v| v.next).collect();
    let n = graph.num_vertices();
    let first = graph.out_neighbors(root)[0];
    let mut tour = Vec::with_capacity(2 * (n - 1));
    let (mut u, mut v) = (root, first);
    for _ in 0..2 * (n - 1) {
        tour.push((u, v));
        // Successor of (u, v) is (v, next_v(u)); vertex u stored next_v(u)
        // keyed by v during superstep 1.
        let next = next_of[u as usize][&v];
        u = v;
        v = next;
    }
    EulerTourResult {
        next_of,
        tour,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_sequential_tour() {
        for seed in 0..6 {
            let t = generators::random_tree(40, seed);
            let vc = run(&t, 0, &PregelConfig::single_worker());
            let sq = vcgp_sequential::tree::euler_tour(&t, 0);
            assert_eq!(vc.tour, sq.tour, "seed {seed}");
        }
    }

    #[test]
    fn exactly_two_supersteps() {
        let t = generators::random_tree(50, 1);
        let r = run(&t, 0, &PregelConfig::single_worker());
        assert_eq!(r.stats.supersteps(), 2);
    }

    #[test]
    fn is_bppa_balanced() {
        // Messages and storage per vertex bounded by degree in both
        // supersteps — the BPPA properties the paper credits this row with.
        let t = generators::random_tree(100, 3);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let r = run(&t, 0, &cfg);
        let pv = r.stats.per_vertex.as_ref().unwrap();
        for v in t.vertices() {
            let d = t.bppa_degree(v) as u64;
            assert!(pv.max_sent[v as usize] <= d);
            assert!(pv.max_received[v as usize] <= d);
            // HashMap entry per neighbor: O(d) bytes + struct overhead.
            assert!(pv.max_state_bytes[v as usize] <= 8 * d + 64);
        }
    }

    #[test]
    fn message_total_is_2m() {
        let t = generators::kary_tree(31, 2);
        let r = run(&t, 0, &PregelConfig::single_worker());
        assert_eq!(r.stats.total_messages(), 2 * 30);
    }

    #[test]
    fn parallel_matches_serial() {
        let t = generators::random_tree(80, 5);
        let a = run(&t, 0, &PregelConfig::single_worker());
        let b = run(&t, 0, &PregelConfig::default().with_workers(4));
        assert_eq!(a.tour, b.tour);
    }

    #[test]
    fn tour_from_any_root() {
        let t = generators::random_tree(30, 7);
        for root in [0u32, 5, 29] {
            let vc = run(&t, root, &PregelConfig::single_worker());
            let sq = vcgp_sequential::tree::euler_tour(&t, root);
            assert_eq!(vc.tour, sq.tour, "root {root}");
        }
    }
}
