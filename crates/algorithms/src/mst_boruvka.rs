//! Row 11: minimum cost spanning tree — the vertex-centric Borůvka of
//! Salihoglu & Widom \[20\] after Chung & Condon \[4\] (§3.5, Figure 5).
//!
//! Each Borůvka iteration runs four stages on the current contracted graph
//! (whose edge lists live in vertex state):
//!
//! 1. **Min-edge picking** — every vertex picks its lightest incident edge
//!    (ties by the canonical original edge) and adds it to the MST. The
//!    picked pointers form *conjoined trees*: two trees whose roots are
//!    joined by a 2-cycle at the component's lightest edge.
//! 2. **Supervertex finding** — mutual pings discover the 2-cycle; its
//!    smaller endpoint becomes the supervertex; everyone else resolves its
//!    supervertex by simple pointer jumping (`O(log n)` ask/answer rounds).
//! 3. **Edge cleaning and relabeling** — endpoints are renamed to
//!    supervertices, self-loops dropped, parallel edges reduced to the
//!    lightest, and each sub-vertex ships its edges to its supervertex,
//!    then retires.
//! 4. The merged supervertices repeat from stage 1 until no edges remain.
//!
//! `O(log n)` iterations of `O(δ + log n)` supersteps with `O(m)` messages
//! each — `O(m δ log n)`-ish time-processor product versus Kruskal/Prim
//! (and Chazelle's `O(m α)` in the paper): "more work: yes", not BPPA
//! (supervertices exceed their degree bounds after contraction).

use vcgp_graph::{Graph, VertexId, INVALID_VERTEX};
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Phases (global slot 0).
mod phase {
    pub const PICK: i64 = 0;
    pub const CYCLE: i64 = 1;
    pub const JUMP_A: i64 = 2;
    pub const JUMP_B: i64 = 3;
    pub const LABEL: i64 = 4;
    pub const REWRITE: i64 = 5;
    pub const MERGE: i64 = 6;
}

/// One edge of the contracted graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CEdge {
    /// Current (contracted) target vertex.
    to: VertexId,
    /// Weight.
    w: f64,
    /// Original endpoints (canonical, `ou < ov`) for MST output.
    ou: VertexId,
    ov: VertexId,
}

impl CEdge {
    /// Globally-consistent comparison key: weight, then original edge.
    fn key(&self) -> (f64, VertexId, VertexId) {
        (self.w, self.ou, self.ov)
    }
}

/// Per-vertex Borůvka state.
#[derive(Debug, Clone, Default)]
pub struct BoruvkaState {
    /// Edge list of the contracted graph (alive vertices only).
    edges: Vec<CEdge>,
    /// Picked pointer / pointer-jumping cursor.
    pointer: VertexId,
    /// Resolved supervertex of this iteration's conjoined tree.
    supervertex: VertexId,
    /// Whether the supervertex is resolved.
    resolved: bool,
    /// Contracted-graph membership; sub-vertices retire after shipping.
    alive: bool,
    /// Original MST edges picked by this vertex over all iterations.
    pub picked: Vec<(VertexId, VertexId, f64)>,
}

impl StateSize for BoruvkaState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.edges.len() * std::mem::size_of::<CEdge>()
            + self.picked.len() * 16
    }
}

#[derive(Debug, Clone)]
enum Msg {
    /// "I picked you" (sender id).
    Ping(VertexId),
    /// Pointer-jump question (sender id).
    Ask(VertexId),
    /// Pointer-jump answer: the receiver's pointer and whether the sender
    /// of the answer is a resolved supervertex.
    Answer {
        ptr: VertexId,
        is_super: bool,
    },
    /// Relabeling announcement: `from`'s supervertex is `sv`.
    Label {
        from: VertexId,
        sv: VertexId,
    },
    /// Edges shipped to the supervertex.
    Ship(Vec<CEdge>),
}

struct Boruvka;

impl VertexProgram for Boruvka {
    type Value = BoruvkaState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        if !ctx.value().alive {
            return;
        }
        let me = ctx.id();
        match ctx.global(0).as_i64() {
            phase::PICK => {
                if ctx.value().edges.is_empty() {
                    // Finished component: stays alive but inert.
                    return;
                }
                ctx.charge(ctx.value().edges.len() as u64);
                let best = *ctx
                    .value()
                    .edges
                    .iter()
                    .min_by(|a, b| a.key().partial_cmp(&b.key()).expect("weights are finite"))
                    .expect("nonempty edge list");
                let state = ctx.value_mut();
                state.pointer = best.to;
                state.resolved = false;
                state.supervertex = INVALID_VERTEX;
                if !state.picked.contains(&(best.ou, best.ov, best.w)) {
                    state.picked.push((best.ou, best.ov, best.w));
                }
                ctx.aggregate(0, AggValue::Bool(true));
                ctx.send(best.to, Msg::Ping(me));
            }
            phase::CYCLE => {
                if ctx.value().edges.is_empty() {
                    return;
                }
                let pointer = ctx.value().pointer;
                let mutual = messages
                    .iter()
                    .any(|m| matches!(m, Msg::Ping(u) if *u == pointer));
                if mutual {
                    // This vertex sits on the conjoined tree's 2-cycle.
                    let sv = me.min(pointer);
                    let state = ctx.value_mut();
                    state.supervertex = sv;
                    state.pointer = sv;
                    state.resolved = true;
                }
            }
            phase::JUMP_A => {
                if ctx.value().edges.is_empty() {
                    return;
                }
                if !ctx.value().resolved {
                    for m in messages {
                        if let Msg::Answer { ptr, is_super } = *m {
                            if is_super {
                                let state = ctx.value_mut();
                                state.supervertex = state.pointer;
                                state.resolved = true;
                            } else {
                                ctx.value_mut().pointer = ptr;
                            }
                        }
                    }
                }
                if !ctx.value().resolved {
                    ctx.aggregate(1, AggValue::Bool(true));
                    let target = ctx.value().pointer;
                    ctx.send(target, Msg::Ask(me));
                }
            }
            phase::JUMP_B => {
                let ptr = ctx.value().pointer;
                let is_super = ctx.value().resolved && ctx.value().supervertex == me;
                for m in messages {
                    if let Msg::Ask(u) = *m {
                        ctx.send(u, Msg::Answer { ptr, is_super });
                    }
                }
            }
            phase::LABEL => {
                if ctx.value().edges.is_empty() {
                    return;
                }
                let sv = ctx.value().supervertex;
                debug_assert!(ctx.value().resolved);
                let mut targets: Vec<VertexId> =
                    ctx.value().edges.iter().map(|e| e.to).collect();
                targets.sort_unstable();
                targets.dedup();
                ctx.charge(targets.len() as u64);
                for t in targets {
                    ctx.send(t, Msg::Label { from: me, sv });
                }
            }
            phase::REWRITE => {
                if ctx.value().edges.is_empty() {
                    return;
                }
                let mut label_of = std::collections::HashMap::new();
                for m in messages {
                    if let Msg::Label { from, sv } = *m {
                        label_of.insert(from, sv);
                    }
                }
                let my_sv = ctx.value().supervertex;
                let mut rewritten: Vec<CEdge> = Vec::new();
                let edges = std::mem::take(&mut ctx.value_mut().edges);
                ctx.charge(edges.len() as u64);
                for mut e in edges {
                    let target_sv = label_of[&e.to];
                    if target_sv == my_sv {
                        continue; // self-loop after contraction
                    }
                    e.to = target_sv;
                    rewritten.push(e);
                }
                if my_sv == me {
                    ctx.value_mut().edges = rewritten;
                } else {
                    if !rewritten.is_empty() {
                        ctx.send(my_sv, Msg::Ship(rewritten));
                    }
                    ctx.value_mut().alive = false;
                }
            }
            phase::MERGE => {
                // Only supervertices have work here.
                let mut merged = std::mem::take(&mut ctx.value_mut().edges);
                for m in messages {
                    if let Msg::Ship(edges) = m {
                        ctx.charge(edges.len() as u64);
                        merged.extend_from_slice(edges);
                    }
                }
                // Keep the lightest edge per neighbor supervertex.
                merged.sort_by(|a, b| {
                    (a.to, a.key())
                        .partial_cmp(&(b.to, b.key()))
                        .expect("weights are finite")
                });
                ctx.charge(merged.len() as u64);
                merged.dedup_by_key(|e| e.to);
                ctx.value_mut().edges = merged;
            }
            other => unreachable!("invalid Borůvka phase {other}"),
        }
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![
            AggregatorDef::new("any_edges", AggOp::Or),
            AggregatorDef::new("unresolved", AggOp::Or),
        ]
    }

    fn globals(&self) -> Vec<AggValue> {
        vec![AggValue::I64(phase::PICK)]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        let current = master.global(0).as_i64();
        let next = match current {
            phase::PICK => {
                if !master.read_aggregate(0).as_bool() {
                    master.halt();
                    return;
                }
                phase::CYCLE
            }
            phase::CYCLE => phase::JUMP_A,
            phase::JUMP_A => {
                if master.read_aggregate(1).as_bool() {
                    phase::JUMP_B
                } else {
                    phase::LABEL
                }
            }
            phase::JUMP_B => phase::JUMP_A,
            phase::LABEL => phase::REWRITE,
            phase::REWRITE => phase::MERGE,
            phase::MERGE => phase::PICK,
            other => unreachable!("invalid Borůvka phase {other}"),
        };
        master.set_global(0, AggValue::I64(next));
        master.reactivate_all();
    }
}

/// Result of vertex-centric MST.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// MST (forest) edges, canonical `(u, v, w)` with `u < v`, sorted.
    pub edges: Vec<(VertexId, VertexId, f64)>,
    /// Total weight.
    pub total_weight: f64,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs Borůvka on a weighted undirected graph (parallel edges and
/// self-loops are ignored; duplicate edges keep the lightest copy).
pub fn run(graph: &Graph, config: &PregelConfig) -> MstResult {
    assert!(!graph.is_directed(), "MST runs on undirected graphs");
    let init: Vec<BoruvkaState> = graph
        .vertices()
        .map(|v| {
            let mut edges: Vec<CEdge> = graph
                .out_edges(v)
                .filter(|&(u, _)| u != v)
                .map(|(u, w)| CEdge {
                    to: u,
                    w,
                    ou: v.min(u),
                    ov: v.max(u),
                })
                .collect();
            edges.sort_by(|a, b| {
                (a.to, a.key())
                    .partial_cmp(&(b.to, b.key()))
                    .expect("weights are finite")
            });
            edges.dedup_by_key(|e| e.to);
            BoruvkaState {
                edges,
                pointer: INVALID_VERTEX,
                supervertex: INVALID_VERTEX,
                resolved: false,
                alive: true,
                picked: Vec::new(),
            }
        })
        .collect();
    let (values, stats) = vcgp_pregel::run_with_values(&Boruvka, graph, init, config);
    let mut edges: Vec<(VertexId, VertexId, f64)> = values
        .into_iter()
        .flat_map(|s| s.picked)
        .collect();
    edges.sort_by_key(|a| (a.0, a.1));
    edges.dedup_by_key(|e| (e.0, e.1));
    let total_weight = edges.iter().map(|e| e.2).sum();
    MstResult {
        edges,
        total_weight,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    fn weighted(n: usize, m: usize, seed: u64) -> Graph {
        generators::with_random_weights(
            &generators::gnm_connected(n, m, seed),
            0.0,
            1.0,
            seed,
            true,
        )
    }

    #[test]
    fn matches_kruskal_exactly() {
        for seed in 0..6 {
            let g = weighted(60, 150, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = vcgp_sequential::mst::mst_kruskal(&g);
            assert_eq!(vc.edges, sq.edges, "seed {seed}");
            assert!((vc.total_weight - sq.total_weight).abs() < 1e-9);
        }
    }

    #[test]
    fn figure5_conjoined_tree_example() {
        // A 6-vertex example where min-edge picking produces a conjoined
        // tree with supervertex = the smaller cycle endpoint.
        let mut b = vcgp_graph::GraphBuilder::new(6);
        b.add_weighted_edge(0, 1, 4.0);
        b.add_weighted_edge(1, 2, 3.0);
        b.add_weighted_edge(2, 3, 1.0); // the mutual minimum: 2-cycle 2<->3
        b.add_weighted_edge(3, 4, 2.0);
        b.add_weighted_edge(4, 5, 5.0);
        let g = b.build();
        let vc = run(&g, &PregelConfig::single_worker());
        // A tree input is its own MST.
        assert_eq!(vc.edges.len(), 5);
        assert!((vc.total_weight - 15.0).abs() < 1e-9);
    }

    #[test]
    fn spanning_forest_on_disconnected() {
        let mut b = vcgp_graph::GraphBuilder::new(6);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(1, 2, 2.0);
        b.add_weighted_edge(0, 2, 3.0);
        b.add_weighted_edge(3, 4, 4.0);
        b.add_weighted_edge(4, 5, 5.0);
        let g = b.build();
        let vc = run(&g, &PregelConfig::single_worker());
        assert_eq!(vc.edges.len(), 4);
        assert!((vc.total_weight - 12.0).abs() < 1e-9);
    }

    #[test]
    fn logarithmic_iterations() {
        // Each iteration at least halves the vertex count.
        let g = weighted(256, 1024, 3);
        let vc = run(&g, &PregelConfig::single_worker());
        let sq = vcgp_sequential::mst::mst_kruskal(&g);
        assert_eq!(vc.edges, sq.edges);
        // PICK appears once per iteration; supersteps stay well under n.
        assert!(
            vc.stats.supersteps() < 256,
            "{} supersteps",
            vc.stats.supersteps()
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let g = weighted(100, 300, 9);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.stats.supersteps(), b.stats.supersteps());
    }

    #[test]
    fn single_vertex_graph() {
        let g = vcgp_graph::GraphBuilder::new(1).build();
        let vc = run(&g, &PregelConfig::single_worker());
        assert!(vc.edges.is_empty());
        assert_eq!(vc.total_weight, 0.0);
    }

    #[test]
    fn parallel_and_duplicate_edges_tolerated() {
        let mut b = vcgp_graph::GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.0);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(1, 2, 3.0);
        let g = b.build();
        let vc = run(&g, &PregelConfig::single_worker());
        assert_eq!(vc.edges.len(), 2);
        assert!((vc.total_weight - 4.0).abs() < 1e-9);
    }
}
