//! Row 9: pre- and post-order tree traversal via Euler tour + list ranking
//! (§3.4.2).
//!
//! Pipeline (each stage a Pregel job; stats are merged):
//!
//! 1. Euler tour (row 8's two-superstep program);
//! 2. list ranking over the tour arcs with `val = 1` → tour positions;
//! 3. a two-superstep BPPA marking each arc forward/backward by comparing
//!    its position with its twin's;
//! 4. list ranking with `val = 1` on forward arcs → `pre(v)`;
//! 5. list ranking with `val = 1` on backward arcs → `post(v)`.
//!
//! The pipeline additionally yields each vertex's parent and subtree size
//! `nd(v)` (from the distance between the twin arcs' tour positions), which
//! the row 5 BCC pipeline consumes. BPPA throughout, but the list-ranking
//! stages do `Θ(n log n)` total work versus the sequential DFS's `O(n)` —
//! the paper's "more work: yes / BPPA: yes" row.

use crate::{euler_tour, list_ranking};
use std::collections::HashMap;
use vcgp_graph::{Graph, GraphBuilder, VertexId, INVALID_VERTEX};
use vcgp_pregel::{Context, PregelConfig, RunStats, StateSize, VertexProgram};

/// Result of the traversal pipeline.
#[derive(Debug, Clone)]
pub struct TreeOrderResult {
    /// Pre-order number per vertex (root = 0).
    pub pre: Vec<u32>,
    /// Post-order number per vertex (root = n-1).
    pub post: Vec<u32>,
    /// Subtree size per vertex (root = n).
    pub nd: Vec<u32>,
    /// Parent per vertex (`INVALID_VERTEX` at the root).
    pub parent: Vec<VertexId>,
    /// Merged instrumentation of all pipeline stages.
    pub stats: RunStats,
}

/// Arc-marking state for stage 3.
#[derive(Debug, Clone, Default)]
struct MarkState {
    /// This arc's tour position (1-based).
    rank: u64,
    /// Twin arc id.
    twin: u32,
    /// Set in superstep 1: `rank < rank(twin)`.
    forward: bool,
}

impl StateSize for MarkState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

struct MarkForward;

impl VertexProgram for MarkForward {
    type Value = MarkState;
    type Message = u64;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[u64]) {
        if ctx.superstep() == 0 {
            let (rank, twin) = (ctx.value().rank, ctx.value().twin);
            ctx.send(twin, rank);
        } else {
            let twin_rank = messages[0];
            let state = ctx.value_mut();
            state.forward = state.rank < twin_rank;
        }
        ctx.vote_to_halt();
    }
}

/// Runs the full pre/post-order pipeline on a tree rooted at `root`.
pub fn run(graph: &Graph, root: VertexId, config: &PregelConfig) -> TreeOrderResult {
    let n = graph.num_vertices();
    assert!(
        vcgp_graph::traversal::is_tree(graph),
        "tree_order requires a tree"
    );
    if n == 1 {
        return TreeOrderResult {
            pre: vec![0],
            post: vec![0],
            nd: vec![1],
            parent: vec![INVALID_VERTEX],
            stats: RunStats::empty(config.num_workers),
        };
    }

    // Stage 1: Euler tour.
    let tour = euler_tour::run(graph, root, config);
    let mut stats = tour.stats.clone();

    // Arc indexing: enumerate all 2(n-1) directed arcs.
    let mut arc_id: HashMap<(VertexId, VertexId), u32> = HashMap::with_capacity(2 * (n - 1));
    let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * (n - 1));
    for u in graph.vertices() {
        for &v in graph.out_neighbors(u) {
            arc_id.insert((u, v), arcs.len() as u32);
            arcs.push((u, v));
        }
    }
    let num_arcs = arcs.len();
    // Predecessor pointers along the tour; the start arc becomes the head.
    let start = arc_id[&(root, graph.out_neighbors(root)[0])];
    let mut preds = vec![INVALID_VERTEX; num_arcs];
    for (a, &(u, v)) in arcs.iter().enumerate() {
        let next = arc_id[&(v, tour.next_of[u as usize][&v])];
        if next != start {
            preds[next as usize] = a as u32;
        }
    }

    // Stage 2: tour positions.
    let positions = list_ranking::run(&preds, &vec![1u64; num_arcs], config);
    stats.merge(positions.stats.clone());

    // Stage 3: forward/backward marking (two-superstep BPPA on an arc
    // "graph" — arcs exchange positions with their twins).
    let arc_graph = GraphBuilder::new(num_arcs).build();
    let init: Vec<MarkState> = arcs
        .iter()
        .enumerate()
        .map(|(a, &(u, v))| MarkState {
            rank: positions.sums[a],
            twin: arc_id[&(v, u)],
            forward: false,
        })
        .collect();
    let (marks, mark_stats) = vcgp_pregel::run_with_values(&MarkForward, &arc_graph, init, config);
    stats.merge(mark_stats);

    // Stages 4-5: rank forward and backward indicator values.
    let fwd_vals: Vec<u64> = marks.iter().map(|m| u64::from(m.forward)).collect();
    let bwd_vals: Vec<u64> = marks.iter().map(|m| u64::from(!m.forward)).collect();
    let pre_rank = list_ranking::run(&preds, &fwd_vals, config);
    stats.merge(pre_rank.stats.clone());
    let post_rank = list_ranking::run(&preds, &bwd_vals, config);
    stats.merge(post_rank.stats.clone());

    // Assemble per-vertex outputs.
    let mut pre = vec![u32::MAX; n];
    let mut post = vec![u32::MAX; n];
    let mut nd = vec![0u32; n];
    let mut parent = vec![INVALID_VERTEX; n];
    pre[root as usize] = 0;
    post[root as usize] = n as u32 - 1;
    nd[root as usize] = n as u32;
    for (a, &(u, v)) in arcs.iter().enumerate() {
        if marks[a].forward {
            // Forward arc (u, v): u = parent(v).
            pre[v as usize] = pre_rank.sums[a] as u32;
            parent[v as usize] = u;
            let back = arc_id[&(v, u)] as usize;
            post[v as usize] = post_rank.sums[back] as u32 - 1;
            nd[v as usize] =
                (positions.sums[back] - positions.sums[a]).div_ceil(2) as u32;
        }
    }
    TreeOrderResult {
        pre,
        post,
        nd,
        parent,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_sequential_orders() {
        for seed in 0..6 {
            let t = generators::random_tree(60, seed);
            let vc = run(&t, 0, &PregelConfig::single_worker());
            let sq = vcgp_sequential::tree::tree_order(&t, 0);
            assert_eq!(vc.pre, sq.pre, "pre mismatch, seed {seed}");
            assert_eq!(vc.post, sq.post, "post mismatch, seed {seed}");
        }
    }

    #[test]
    fn figure4_numbers() {
        // The paper's Figure 4(a) tree.
        let mut b = vcgp_graph::GraphBuilder::new(7);
        b.add_edge(0, 1);
        b.add_edge(0, 5);
        b.add_edge(0, 6);
        b.add_edge(1, 2);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        let t = b.build();
        let r = run(&t, 0, &PregelConfig::single_worker());
        assert_eq!(r.pre, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(r.post, vec![6, 3, 0, 1, 2, 4, 5]);
        assert_eq!(r.nd, vec![7, 4, 1, 1, 1, 1, 1]);
        assert_eq!(r.parent, vec![INVALID_VERTEX, 0, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn nd_is_subtree_size() {
        let t = generators::random_tree(50, 4);
        let r = run(&t, 0, &PregelConfig::single_worker());
        // Sum of nd over children + 1 = nd of parent.
        let mut children_sum = [0u32; 50];
        for v in 1..50u32 {
            children_sum[r.parent[v as usize] as usize] += r.nd[v as usize];
        }
        for v in 0..50u32 {
            assert_eq!(r.nd[v as usize], children_sum[v as usize] + 1);
        }
    }

    #[test]
    fn pre_interval_contains_subtree() {
        let t = generators::random_tree(40, 8);
        let r = run(&t, 0, &PregelConfig::single_worker());
        for v in 1..40u32 {
            let p = r.parent[v as usize];
            let (lo, len) = (r.pre[p as usize], r.nd[p as usize]);
            assert!(
                (lo..lo + len).contains(&r.pre[v as usize]),
                "child pre-order outside parent's interval"
            );
        }
    }

    #[test]
    fn logarithmic_supersteps_on_paths() {
        // A path tree is the deepest case; the pipeline must stay
        // polylogarithmic (this is what makes row 9 BPPA).
        let t = generators::path(512);
        let r = run(&t, 0, &PregelConfig::single_worker());
        assert!(
            r.stats.supersteps() <= 100,
            "{} supersteps on a 512-path",
            r.stats.supersteps()
        );
    }

    #[test]
    fn singleton_tree() {
        let t = generators::path(1);
        let r = run(&t, 0, &PregelConfig::single_worker());
        assert_eq!(r.pre, vec![0]);
        assert_eq!(r.post, vec![0]);
        assert_eq!(r.nd, vec![1]);
    }

    #[test]
    fn parallel_matches_serial() {
        let t = generators::random_tree(90, 2);
        let a = run(&t, 0, &PregelConfig::single_worker());
        let b = run(&t, 0, &PregelConfig::default().with_workers(4));
        assert_eq!(a.pre, b.pre);
        assert_eq!(a.post, b.post);
        assert_eq!(a.nd, b.nd);
    }
}
