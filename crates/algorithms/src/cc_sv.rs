//! Row 4: Shiloach-Vishkin connected components (§3.3.2, Figures 2-3),
//! following Yan et al.'s Pregel formulation \[25\].
//!
//! Every vertex `u` maintains a pointer `D[u]`, initially `u` (a self-loop
//! root). Each round performs (1) *tree hooking* — for an edge `(u, v)`
//! whose endpoint's parent `w = D[u]` is a root, hook `w` under `D[v]`
//! when `D[v] < D[u]`; (2) *star hooking* — the same for endpoints sitting
//! in stars; (3) *shortcutting* — `D[v] = D[D[v]]`. Pointer values only
//! decrease, and the algorithm stops after a full round without changes,
//! when every component has collapsed into a star rooted at its smallest
//! vertex. `O(log n)` rounds, each a fixed cycle of 16 supersteps realizing
//! the request/reply message patterns.
//!
//! Not BPPA: a root can receive hook proposals (and pointer-jump requests)
//! from far more than `d(v)` vertices in one superstep. The per-superstep
//! totals are `O(n + m)` messages, giving the paper's
//! `O((m + n) log n)` time-processor product.
//!
//! Each successful hook crossed one graph edge; recording those edges
//! yields a spanning forest — exactly the row 10 algorithm \[22, 25\].

use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{
    AggOp, AggValue, AggregatorDef, Context, MasterContext, PregelConfig, RunStats, StateSize,
    VertexProgram,
};

/// Phases of one S-V round (one superstep each).
mod phase {
    pub const TREE_REQ: i64 = 0;
    pub const TREE_REPLY: i64 = 1;
    pub const TREE_EDGE: i64 = 2;
    pub const TREE_HOOK_SEND: i64 = 3;
    pub const TREE_HOOK_APPLY: i64 = 4;
    pub const STAR_REQ: i64 = 5;
    pub const STAR_REPLY: i64 = 6;
    pub const STAR_COMPUTE: i64 = 7;
    pub const STAR_SPREAD: i64 = 8;
    pub const STAR_ANSWER: i64 = 9;
    pub const STAR_EDGE: i64 = 10;
    pub const STAR_HOOK_SEND: i64 = 11;
    pub const STAR_HOOK_APPLY: i64 = 12;
    pub const SHORT_REQ: i64 = 13;
    pub const SHORT_REPLY: i64 = 14;
    pub const SHORT_APPLY: i64 = 15;
    pub const COUNT: i64 = 16;
}

/// Per-vertex S-V state.
#[derive(Debug, Clone)]
pub struct SvState {
    /// The pointer `D[v]`.
    pub d: VertexId,
    /// Grandparent `D[D[v]]` learned in the latest request/reply.
    gp: VertexId,
    /// Whether this vertex currently believes it is in a star.
    star: bool,
    /// The graph edge whose hook this vertex (as a root) accepted, if any.
    pub tree_edge: Option<(VertexId, VertexId)>,
}

impl StateSize for SvState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// S-V messages.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// "Send me your D" (payload: requester).
    Req(VertexId),
    /// Reply carrying the receiver's parent's D.
    ParentD(VertexId),
    /// Edge exchange: sender's id, sender's `D`, and a flag — "my parent is
    /// a root" in the tree phase, "I am in a star" in the star phase.
    EdgeInfo {
        from: VertexId,
        d: VertexId,
        flag: bool,
    },
    /// Star falsification.
    NotStar,
    /// "Are you in a star?" (payload: requester).
    StarAsk(VertexId),
    /// Star status reply.
    StarAns(bool),
    /// Hook proposal: point the receiving root at `p`; `(eu, ev)` is the
    /// graph edge that justified the hook (for spanning-tree recording).
    Hook {
        p: VertexId,
        eu: VertexId,
        ev: VertexId,
    },
}

struct ShiloachVishkin;

/// Folds hook proposals deterministically: smallest proposed pointer, ties
/// broken by the canonical edge.
fn best_hook(messages: &[Msg]) -> Option<(VertexId, (VertexId, VertexId))> {
    let mut best: Option<(VertexId, (VertexId, VertexId))> = None;
    for m in messages {
        if let Msg::Hook { p, eu, ev } = *m {
            let edge = (eu.min(ev), eu.max(ev));
            let candidate = (p, edge);
            best = Some(match best {
                None => candidate,
                Some(cur) if candidate < cur => candidate,
                Some(cur) => cur,
            });
        }
    }
    best
}

impl VertexProgram for ShiloachVishkin {
    type Value = SvState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        let me = ctx.id();
        match ctx.global(0).as_i64() {
            phase::TREE_REQ | phase::STAR_REQ | phase::SHORT_REQ => {
                let d = ctx.value().d;
                ctx.send(d, Msg::Req(me));
            }
            phase::TREE_REPLY | phase::STAR_REPLY | phase::SHORT_REPLY => {
                let d = ctx.value().d;
                for m in messages {
                    if let Msg::Req(u) = *m {
                        ctx.send(u, Msg::ParentD(d));
                    }
                }
            }
            phase::TREE_EDGE => {
                for m in messages {
                    if let Msg::ParentD(gp) = *m {
                        ctx.value_mut().gp = gp;
                    }
                }
                let (d, gp) = (ctx.value().d, ctx.value().gp);
                ctx.send_to_all_out_neighbors(Msg::EdgeInfo {
                    from: me,
                    d,
                    flag: gp == d, // D[me] is a root
                });
            }
            phase::TREE_HOOK_SEND | phase::STAR_HOOK_SEND => {
                let my_d = ctx.value().d;
                for m in messages {
                    if let Msg::EdgeInfo { from, d: w, flag } = *m {
                        if flag && my_d < w {
                            ctx.send(
                                w,
                                Msg::Hook {
                                    p: my_d,
                                    eu: from,
                                    ev: me,
                                },
                            );
                        }
                    }
                }
            }
            phase::TREE_HOOK_APPLY | phase::STAR_HOOK_APPLY => {
                if ctx.value().d == me {
                    if let Some((p, edge)) = best_hook(messages) {
                        let state = ctx.value_mut();
                        state.d = p;
                        state.tree_edge = Some(edge);
                        ctx.aggregate(0, AggValue::Bool(true));
                    }
                }
            }
            phase::STAR_COMPUTE => {
                for m in messages {
                    if let Msg::ParentD(gp) = *m {
                        ctx.value_mut().gp = gp;
                    }
                }
                let (d, gp) = (ctx.value().d, ctx.value().gp);
                if gp != d {
                    ctx.value_mut().star = false;
                    ctx.send(d, Msg::NotStar);
                    ctx.send(gp, Msg::NotStar);
                } else {
                    ctx.value_mut().star = true;
                }
            }
            phase::STAR_SPREAD => {
                if messages.iter().any(|m| matches!(m, Msg::NotStar)) {
                    ctx.value_mut().star = false;
                }
                let d = ctx.value().d;
                ctx.send(d, Msg::StarAsk(me));
            }
            phase::STAR_ANSWER => {
                let star = ctx.value().star;
                for m in messages {
                    if let Msg::StarAsk(u) = *m {
                        ctx.send(u, Msg::StarAns(star));
                    }
                }
            }
            phase::STAR_EDGE => {
                for m in messages {
                    if let Msg::StarAns(s) = *m {
                        let state = ctx.value_mut();
                        state.star = state.star && s;
                    }
                }
                let (d, star) = (ctx.value().d, ctx.value().star);
                ctx.send_to_all_out_neighbors(Msg::EdgeInfo {
                    from: me,
                    d,
                    flag: star,
                });
            }
            phase::SHORT_APPLY => {
                let mut changed = false;
                for m in messages {
                    if let Msg::ParentD(gp) = *m {
                        if gp != ctx.value().d {
                            ctx.value_mut().d = gp;
                            changed = true;
                        }
                    }
                }
                if changed {
                    ctx.aggregate(0, AggValue::Bool(true));
                }
            }
            other => unreachable!("invalid S-V phase {other}"),
        }
    }

    fn aggregators(&self) -> Vec<AggregatorDef> {
        vec![AggregatorDef::new("changed", AggOp::Or)]
    }

    fn globals(&self) -> Vec<AggValue> {
        vec![
            AggValue::I64(phase::TREE_REQ), // current phase
            AggValue::Bool(false),          // round had a change
        ]
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        let phase = master.global(0).as_i64();
        let round_changed =
            master.global(1).as_bool() || master.read_aggregate(0).as_bool();
        master.set_global(1, AggValue::Bool(round_changed));
        if phase == phase::SHORT_APPLY {
            if !round_changed {
                master.halt();
                return;
            }
            master.set_global(0, AggValue::I64(phase::TREE_REQ));
            master.set_global(1, AggValue::Bool(false));
        } else {
            master.set_global(0, AggValue::I64((phase + 1) % phase::COUNT));
        }
        master.reactivate_all();
    }
}

/// Result of S-V connected components.
#[derive(Debug, Clone)]
pub struct SvResult {
    /// Final pointer per vertex: the smallest vertex id of its component.
    pub components: Vec<VertexId>,
    /// The spanning-forest edges recorded by successful hooks (canonical
    /// `(min, max)` form, sorted) — the row 10 output.
    pub tree_edges: Vec<(VertexId, VertexId)>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs Shiloach-Vishkin on an undirected graph.
pub fn run(graph: &Graph, config: &PregelConfig) -> SvResult {
    assert!(!graph.is_directed(), "S-V runs on undirected graphs");
    let init: Vec<SvState> = graph
        .vertices()
        .map(|v| SvState {
            d: v,
            gp: v,
            star: false,
            tree_edge: None,
        })
        .collect();
    let (values, stats) = vcgp_pregel::run_with_values(&ShiloachVishkin, graph, init, config);
    let mut tree_edges: Vec<(VertexId, VertexId)> =
        values.iter().filter_map(|s| s.tree_edge).collect();
    tree_edges.sort_unstable();
    SvResult {
        components: values.into_iter().map(|s| s.d).collect(),
        tree_edges,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn matches_sequential_cc() {
        for seed in 0..6 {
            let g = generators::gnm(70, 100, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = vcgp_sequential::connectivity::cc(&g);
            assert_eq!(vc.components, sq.components, "seed {seed}");
        }
    }

    #[test]
    fn logarithmic_rounds_on_paths() {
        // Hash-Min needs Θ(n) supersteps on a path; S-V needs O(log n)
        // rounds of 16 supersteps — the whole point of rows 3 vs 4.
        let g = generators::path(1024);
        let r = run(&g, &PregelConfig::single_worker());
        assert!(r.components.iter().all(|&c| c == 0));
        let rounds = r.stats.supersteps() / 16;
        assert!(rounds <= 14, "{rounds} rounds on a 1024-path");
    }

    #[test]
    fn supersteps_grow_logarithmically() {
        let s1 = run(&generators::path(256), &PregelConfig::single_worker())
            .stats
            .supersteps();
        let s2 = run(&generators::path(4096), &PregelConfig::single_worker())
            .stats
            .supersteps();
        assert!(
            s2 <= s1 + 16 * 6,
            "16x size must cost only ~4 extra rounds: {s1} -> {s2}"
        );
    }

    #[test]
    fn tree_edges_form_spanning_forest() {
        for seed in 0..5 {
            let g = generators::gnm(60, 90, seed);
            let r = run(&g, &PregelConfig::single_worker());
            let (_, num_components) = vcgp_graph::traversal::connected_components(&g);
            assert_eq!(
                r.tree_edges.len(),
                60 - num_components,
                "seed {seed}: wrong forest size"
            );
            // Every recorded edge is a real edge, and the forest is acyclic
            // and spans: rebuilding must reproduce the component structure.
            let mut b = GraphBuilder::new(60);
            for &(u, v) in &r.tree_edges {
                assert!(g.has_edge(u, v), "seed {seed}: fabricated edge");
                b.add_edge(u, v);
            }
            let forest = b.build();
            let (fc, fcount) = vcgp_graph::traversal::connected_components(&forest);
            assert_eq!(fcount, num_components, "seed {seed}");
            assert_eq!(
                fc,
                vcgp_graph::traversal::connected_components(&g).0,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn single_vertex_and_isolated() {
        let g = GraphBuilder::new(3).build();
        let r = run(&g, &PregelConfig::single_worker());
        assert_eq!(r.components, vec![0, 1, 2]);
        assert!(r.tree_edges.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::gnm(120, 200, 11);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(a.components, b.components);
        assert_eq!(a.tree_edges, b.tree_edges);
        assert_eq!(a.stats.supersteps(), b.stats.supersteps());
    }

    #[test]
    fn root_fanin_violates_bppa() {
        // On a star graph the root receives ~n pointer-jump requests in one
        // superstep — the BPPA violation the paper calls out for S-V.
        let g = generators::star(64);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let r = run(&g, &cfg);
        let pv = r.stats.per_vertex.as_ref().unwrap();
        let max_in = *pv.max_received.iter().max().unwrap();
        assert!(max_in >= 63, "expected hub fan-in, got {max_in}");
    }
}
