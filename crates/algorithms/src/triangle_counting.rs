//! §3.8 demonstrator: triangle counting and local clustering coefficients
//! in the vertex-centric model.
//!
//! The paper singles out neighborhood-centric analytics ("local clustering
//! coefficient, triangle and motifs counting") as ill-suited to the
//! think-like-a-vertex model "due to the communication overhead, network
//! traffic, and the large amount of memory required to construct multi-hop
//! neighborhood in each vertex's local state" \[17\]. This implementation
//! makes that concrete: every vertex ships its forward adjacency list to
//! its forward neighbors — `Θ(Σ_v fwd(v)²)` message *volume* and
//! `Θ(d(v)²)` per-vertex traffic in the worst case — where the sequential
//! forward intersection does `O(m^{3/2})` work with `O(m)` memory.

use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{Context, PregelConfig, RunStats, StateSize, VertexProgram};

/// Per-vertex state: accumulated triangle count.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriState {
    /// Triangles incident to this vertex.
    pub triangles: u64,
}

impl StateSize for TriState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[derive(Debug, Clone)]
enum Msg {
    /// The sender's forward adjacency (sender, sorted forward neighbors).
    Fwd(VertexId, Vec<VertexId>),
    /// One triangle credit.
    Credit,
}

struct Triangles;

/// Forward order: toward higher `(degree, id)` — the same orientation the
/// sequential baseline uses.
fn forward(g: &Graph, v: VertexId) -> Vec<VertexId> {
    let rank = |x: VertexId| (g.out_degree(x), x);
    g.out_neighbors(v)
        .iter()
        .copied()
        .filter(|&u| u != v && rank(u) > rank(v))
        .collect()
}

impl VertexProgram for Triangles {
    type Value = TriState;
    type Message = Msg;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Msg]) {
        match ctx.superstep() {
            0 => {
                let me = ctx.id();
                let fwd = forward(ctx.graph(), me);
                ctx.charge(ctx.out_neighbors().len() as u64);
                // Ship the whole forward list to each forward neighbor —
                // the §3.8 neighborhood-materialization cost.
                for &u in &fwd {
                    ctx.charge(fwd.len() as u64);
                    ctx.send(u, Msg::Fwd(me, fwd.clone()));
                }
            }
            1 => {
                let me = ctx.id();
                let mine = forward(ctx.graph(), me);
                ctx.charge(ctx.out_neighbors().len() as u64);
                let mut found = 0u64;
                for m in messages {
                    if let Msg::Fwd(sender, theirs) = m {
                        // Merge-intersect the sender's forward list with
                        // ours: each common vertex closes a triangle
                        // (sender, me, w).
                        let (mut a, mut b) = (0usize, 0usize);
                        while a < mine.len() && b < theirs.len() {
                            ctx.charge(1);
                            match mine[a].cmp(&theirs[b]) {
                                std::cmp::Ordering::Less => a += 1,
                                std::cmp::Ordering::Greater => b += 1,
                                std::cmp::Ordering::Equal => {
                                    found += 1;
                                    ctx.send(*sender, Msg::Credit);
                                    ctx.send(mine[a], Msg::Credit);
                                    a += 1;
                                    b += 1;
                                }
                            }
                        }
                    }
                }
                ctx.value_mut().triangles += found;
            }
            _ => {
                let credits = messages
                    .iter()
                    .filter(|m| matches!(m, Msg::Credit))
                    .count() as u64;
                ctx.value_mut().triangles += credits;
            }
        }
        ctx.vote_to_halt();
    }
}

/// Result of vertex-centric triangle counting.
#[derive(Debug, Clone)]
pub struct TriangleResult {
    /// Triangles incident to each vertex.
    pub per_vertex: Vec<u64>,
    /// Total triangles (each counted once).
    pub total: u64,
    /// Local clustering coefficient per vertex.
    pub clustering: Vec<f64>,
    /// Engine instrumentation.
    pub stats: RunStats,
}

/// Runs vertex-centric triangle counting on an undirected simple graph.
pub fn run(graph: &Graph, config: &PregelConfig) -> TriangleResult {
    assert!(!graph.is_directed(), "triangle counting runs on undirected graphs");
    let (values, stats) = vcgp_pregel::run(&Triangles, graph, config);
    let per_vertex: Vec<u64> = values.into_iter().map(|s| s.triangles).collect();
    let total = per_vertex.iter().sum::<u64>() / 3;
    let clustering = per_vertex
        .iter()
        .enumerate()
        .map(|(v, &t)| {
            let d = graph.out_degree(v as VertexId) as f64;
            if d < 2.0 {
                0.0
            } else {
                2.0 * t as f64 / (d * (d - 1.0))
            }
        })
        .collect();
    TriangleResult {
        per_vertex,
        total,
        clustering,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_sequential_baseline() {
        for seed in 0..5 {
            let g = generators::gnm(50, 180, seed);
            let vc = run(&g, &PregelConfig::single_worker());
            let sq = vcgp_sequential::triangles::triangles(&g);
            assert_eq!(vc.total, sq.total, "seed {seed}");
            assert_eq!(vc.per_vertex, sq.per_vertex, "seed {seed}");
            for (a, b) in vc.clustering.iter().zip(&sq.clustering) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn complete_graph_counts() {
        let vc = run(&generators::complete(7), &PregelConfig::single_worker());
        assert_eq!(vc.total, 35); // C(7,3)
        assert!(vc.per_vertex.iter().all(|&t| t == 15)); // C(6,2)
    }

    #[test]
    fn neighborhood_shipping_blows_up_per_vertex_traffic() {
        // The §3.8 point: per-vertex message volume scales with d², far
        // beyond the O(d) BPPA budget.
        let g = generators::complete(24);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let r = run(&g, &cfg);
        let pv = r.stats.per_vertex.as_ref().unwrap();
        let d = 23u64;
        let max_recv = *pv.max_received.iter().max().unwrap();
        assert!(
            max_recv > 2 * d,
            "expected superlinear fan-in, got {max_recv} (d = {d})"
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let g = generators::gnm(60, 240, 9);
        let a = run(&g, &PregelConfig::single_worker());
        let b = run(&g, &PregelConfig::default().with_workers(4));
        assert_eq!(a.per_vertex, b.per_vertex);
    }

    #[test]
    fn triangle_free_graph() {
        let g = generators::bipartite(20, 20, 80, 3);
        let r = run(&g, &PregelConfig::single_worker());
        assert_eq!(r.total, 0);
    }
}
