//! Row 20: distributed strong simulation (Fard et al. \[5\], after Ma et
//! al. \[11\]).
//!
//! Pipeline: (1) global dual simulation prunes candidates; (2) every vertex
//! floods "vertex cards" (id, label, candidate successors) for `d_Q` hops
//! (`d_Q` = the query's undirected diameter) so each candidate center ends
//! up holding its whole ball's candidate subgraph; (3) each candidate
//! center runs a local dual-simulation fixpoint on its ball and reports the
//! query vertices it matches. The ball flooding is the dominating cost —
//! message volume `O(m · ball)` — reproducing the paper's
//! `O(m² n (n_q + m_q))` time-processor product versus the sequential
//! `O(n (m + n)(m_q + n_q))`.

use crate::dual_simulation;
use std::collections::HashMap;
use vcgp_graph::{Graph, VertexId};
use vcgp_pregel::{Context, MasterContext, PregelConfig, RunStats, StateSize, VertexProgram};

/// A flooded description of one candidate vertex.
#[derive(Debug, Clone)]
pub struct Card {
    id: VertexId,
    /// Out-neighbors that are dual-simulation candidates.
    succs: Vec<VertexId>,
    /// The candidate's global dual-sim match set (a sound upper bound for
    /// the ball-local sets, used to seed the local fixpoint).
    match_set: Vec<VertexId>,
}

impl StateSize for Card {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + (self.succs.len() + self.match_set.len()) * 4
    }
}

/// Per-vertex ball-collection state.
#[derive(Debug, Clone, Default)]
pub struct BallState {
    /// Whether this vertex is a dual-sim candidate (its own card exists).
    candidate: bool,
    /// Cards known so far, keyed by vertex id.
    cards: HashMap<VertexId, Card>,
    /// Ids first learned in the previous superstep (still to forward).
    fresh: Vec<VertexId>,
    /// Output: query vertices this center strongly simulates.
    pub centers: Vec<VertexId>,
}

impl StateSize for BallState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .cards
                .values()
                .map(|c| 8 + c.state_bytes())
                .sum::<usize>()
            + (self.fresh.len() + self.centers.len()) * 4
    }
}

struct BallSim<'q> {
    query: &'q Graph,
    /// Ball radius: the query's undirected diameter.
    radius: u32,
}

impl BallSim<'_> {
    /// Local dual-simulation fixpoint over the collected ball.
    fn local_dual_sim(&self, ctx: &mut Context<'_, Self>) -> Vec<VertexId> {
        let me = ctx.id();
        let cards: Vec<&Card> = {
            let mut v: Vec<&Card> = ctx.value().cards.values().collect();
            v.sort_by_key(|c| c.id);
            v
        };
        let local_of: HashMap<VertexId, usize> =
            cards.iter().enumerate().map(|(i, c)| (c.id, i)).collect();
        let k = cards.len();
        let nq = self.query.num_vertices();
        // Local adjacency restricted to the ball.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, card) in cards.iter().enumerate() {
            for s in &card.succs {
                if let Some(&j) = local_of.get(s) {
                    succs[i].push(j);
                    preds[j].push(i);
                }
            }
        }
        // Seed from the global match sets (sound upper bound).
        let mut sim: Vec<Vec<bool>> = vec![vec![false; k]; nq];
        for (i, card) in cards.iter().enumerate() {
            for &q in &card.match_set {
                sim[q as usize][i] = true;
            }
        }
        // Naive fixpoint; the work charge reflects each scan.
        let mut work = 0u64;
        let mut changed = true;
        while changed {
            changed = false;
            for q in 0..nq as u32 {
                for i in 0..k {
                    if !sim[q as usize][i] {
                        continue;
                    }
                    work += 1;
                    let child_ok = self.query.out_neighbors(q).iter().all(|&qc| {
                        work += succs[i].len() as u64;
                        succs[i].iter().any(|&j| sim[qc as usize][j])
                    });
                    let parent_ok = child_ok
                        && self.query.in_neighbors(q).iter().all(|&qp| {
                            work += preds[i].len() as u64;
                            preds[i].iter().any(|&j| sim[qp as usize][j])
                        });
                    if !(child_ok && parent_ok) {
                        sim[q as usize][i] = false;
                        changed = true;
                    }
                }
            }
        }
        ctx.charge(work);
        // The ball's simulation must cover every query vertex.
        let exists = (0..nq).all(|q| sim[q].iter().any(|&b| b));
        if !exists {
            return Vec::new();
        }
        let mine = local_of[&me];
        (0..nq as u32)
            .filter(|&q| sim[q as usize][mine])
            .collect()
    }
}

impl VertexProgram for BallSim<'_> {
    type Value = BallState;
    type Message = Vec<Card>;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Vec<Card>]) {
        let superstep = ctx.superstep();
        if superstep == 0 && self.radius == 0 {
            // Single-vertex query: the ball is the vertex itself.
            if ctx.value().candidate {
                let centers = self.local_dual_sim(ctx);
                ctx.value_mut().centers = centers;
            }
            ctx.vote_to_halt();
            return;
        }
        if superstep == 0 {
            if ctx.value().candidate {
                let me = ctx.id();
                let card = ctx.value().cards[&me].clone();
                let card_cost = 1 + card.succs.len() as u64;
                let batch = vec![card];
                let (out, inn) = (ctx.out_neighbors(), ctx.in_neighbors());
                for &v in out.iter().chain(inn) {
                    // Charge proportionally to the card payload: a batch is
                    // one engine message but carries O(ball) data.
                    ctx.charge(card_cost);
                    ctx.send(v, batch.clone());
                }
                ctx.value_mut().fresh.clear();
            }
            ctx.vote_to_halt();
            return;
        }
        // Absorb incoming cards.
        let mut fresh: Vec<VertexId> = Vec::new();
        for batch in messages {
            for card in batch {
                ctx.charge(1);
                if !ctx.value().cards.contains_key(&card.id) {
                    fresh.push(card.id);
                    ctx.value_mut().cards.insert(card.id, card.clone());
                }
            }
        }
        fresh.sort_unstable();
        fresh.dedup();
        if superstep < self.radius as u64 {
            // Forward newly learned cards one hop further.
            if !fresh.is_empty() {
                let batch: Vec<Card> = fresh
                    .iter()
                    .map(|id| ctx.value().cards[id].clone())
                    .collect();
                let batch_cost: u64 = batch
                    .iter()
                    .map(|c| 1 + c.succs.len() as u64)
                    .sum();
                let (out, inn) = (ctx.out_neighbors(), ctx.in_neighbors());
                for &v in out.iter().chain(inn) {
                    ctx.charge(batch_cost);
                    ctx.send(v, batch.clone());
                }
            }
            ctx.vote_to_halt();
        } else {
            // Final superstep: candidates evaluate their balls.
            if ctx.value().candidate {
                let centers = self.local_dual_sim(ctx);
                ctx.value_mut().centers = centers;
            }
            ctx.vote_to_halt();
        }
    }

    fn master_compute(&self, master: &mut MasterContext<'_>) {
        // Drive exactly `radius + 1` supersteps of flooding + evaluation.
        if master.superstep() < self.radius as u64 {
            master.reactivate_all();
        }
    }
}

/// Result of vertex-centric strong simulation.
#[derive(Debug, Clone)]
pub struct StrongSimulationResult {
    /// `centers[w]` = query vertices `w` strongly simulates within its
    /// ball (empty when `w` is not a center).
    pub centers: Vec<Vec<VertexId>>,
    /// Merged instrumentation (dual-sim stage + ball stage).
    pub stats: RunStats,
}

/// Runs strong simulation of `query` over `data`.
pub fn run(query: &Graph, data: &Graph, config: &PregelConfig) -> StrongSimulationResult {
    assert!(query.is_directed() && data.is_directed(), "simulation runs on digraphs");
    let radius = vcgp_graph::properties::exact_diameter(&query.to_undirected())
        .expect("query pattern must be connected");
    // Stage 1: global dual simulation (raw fixpoint).
    let dual = dual_simulation::run_raw(query, data, config);
    let mut stats = dual.stats.clone();
    let candidate: Vec<bool> = dual.matches.iter().map(|s| !s.is_empty()).collect();
    // Stage 2 initial state: every candidate's own card.
    let init: Vec<BallState> = data
        .vertices()
        .map(|v| {
            let mut state = BallState::default();
            if candidate[v as usize] {
                state.candidate = true;
                let succs: Vec<VertexId> = data
                    .out_neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| candidate[u as usize])
                    .collect();
                state.cards.insert(
                    v,
                    Card {
                        id: v,
                        succs,
                        match_set: dual.matches[v as usize].clone(),
                    },
                );
            }
            state
        })
        .collect();
    let program = BallSim { query, radius };
    let (values, ball_stats) = vcgp_pregel::run_with_values(&program, data, init, config);
    stats.merge(ball_stats);
    StrongSimulationResult {
        centers: values.into_iter().map(|s| s.centers).collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn matches_sequential_strong_simulation() {
        for seed in 0..5 {
            let q = generators::query_pattern(4, 2, 3, seed);
            let d = generators::labeled_digraph(35, 130, 3, seed + 70);
            let vc = run(&q, &d, &PregelConfig::single_worker());
            let sq = vcgp_sequential::simulation::strong_simulation(&q, &d);
            assert_eq!(vc.centers, sq.centers, "seed {seed}");
        }
    }

    #[test]
    fn centers_subset_of_dual_matches() {
        let q = generators::query_pattern(4, 2, 3, 2);
        let d = generators::labeled_digraph(40, 160, 3, 21);
        let ss = run(&q, &d, &PregelConfig::single_worker());
        let ds = vcgp_sequential::simulation::dual_simulation(&q, &d);
        for u in 0..40usize {
            for qv in &ss.centers[u] {
                assert!(ds.matches[u].contains(qv));
            }
        }
    }

    #[test]
    fn locality_prunes_remote_witnesses() {
        // Query A -> B (radius 1). Data chain: A -> X -> B where the only
        // B sits two hops from the stray A — so that A has a B "witness"
        // only outside its ball. Global dual sim already prunes it here,
        // but a direct A -> B pair must survive.
        let mut db = vcgp_graph::GraphBuilder::directed(4);
        db.add_edge(0, 1); // A -> B
        db.add_edge(2, 3); // A -> A (no B below)
        db.set_labels(vec![0, 1, 0, 0]);
        let mut qb = vcgp_graph::GraphBuilder::directed(2);
        qb.add_edge(0, 1);
        qb.set_labels(vec![0, 1]);
        let q = qb.build();
        let d = db.build();
        let vc = run(&q, &d, &PregelConfig::single_worker());
        assert_eq!(vc.centers[0], vec![0]);
        assert_eq!(vc.centers[1], vec![1]);
        assert!(vc.centers[2].is_empty());
        assert!(vc.centers[3].is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let q = generators::query_pattern(4, 2, 3, 5);
        let d = generators::labeled_digraph(30, 110, 3, 31);
        let a = run(&q, &d, &PregelConfig::single_worker());
        let b = run(&q, &d, &PregelConfig::default().with_workers(4));
        assert_eq!(a.centers, b.centers);
    }
}
