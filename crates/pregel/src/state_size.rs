//! Per-vertex state accounting for BPPA property 1.
//!
//! BPPA's first property bounds the *storage* each vertex uses by
//! `O(d(v))`. To measure it we need every vertex value type to report its
//! size, including heap content (the diameter algorithm's history set is the
//! canonical violation: it grows to `Θ(n)` vertex ids per vertex).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Reports the total size in bytes of a value, including owned heap data.
///
/// Implementations count `size_of::<Self>()` plus the *elements* of owned
/// containers; spare capacity is deliberately excluded so measurements
/// reflect the algorithm's storage demand rather than allocator growth
/// policy.
pub trait StateSize {
    /// Total bytes attributable to `self`.
    fn state_bytes(&self) -> usize;
}

macro_rules! impl_pod_state_size {
    ($($t:ty),* $(,)?) => {
        $(impl StateSize for $t {
            #[inline]
            fn state_bytes(&self) -> usize {
                std::mem::size_of::<Self>()
            }
        })*
    };
}

impl_pod_state_size!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    char
);

impl<T: StateSize> StateSize for Option<T> {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .as_ref()
                .map_or(0, |v| v.state_bytes().saturating_sub(std::mem::size_of::<T>()))
    }
}

impl<T: StateSize> StateSize for Vec<T> {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.iter().map(StateSize::state_bytes).sum::<usize>()
    }
}

impl<T: StateSize> StateSize for Box<T> {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.as_ref().state_bytes()
    }
}

impl StateSize for String {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.len()
    }
}

impl<T: StateSize, const N: usize> StateSize for [T; N] {
    fn state_bytes(&self) -> usize {
        self.iter().map(StateSize::state_bytes).sum::<usize>()
    }
}

impl<A: StateSize, B: StateSize> StateSize for (A, B) {
    fn state_bytes(&self) -> usize {
        self.0.state_bytes() + self.1.state_bytes()
    }
}

impl<A: StateSize, B: StateSize, C: StateSize> StateSize for (A, B, C) {
    fn state_bytes(&self) -> usize {
        self.0.state_bytes() + self.1.state_bytes() + self.2.state_bytes()
    }
}

impl<K: StateSize, V: StateSize, S> StateSize for HashMap<K, V, S> {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .iter()
                .map(|(k, v)| k.state_bytes() + v.state_bytes())
                .sum::<usize>()
    }
}

impl<T: StateSize, S> StateSize for HashSet<T, S> {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.iter().map(StateSize::state_bytes).sum::<usize>()
    }
}

impl<K: StateSize, V: StateSize> StateSize for BTreeMap<K, V> {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .iter()
                .map(|(k, v)| k.state_bytes() + v.state_bytes())
                .sum::<usize>()
    }
}

impl<T: StateSize> StateSize for BTreeSet<T> {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.iter().map(StateSize::state_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_sizes() {
        assert_eq!(0u32.state_bytes(), 4);
        assert_eq!(0u64.state_bytes(), 8);
        assert_eq!(true.state_bytes(), 1);
        assert_eq!(().state_bytes(), 0);
    }

    #[test]
    fn vec_counts_elements() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.state_bytes(), std::mem::size_of::<Vec<u32>>() + 12);
        let empty: Vec<u64> = Vec::with_capacity(100);
        // Spare capacity excluded by design.
        assert_eq!(empty.state_bytes(), std::mem::size_of::<Vec<u64>>());
    }

    #[test]
    fn nested_vec() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        let inner = std::mem::size_of::<Vec<u8>>();
        assert_eq!(
            v.state_bytes(),
            std::mem::size_of::<Vec<Vec<u8>>>() + 2 * inner + 3
        );
    }

    #[test]
    fn hashset_grows_with_content() {
        let mut s: HashSet<u64> = HashSet::new();
        let base = s.state_bytes();
        for i in 0..10 {
            s.insert(i);
        }
        assert_eq!(s.state_bytes(), base + 80);
    }

    #[test]
    fn option_and_tuple() {
        let some: Option<Vec<u32>> = Some(vec![1, 2]);
        assert!(some.state_bytes() > None::<Vec<u32>>.state_bytes());
        let t = (1u32, vec![1u8, 2u8]);
        assert_eq!(
            t.state_bytes(),
            4 + std::mem::size_of::<Vec<u8>>() + 2
        );
    }

    #[test]
    fn string_counts_bytes() {
        assert_eq!(
            "hello".to_string().state_bytes(),
            std::mem::size_of::<String>() + 5
        );
    }
}
