//! A sense-reversing phase barrier with bounded spin-then-park waiting.
//!
//! `std::sync::Barrier` takes an internal mutex and parks on a condvar on
//! every wait, so its cost grows with the worker count and with scheduler
//! round-trips — measured at tens of microseconds per superstep phase on an
//! oversubscribed machine. [`PhaseBarrier`] instead publishes phase
//! transitions through a generation counter: arrival is one `fetch_add`,
//! and waiters spin (briefly, and only when the machine actually has a core
//! per thread), then yield, then park on a condvar as a last resort. The
//! parking slow path keeps the barrier correct when threads outnumber
//! cores; the spinning fast path keeps it cheap when they don't.
//!
//! The last thread to arrive may run a closure *before* releasing the
//! others ([`PhaseBarrier::wait_leader`]). The engine uses this to fold the
//! serial master phase into the delivery barrier, so a superstep costs two
//! barrier crossings instead of three.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Spin iterations before falling back to `yield_now` (only when spinning
/// is enabled, i.e. every thread can own a core).
const SPIN_LIMIT: u32 = 1 << 14;
/// `yield_now` calls before parking on the condvar.
const YIELD_LIMIT: u32 = 64;

/// A reusable barrier for a fixed set of `parties` threads.
pub(crate) struct PhaseBarrier {
    parties: usize,
    /// Threads arrived in the current phase.
    arrived: AtomicUsize,
    /// Phase number; bumped by the last arriver to release waiters.
    generation: AtomicU64,
    /// Park support for waiters that exhaust their spin/yield budget. The
    /// leader bumps `generation` while holding the lock, so a waiter that
    /// re-checks the generation under the lock can never miss the wakeup.
    lock: Mutex<()>,
    cv: Condvar,
    /// Whether waiters busy-spin before yielding. Disabled when the caller
    /// knows threads outnumber cores (spinning would burn the timeslice the
    /// straggler needs).
    spin: bool,
}

impl PhaseBarrier {
    pub(crate) fn new(parties: usize, spin: bool) -> Self {
        PhaseBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            spin,
        }
    }

    /// Blocks until all parties arrive. Returns the nanoseconds this thread
    /// spent waiting (zero for the last arriver).
    pub(crate) fn wait(&self) -> u64 {
        self.wait_leader(|| {}).1
    }

    /// Blocks until all parties arrive; the *last* arriver runs `leader`
    /// before any waiter is released. Returns `Some(result)` on the leader
    /// thread and `None` on the others, plus the nanoseconds spent waiting
    /// (the leader's closure time is not counted as waiting).
    pub(crate) fn wait_leader<R>(&self, leader: impl FnOnce() -> R) -> (Option<R>, u64) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            let r = leader();
            // Reset the arrival count before opening the next phase: a
            // released waiter may arrive at the next barrier immediately,
            // and its Acquire load of `generation` makes this store
            // visible.
            self.arrived.store(0, Ordering::Relaxed);
            {
                let _g = self.lock.lock().unwrap();
                self.generation.store(gen + 1, Ordering::Release);
            }
            self.cv.notify_all();
            return (Some(r), 0);
        }
        let started = Instant::now();
        let mut tries: u32 = 0;
        let spin_budget = if self.spin { SPIN_LIMIT } else { 0 };
        loop {
            if self.generation.load(Ordering::Acquire) != gen {
                return (None, started.elapsed().as_nanos() as u64);
            }
            if tries < spin_budget {
                std::hint::spin_loop();
            } else if tries < spin_budget + YIELD_LIMIT {
                std::thread::yield_now();
            } else {
                let mut g = self.lock.lock().unwrap();
                while self.generation.load(Ordering::Acquire) == gen {
                    g = self.cv.wait(g).unwrap();
                }
                return (None, started.elapsed().as_nanos() as u64);
            }
            tries += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn releases_all_parties_repeatedly() {
        for spin in [false, true] {
            let barrier = PhaseBarrier::new(4, spin);
            let counter = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for round in 0..50 {
                            counter.fetch_add(1, Ordering::Relaxed);
                            barrier.wait();
                            // Every thread observes all arrivals of the round.
                            assert!(counter.load(Ordering::Relaxed) >= 4 * (round + 1));
                            barrier.wait();
                        }
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 200);
        }
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        let barrier = PhaseBarrier::new(3, false);
        let leads = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..40 {
                        let (led, _) = barrier.wait_leader(|| {
                            leads.fetch_add(1, Ordering::Relaxed);
                        });
                        let _ = led;
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(leads.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn leader_runs_before_release() {
        // The leader closure's writes must be visible to every released
        // waiter: publish a value in the closure, assert it after the wait.
        let barrier = PhaseBarrier::new(2, false);
        let slot = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for round in 1..=100 {
                        barrier.wait_leader(|| slot.store(round, Ordering::Relaxed));
                        assert_eq!(slot.load(Ordering::Relaxed), round);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn single_party_never_blocks() {
        let barrier = PhaseBarrier::new(1, true);
        for _ in 0..10 {
            let (led, ns) = barrier.wait_leader(|| 7);
            assert_eq!(led, Some(7));
            assert_eq!(ns, 0);
        }
    }
}
