//! The vertex-program trait and its per-vertex / master execution contexts.

use crate::aggregate::{AggValue, AggregatorDef};
use crate::partition::Partitioner;
use crate::pool::{DirectTable, Lane, DIRECT_INDEX_MAX_VERTICES};
use crate::state_size::StateSize;
use vcgp_graph::rng::{mix3, SplitMix64};
use vcgp_graph::{Graph, VertexId};

/// A commutative, associative message-combining function (Pregel
/// combiners): folds the second message into the first.
pub type Combiner<M> = fn(&mut M, M);

/// A vertex-centric computation in the Pregel model.
///
/// The engine calls [`VertexProgram::compute`] for every active vertex each
/// superstep (superstep 0 runs it for all vertices with an empty message
/// slice). The program expresses everything "from the perspective of a
/// single vertex", per the think-like-a-vertex model.
pub trait VertexProgram: Sync {
    /// Per-vertex state. `StateSize` is required so BPPA property 1
    /// (per-vertex storage) can be measured.
    type Value: Clone + Send + StateSize;
    /// Message type exchanged between vertices.
    type Message: Clone + Send;

    /// The per-vertex kernel.
    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[Self::Message]);

    /// Optional message combiner: folds the second message into the first
    /// for messages addressed to the same destination vertex. Must be
    /// commutative and associative. Applied twice: once *at the sender*
    /// while messages are buffered (so each sender worker ships at most one
    /// message per destination vertex), and once at the receiver as the
    /// cross-sender backstop. With per-vertex tracking enabled the sender
    /// stage is skipped so per-message receive counts stay exact. Return
    /// `None` (the default) to deliver all messages individually.
    fn combiner(&self) -> Option<Combiner<Self::Message>> {
        None
    }

    /// Aggregators used by this program (empty by default). Values folded
    /// during superstep `S` are readable in superstep `S + 1` via
    /// [`Context::read_aggregate`] and by the master.
    fn aggregators(&self) -> Vec<AggregatorDef> {
        Vec::new()
    }

    /// Initial values for the global slots set by the master
    /// (empty by default). Readable by every vertex via [`Context::global`].
    fn globals(&self) -> Vec<AggValue> {
        Vec::new()
    }

    /// Master-compute hook, run once after each superstep (including
    /// superstep 0) with that superstep's merged aggregators. Used for
    /// phase transitions and global termination decisions.
    fn master_compute(&self, _master: &mut MasterContext<'_>) {}
}

/// Outgoing message buffers for one worker, bucketed by destination worker.
///
/// Lives for the whole run (buffers and combining tables are recycled
/// across supersteps, see [`crate::pool`]). When constructed with a
/// combiner, messages to the same destination vertex are folded *in the
/// sender's lane* as they are sent — in send order, so results stay
/// deterministic — and only one entry per (sender worker, destination
/// vertex) is ever materialized and shipped.
pub(crate) struct Outgoing<M> {
    pub(crate) lanes: Vec<Lane<M>>,
    /// Direct-mapped combining index (one slot per graph vertex, shared by
    /// every lane — a destination determines its lane uniquely). Present
    /// when combining on a graph small enough to afford it; larger graphs
    /// use the per-lane open-addressing tables instead.
    direct: Option<DirectTable>,
    combiner: Option<Combiner<M>>,
    /// Sends folded into an existing lane entry this superstep (the
    /// per-worker `combined_at_sender` observable).
    pub(crate) combined: u64,
}

impl<M> Outgoing<M> {
    /// `combiner` enables sender-side combining; pass `None` to buffer
    /// every send individually (no combiner, or per-vertex tracking mode,
    /// which needs per-message receive counts).
    pub(crate) fn new(
        num_workers: usize,
        num_vertices: usize,
        combiner: Option<Combiner<M>>,
    ) -> Self {
        let direct = if combiner.is_some() && num_vertices <= DIRECT_INDEX_MAX_VERTICES {
            Some(DirectTable::new(num_vertices))
        } else {
            None
        };
        Outgoing {
            lanes: (0..num_workers).map(|_| Lane::new()).collect(),
            direct,
            combiner,
            combined: 0,
        }
    }

    /// Like [`Outgoing::new`], but never builds the direct-mapped combining
    /// index: used for the work-stealing chunk buffers, where one slot per
    /// graph vertex *per chunk* would dwarf the messages being buffered.
    /// The per-lane open-addressing tables size with actual traffic.
    pub(crate) fn new_hashed(num_workers: usize, combiner: Option<Combiner<M>>) -> Self {
        Outgoing {
            lanes: (0..num_workers).map(|_| Lane::new()).collect(),
            direct: None,
            combiner,
            combined: 0,
        }
    }

    /// Buffers `msg` for vertex `to` owned by worker `owner`, folding it
    /// into an already-buffered message to the same vertex when combining.
    #[inline]
    pub(crate) fn push(&mut self, owner: usize, to: VertexId, msg: M) {
        let lane = &mut self.lanes[owner];
        if let Some(combine) = self.combiner {
            let hit = match &mut self.direct {
                Some(t) => t.find_or_insert(to, lane.buf.len()),
                None => lane.table.find_or_insert(to, &lane.buf),
            };
            if let Some(i) = hit {
                combine(&mut lane.buf[i].1, msg);
                lane.folded += 1;
                self.combined += 1;
                return;
            }
        }
        lane.buf.push((to, msg));
    }

    /// Resets per-superstep state after a flush: combining indexes become
    /// logically empty, the fold counter restarts. Lane buffers are managed
    /// by the flush itself (they are swapped with parked outbox vectors).
    pub(crate) fn begin_superstep(&mut self) {
        for lane in &mut self.lanes {
            debug_assert!(lane.buf.is_empty() && lane.folded == 0, "lane not flushed");
            lane.table.advance();
        }
        if let Some(t) = &mut self.direct {
            t.advance();
        }
        self.combined = 0;
    }
}

/// The per-vertex execution context handed to [`VertexProgram::compute`].
pub struct Context<'a, P: VertexProgram + ?Sized> {
    pub(crate) id: VertexId,
    pub(crate) superstep: u64,
    pub(crate) graph: &'a Graph,
    pub(crate) value: &'a mut P::Value,
    pub(crate) halted: &'a mut bool,
    pub(crate) out: &'a mut Outgoing<P::Message>,
    pub(crate) partitioner: Partitioner,
    pub(crate) agg_prev: &'a [AggValue],
    pub(crate) agg_partial: &'a mut [AggValue],
    pub(crate) agg_defs: &'a [AggregatorDef],
    pub(crate) globals: &'a [AggValue],
    pub(crate) work: &'a mut u64,
    pub(crate) sent: &'a mut u64,
    pub(crate) seed: u64,
}

impl<'a, P: VertexProgram + ?Sized> Context<'a, P> {
    /// This vertex's id.
    #[inline]
    pub fn id(&self) -> VertexId {
        self.id
    }

    /// The current superstep (0-based).
    #[inline]
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// The graph being processed.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// This vertex's state.
    #[inline]
    pub fn value(&self) -> &P::Value {
        self.value
    }

    /// Mutable access to this vertex's state.
    #[inline]
    pub fn value_mut(&mut self) -> &mut P::Value {
        self.value
    }

    /// Out-neighbors of this vertex (sorted by id).
    #[inline]
    pub fn out_neighbors(&self) -> &'a [VertexId] {
        self.graph.out_neighbors(self.id)
    }

    /// In-neighbors of this vertex.
    #[inline]
    pub fn in_neighbors(&self) -> &'a [VertexId] {
        self.graph.in_neighbors(self.id)
    }

    /// Sends `msg` to vertex `to`, to be delivered next superstep.
    /// Each send is charged one work unit and one sent-message unit.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: P::Message) {
        debug_assert!(
            (to as usize) < self.graph.num_vertices(),
            "message to out-of-range vertex {to}"
        );
        let w = self.partitioner.owner(to);
        self.out.push(w, to, msg);
        *self.sent += 1;
        *self.work += 1;
    }

    /// Sends a copy of `msg` along every out-edge.
    pub fn send_to_all_out_neighbors(&mut self, msg: P::Message) {
        let neighbors = self.graph.out_neighbors(self.id);
        for &v in neighbors {
            self.send(v, msg.clone());
        }
    }

    /// Sends a copy of `msg` to every in-neighbor (the "parents" of a
    /// digraph vertex — used by the simulation workloads).
    pub fn send_to_all_in_neighbors(&mut self, msg: P::Message) {
        let neighbors = self.graph.in_neighbors(self.id);
        for &v in neighbors {
            self.send(v, msg.clone());
        }
    }

    /// Votes to halt. The vertex will not run next superstep unless a
    /// message arrives for it.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }

    /// Charges `units` of additional local work (adjacency scans, local
    /// sorting, hash-set maintenance, ...). Programs use this to make the
    /// measured `w_i` faithful to their per-superstep time complexity.
    #[inline]
    pub fn charge(&mut self, units: u64) {
        *self.work += units;
    }

    /// Folds `v` into aggregator `idx` (as declared by
    /// [`VertexProgram::aggregators`]).
    #[inline]
    pub fn aggregate(&mut self, idx: usize, v: AggValue) {
        self.agg_defs[idx].op.fold(&mut self.agg_partial[idx], v);
    }

    /// The merged value of aggregator `idx` from the previous superstep
    /// (the identity during superstep 0).
    #[inline]
    pub fn read_aggregate(&self, idx: usize) -> AggValue {
        self.agg_prev[idx]
    }

    /// The global slot `idx`, as last set by the master.
    #[inline]
    pub fn global(&self, idx: usize) -> AggValue {
        self.globals[idx]
    }

    /// A deterministic per-(run, vertex, superstep) random generator:
    /// identical results regardless of worker count or scheduling.
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(mix3(self.seed, self.id as u64, self.superstep))
    }
}

/// The master's execution context, handed to
/// [`VertexProgram::master_compute`] after every superstep.
pub struct MasterContext<'a> {
    pub(crate) superstep: u64,
    pub(crate) num_vertices: usize,
    pub(crate) active: usize,
    pub(crate) aggregates: &'a [AggValue],
    pub(crate) globals: &'a mut [AggValue],
    pub(crate) halt: bool,
    pub(crate) reactivate_all: bool,
}

impl<'a> MasterContext<'a> {
    /// The superstep that just finished (0-based).
    #[inline]
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// Number of vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of vertices that will be active next superstep (post message
    /// delivery).
    #[inline]
    pub fn num_active(&self) -> usize {
        self.active
    }

    /// The merged value of aggregator `idx` for the superstep that just
    /// finished.
    #[inline]
    pub fn read_aggregate(&self, idx: usize) -> AggValue {
        self.aggregates[idx]
    }

    /// Reads global slot `idx`.
    #[inline]
    pub fn global(&self, idx: usize) -> AggValue {
        self.globals[idx]
    }

    /// Sets global slot `idx`, visible to all vertices from the next
    /// superstep on.
    #[inline]
    pub fn set_global(&mut self, idx: usize, v: AggValue) {
        self.globals[idx] = v;
    }

    /// Terminates the computation after this superstep.
    #[inline]
    pub fn halt(&mut self) {
        self.halt = true;
    }

    /// Forces every vertex active next superstep (phase transitions).
    #[inline]
    pub fn reactivate_all(&mut self) {
        self.reactivate_all = true;
    }
}
