//! Monoid aggregators, as in Pregel/Giraph.
//!
//! Each vertex may fold values into named aggregators during a superstep;
//! the merged result is visible to every vertex (and the master) in the
//! *next* superstep. Aggregators are reset to the operation's identity at
//! the start of every superstep unless declared `persistent`.

/// A dynamically-typed aggregator value. Using a small closed enum keeps the
/// engine free of type-erasure machinery while covering every aggregator the
//  twenty workloads need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// Signed integer payload.
    I64(i64),
    /// Floating payload.
    F64(f64),
    /// Boolean payload.
    Bool(bool),
}

/// A dynamic-type error from an aggregator accessor or fold: the payload's
/// variant did not match what the caller (or the fold operation) expected.
///
/// Carried by the `try_*` accessors so a service layer can turn a malformed
/// request into an error response instead of unwinding an executor thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggTypeMismatch {
    /// The variant the caller expected (`"I64"`, `"F64"`, `"Bool"`).
    pub expected: &'static str,
    /// The value actually held.
    pub got: AggValue,
}

impl std::fmt::Display for AggTypeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {}, got {:?}", self.expected, self.got)
    }
}

impl std::error::Error for AggTypeMismatch {}

impl AggValue {
    /// Extracts an `i64`, or reports the mismatch.
    pub fn try_as_i64(self) -> Result<i64, AggTypeMismatch> {
        match self {
            AggValue::I64(v) => Ok(v),
            got => Err(AggTypeMismatch { expected: "I64", got }),
        }
    }

    /// Extracts an `f64`, or reports the mismatch.
    pub fn try_as_f64(self) -> Result<f64, AggTypeMismatch> {
        match self {
            AggValue::F64(v) => Ok(v),
            got => Err(AggTypeMismatch { expected: "F64", got }),
        }
    }

    /// Extracts a `bool`, or reports the mismatch.
    pub fn try_as_bool(self) -> Result<bool, AggTypeMismatch> {
        match self {
            AggValue::Bool(v) => Ok(v),
            got => Err(AggTypeMismatch { expected: "Bool", got }),
        }
    }

    /// Whether this value's variant matches an expected-variant name.
    fn try_matches(&self, expected: &str) -> bool {
        matches!(
            (self, expected),
            (AggValue::I64(_), "I64") | (AggValue::F64(_), "F64") | (AggValue::Bool(_), "Bool")
        )
    }

    /// Extracts an `i64`, panicking on type mismatch (an aggregator misuse
    /// inside an in-tree algorithm is a programming error, not a runtime
    /// condition; fallible callers use [`AggValue::try_as_i64`]).
    pub fn as_i64(self) -> i64 {
        self.try_as_i64()
            .unwrap_or_else(|e| panic!("aggregator type mismatch: {e}"))
    }

    /// Extracts an `f64`, panicking on type mismatch.
    pub fn as_f64(self) -> f64 {
        self.try_as_f64()
            .unwrap_or_else(|e| panic!("aggregator type mismatch: {e}"))
    }

    /// Extracts a `bool`, panicking on type mismatch.
    pub fn as_bool(self) -> bool {
        self.try_as_bool()
            .unwrap_or_else(|e| panic!("aggregator type mismatch: {e}"))
    }
}

/// The fold operation of an aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Integer sum; identity 0.
    SumI64,
    /// Float sum; identity 0.0.
    SumF64,
    /// Integer minimum; identity `i64::MAX`.
    MinI64,
    /// Integer maximum; identity `i64::MIN`.
    MaxI64,
    /// Float minimum; identity `f64::INFINITY`.
    MinF64,
    /// Float maximum; identity `f64::NEG_INFINITY`.
    MaxF64,
    /// Logical conjunction; identity `true`.
    And,
    /// Logical disjunction; identity `false`.
    Or,
}

impl AggOp {
    /// The identity element of the monoid.
    pub fn identity(self) -> AggValue {
        match self {
            AggOp::SumI64 => AggValue::I64(0),
            AggOp::SumF64 => AggValue::F64(0.0),
            AggOp::MinI64 => AggValue::I64(i64::MAX),
            AggOp::MaxI64 => AggValue::I64(i64::MIN),
            AggOp::MinF64 => AggValue::F64(f64::INFINITY),
            AggOp::MaxF64 => AggValue::F64(f64::NEG_INFINITY),
            AggOp::And => AggValue::Bool(true),
            AggOp::Or => AggValue::Bool(false),
        }
    }

    /// Folds `v` into `acc`, or reports which operand's type was wrong.
    pub fn try_fold(self, acc: &mut AggValue, v: AggValue) -> Result<(), AggTypeMismatch> {
        match (self, acc, v) {
            (AggOp::SumI64, AggValue::I64(a), AggValue::I64(b)) => *a += b,
            (AggOp::SumF64, AggValue::F64(a), AggValue::F64(b)) => *a += b,
            (AggOp::MinI64, AggValue::I64(a), AggValue::I64(b)) => *a = (*a).min(b),
            (AggOp::MaxI64, AggValue::I64(a), AggValue::I64(b)) => *a = (*a).max(b),
            (AggOp::MinF64, AggValue::F64(a), AggValue::F64(b)) => *a = a.min(b),
            (AggOp::MaxF64, AggValue::F64(a), AggValue::F64(b)) => *a = a.max(b),
            (AggOp::And, AggValue::Bool(a), AggValue::Bool(b)) => *a &= b,
            (AggOp::Or, AggValue::Bool(a), AggValue::Bool(b)) => *a |= b,
            (op, acc, v) => {
                let expected = match op {
                    AggOp::SumI64 | AggOp::MinI64 | AggOp::MaxI64 => "I64",
                    AggOp::SumF64 | AggOp::MinF64 | AggOp::MaxF64 => "F64",
                    AggOp::And | AggOp::Or => "Bool",
                };
                let got = if acc.try_matches(expected) { v } else { *acc };
                return Err(AggTypeMismatch { expected, got });
            }
        }
        Ok(())
    }

    /// Folds `v` into `acc`, panicking on type mismatch; fallible callers
    /// use [`AggOp::try_fold`].
    pub fn fold(self, acc: &mut AggValue, v: AggValue) {
        if let Err(e) = self.try_fold(acc, v) {
            panic!("aggregator type mismatch for {self:?}: {e}");
        }
    }
}

/// Declaration of one aggregator, returned by
/// [`crate::VertexProgram::aggregators`].
#[derive(Debug, Clone, Copy)]
pub struct AggregatorDef {
    /// Diagnostic name.
    pub name: &'static str,
    /// The fold operation.
    pub op: AggOp,
}

impl AggregatorDef {
    /// Convenience constructor.
    pub const fn new(name: &'static str, op: AggOp) -> Self {
        AggregatorDef { name, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(AggOp::SumI64.identity(), AggValue::I64(0));
        assert_eq!(AggOp::MinI64.identity(), AggValue::I64(i64::MAX));
        assert_eq!(AggOp::And.identity(), AggValue::Bool(true));
        assert_eq!(AggOp::Or.identity(), AggValue::Bool(false));
    }

    #[test]
    fn folds() {
        let mut acc = AggOp::SumI64.identity();
        AggOp::SumI64.fold(&mut acc, AggValue::I64(3));
        AggOp::SumI64.fold(&mut acc, AggValue::I64(4));
        assert_eq!(acc.as_i64(), 7);

        let mut acc = AggOp::MinF64.identity();
        AggOp::MinF64.fold(&mut acc, AggValue::F64(2.5));
        AggOp::MinF64.fold(&mut acc, AggValue::F64(1.5));
        assert_eq!(acc.as_f64(), 1.5);

        let mut acc = AggOp::Or.identity();
        AggOp::Or.fold(&mut acc, AggValue::Bool(false));
        assert!(!acc.as_bool());
        AggOp::Or.fold(&mut acc, AggValue::Bool(true));
        assert!(acc.as_bool());
    }

    #[test]
    fn fold_is_associative_sample() {
        // (a + b) + c == a + (b + c) for the integer sum monoid.
        let mut left = AggValue::I64(1);
        AggOp::SumI64.fold(&mut left, AggValue::I64(2));
        AggOp::SumI64.fold(&mut left, AggValue::I64(3));
        let mut right = AggValue::I64(2);
        AggOp::SumI64.fold(&mut right, AggValue::I64(3));
        let mut outer = AggValue::I64(1);
        AggOp::SumI64.fold(&mut outer, right);
        assert_eq!(left, outer);
    }

    #[test]
    fn try_accessors_succeed_on_matching_type() {
        assert_eq!(AggValue::I64(3).try_as_i64(), Ok(3));
        assert_eq!(AggValue::F64(2.5).try_as_f64(), Ok(2.5));
        assert_eq!(AggValue::Bool(true).try_as_bool(), Ok(true));
    }

    #[test]
    fn try_accessors_report_mismatch_without_panicking() {
        let err = AggValue::I64(3).try_as_f64().unwrap_err();
        assert_eq!(err.expected, "F64");
        assert_eq!(err.got, AggValue::I64(3));
        assert_eq!(err.to_string(), "expected F64, got I64(3)");
        assert!(AggValue::F64(1.0).try_as_i64().is_err());
        assert!(AggValue::I64(0).try_as_bool().is_err());
        assert!(AggValue::Bool(false).try_as_f64().is_err());
    }

    #[test]
    fn try_fold_reports_the_offending_operand() {
        // Wrong value operand: the accumulator is fine.
        let mut acc = AggOp::SumI64.identity();
        let err = AggOp::SumI64.try_fold(&mut acc, AggValue::F64(1.0)).unwrap_err();
        assert_eq!(err.expected, "I64");
        assert_eq!(err.got, AggValue::F64(1.0));
        // Wrong accumulator: reported even when the value matches.
        let mut acc = AggValue::Bool(true);
        let err = AggOp::MinF64.try_fold(&mut acc, AggValue::F64(0.5)).unwrap_err();
        assert_eq!(err.expected, "F64");
        assert_eq!(err.got, AggValue::Bool(true));
        // The accumulator is untouched by a failed fold.
        assert_eq!(acc, AggValue::Bool(true));
    }

    #[test]
    fn try_fold_matches_fold_on_well_typed_input() {
        let mut a = AggOp::MaxI64.identity();
        let mut b = AggOp::MaxI64.identity();
        for v in [3, -1, 7, 5] {
            AggOp::MaxI64.fold(&mut a, AggValue::I64(v));
            AggOp::MaxI64.try_fold(&mut b, AggValue::I64(v)).unwrap();
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn mismatch_panics() {
        let mut acc = AggOp::SumI64.identity();
        AggOp::SumI64.fold(&mut acc, AggValue::F64(1.0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn as_wrong_type_panics() {
        AggValue::I64(3).as_f64();
    }
}
