//! Monoid aggregators, as in Pregel/Giraph.
//!
//! Each vertex may fold values into named aggregators during a superstep;
//! the merged result is visible to every vertex (and the master) in the
//! *next* superstep. Aggregators are reset to the operation's identity at
//! the start of every superstep unless declared `persistent`.

/// A dynamically-typed aggregator value. Using a small closed enum keeps the
/// engine free of type-erasure machinery while covering every aggregator the
//  twenty workloads need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// Signed integer payload.
    I64(i64),
    /// Floating payload.
    F64(f64),
    /// Boolean payload.
    Bool(bool),
}

impl AggValue {
    /// Extracts an `i64`, panicking on type mismatch (an aggregator misuse
    /// is a programming error, not a runtime condition).
    pub fn as_i64(self) -> i64 {
        match self {
            AggValue::I64(v) => v,
            other => panic!("aggregator type mismatch: expected I64, got {other:?}"),
        }
    }

    /// Extracts an `f64`, panicking on type mismatch.
    pub fn as_f64(self) -> f64 {
        match self {
            AggValue::F64(v) => v,
            other => panic!("aggregator type mismatch: expected F64, got {other:?}"),
        }
    }

    /// Extracts a `bool`, panicking on type mismatch.
    pub fn as_bool(self) -> bool {
        match self {
            AggValue::Bool(v) => v,
            other => panic!("aggregator type mismatch: expected Bool, got {other:?}"),
        }
    }
}

/// The fold operation of an aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Integer sum; identity 0.
    SumI64,
    /// Float sum; identity 0.0.
    SumF64,
    /// Integer minimum; identity `i64::MAX`.
    MinI64,
    /// Integer maximum; identity `i64::MIN`.
    MaxI64,
    /// Float minimum; identity `f64::INFINITY`.
    MinF64,
    /// Float maximum; identity `f64::NEG_INFINITY`.
    MaxF64,
    /// Logical conjunction; identity `true`.
    And,
    /// Logical disjunction; identity `false`.
    Or,
}

impl AggOp {
    /// The identity element of the monoid.
    pub fn identity(self) -> AggValue {
        match self {
            AggOp::SumI64 => AggValue::I64(0),
            AggOp::SumF64 => AggValue::F64(0.0),
            AggOp::MinI64 => AggValue::I64(i64::MAX),
            AggOp::MaxI64 => AggValue::I64(i64::MIN),
            AggOp::MinF64 => AggValue::F64(f64::INFINITY),
            AggOp::MaxF64 => AggValue::F64(f64::NEG_INFINITY),
            AggOp::And => AggValue::Bool(true),
            AggOp::Or => AggValue::Bool(false),
        }
    }

    /// Folds `v` into `acc`.
    pub fn fold(self, acc: &mut AggValue, v: AggValue) {
        match (self, acc, v) {
            (AggOp::SumI64, AggValue::I64(a), AggValue::I64(b)) => *a += b,
            (AggOp::SumF64, AggValue::F64(a), AggValue::F64(b)) => *a += b,
            (AggOp::MinI64, AggValue::I64(a), AggValue::I64(b)) => *a = (*a).min(b),
            (AggOp::MaxI64, AggValue::I64(a), AggValue::I64(b)) => *a = (*a).max(b),
            (AggOp::MinF64, AggValue::F64(a), AggValue::F64(b)) => *a = a.min(b),
            (AggOp::MaxF64, AggValue::F64(a), AggValue::F64(b)) => *a = a.max(b),
            (AggOp::And, AggValue::Bool(a), AggValue::Bool(b)) => *a &= b,
            (AggOp::Or, AggValue::Bool(a), AggValue::Bool(b)) => *a |= b,
            (op, acc, v) => panic!("aggregator type mismatch for {op:?}: acc {acc:?}, value {v:?}"),
        }
    }
}

/// Declaration of one aggregator, returned by
/// [`crate::VertexProgram::aggregators`].
#[derive(Debug, Clone, Copy)]
pub struct AggregatorDef {
    /// Diagnostic name.
    pub name: &'static str,
    /// The fold operation.
    pub op: AggOp,
}

impl AggregatorDef {
    /// Convenience constructor.
    pub const fn new(name: &'static str, op: AggOp) -> Self {
        AggregatorDef { name, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(AggOp::SumI64.identity(), AggValue::I64(0));
        assert_eq!(AggOp::MinI64.identity(), AggValue::I64(i64::MAX));
        assert_eq!(AggOp::And.identity(), AggValue::Bool(true));
        assert_eq!(AggOp::Or.identity(), AggValue::Bool(false));
    }

    #[test]
    fn folds() {
        let mut acc = AggOp::SumI64.identity();
        AggOp::SumI64.fold(&mut acc, AggValue::I64(3));
        AggOp::SumI64.fold(&mut acc, AggValue::I64(4));
        assert_eq!(acc.as_i64(), 7);

        let mut acc = AggOp::MinF64.identity();
        AggOp::MinF64.fold(&mut acc, AggValue::F64(2.5));
        AggOp::MinF64.fold(&mut acc, AggValue::F64(1.5));
        assert_eq!(acc.as_f64(), 1.5);

        let mut acc = AggOp::Or.identity();
        AggOp::Or.fold(&mut acc, AggValue::Bool(false));
        assert!(!acc.as_bool());
        AggOp::Or.fold(&mut acc, AggValue::Bool(true));
        assert!(acc.as_bool());
    }

    #[test]
    fn fold_is_associative_sample() {
        // (a + b) + c == a + (b + c) for the integer sum monoid.
        let mut left = AggValue::I64(1);
        AggOp::SumI64.fold(&mut left, AggValue::I64(2));
        AggOp::SumI64.fold(&mut left, AggValue::I64(3));
        let mut right = AggValue::I64(2);
        AggOp::SumI64.fold(&mut right, AggValue::I64(3));
        let mut outer = AggValue::I64(1);
        AggOp::SumI64.fold(&mut outer, right);
        assert_eq!(left, outer);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn mismatch_panics() {
        let mut acc = AggOp::SumI64.identity();
        AggOp::SumI64.fold(&mut acc, AggValue::F64(1.0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn as_wrong_type_panics() {
        AggValue::I64(3).as_f64();
    }
}
