//! The BSP execution engine.
//!
//! Vertices are partitioned over `W` logical workers (the partitioning and
//! determinism domain: per-worker worklists, message lanes, and statistics
//! are all defined in terms of `W`). *Execution* happens on `T` OS threads,
//! a separate knob: `T = min(W, machine cores)` by default, overridable via
//! [`PregelConfig::num_threads`] / `VCGP_THREADS`. Decoupling the two is
//! what fixed the negative multi-worker scaling this module used to show —
//! on a machine with fewer cores than workers, oversubscribed threads spent
//! more time context-switching through per-superstep barriers than
//! computing.
//!
//! Two drivers implement identical semantics:
//!
//! * **Serial driver** (`T == 1`): all `W` workers run multiplexed on the
//!   calling thread in ascending worker order — no threads, no barriers, no
//!   outbox matrix, and one *shared* outgoing buffer set whose lanes hold
//!   exactly the sender-ordered message stream the threaded delivery phase
//!   would produce. Results, message totals, and delivered counts are
//!   bit-identical to every other configuration; only the
//!   `messages_combined_sender` transport observable moves (the shared
//!   combining table folds across hosted senders).
//! * **Threaded driver** (`T > 1`): `T` threads are spawned once per run
//!   (not per superstep phase) and synchronize on a sense-reversing
//!   spin-then-park [`crate::barrier::PhaseBarrier`] — two crossings per
//!   superstep (compute and delivery; the serial master phase runs inside
//!   the delivery barrier's leader closure), down from three
//!   `std::sync::Barrier` waits. Cross-worker message handoff goes through
//!   lock-free outbox slots sequenced by those barriers instead of a
//!   `W x W` mutex matrix.
//!
//! The threaded driver load-balances with **deterministic work stealing**:
//! each worker's sorted worklist is split into fixed-size chunks
//! ([`PregelConfig::steal_chunk`]), any thread may claim a chunk via an
//! atomic cursor, and each chunk buffers its outputs (messages, survivors,
//! aggregator partial) privately. The last thread to finish a worker's
//! chunks replays them *in chunk order* through the worker's master
//! buffers — the exact push sequence single-threaded execution would have
//! produced — so vertex values, message streams, and delivered counts are
//! bit-identical regardless of which thread executed which chunk. (For
//! `F64` aggregators the chunk-ordered fold grouping is deterministic but
//! may differ from the unchunked grouping in the last ulp — the usual
//! caveat of any parallel fold; integer/bool aggregators are exact.)
//!
//! Superstep phases (all drivers):
//!
//! 1. **compute** — every worker runs `compute` on its runnable vertices
//!    (tracked in a sorted per-worker worklist, so sparse supersteps cost
//!    `O(active)`, not `O(n)`) and buckets outgoing messages by destination
//!    worker, folding them per destination vertex when the program has a
//!    combiner;
//! 2. **delivery** — every worker drains the buffers addressed to it *in
//!    fixed sender order*, so message delivery order is deterministic
//!    regardless of thread scheduling;
//! 3. **master** — aggregators and statistics are merged in worker order,
//!    the program's master-compute hook runs, and the run stops or
//!    continues.
//!
//! The engine never holds a lock across a barrier, and every shared mutex
//! is either per-worker (uncontended) or touched only in the serial master
//! phase.

use crate::aggregate::{AggValue, AggregatorDef};
use crate::barrier::PhaseBarrier;
use crate::metrics::{
    BufferStats, HaltReason, PerVertexStats, RunStats, SuperstepStats, WorkerStats,
};
use crate::partition::{Partitioner, Partitioning};
use crate::pool::{BufferCounters, OutboxSlot};
use crate::program::{Combiner, Context, MasterContext, Outgoing, VertexProgram};
use crate::state_size::StateSize;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vcgp_graph::{Graph, VertexId};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct PregelConfig {
    /// Number of logical workers `p` (the processor count of the BSP cost
    /// model): the partitioning, worklist, and statistics domain. Defaults
    /// to the machine parallelism, capped at 8; the `VCGP_WORKERS`
    /// environment variable overrides the default (so service deployments
    /// can use every core without code changes).
    pub num_workers: usize,
    /// Number of OS threads executing those workers. `0` (the default)
    /// resolves to `min(num_workers, machine cores)` — workers beyond the
    /// core count are multiplexed instead of oversubscribing the scheduler,
    /// which is what used to make W=4 *slower* than W=1 on small machines.
    /// The `VCGP_THREADS` environment variable overrides the default.
    /// Results are identical for every thread count.
    pub num_threads: usize,
    /// Hard cap on supersteps (a safety net; converging algorithms never
    /// reach it).
    pub max_supersteps: u64,
    /// Seed for the deterministic per-vertex RNG ([`Context::rng`]).
    pub seed: u64,
    /// Record per-vertex maxima (messages, work, state bytes) for the BPPA
    /// checker. Adds O(n) bookkeeping per superstep and disables
    /// *sender-side* combining (per-message receive counts must stay
    /// exact) as well as work stealing; off by default.
    pub track_per_vertex: bool,
    /// Vertex-to-worker assignment strategy. Defaults to hash; the
    /// `VCGP_PARTITIONING` environment variable (`hash` / `range`)
    /// overrides the default, mirroring `VCGP_WORKERS`.
    pub partitioning: Partitioning,
    /// Work-stealing granularity for the threaded driver, in worklist
    /// entries per chunk; `0` disables stealing (each worker's list runs
    /// entirely on its home thread). Ignored when one thread runs the show.
    /// The `VCGP_STEAL_CHUNK` environment variable overrides the default
    /// ([`DEFAULT_STEAL_CHUNK`]). Results are identical either way.
    pub steal_chunk: usize,
}

/// Hard sanity cap on `VCGP_WORKERS` / `VCGP_THREADS`: more than this is
/// never a deliberate configuration on current hardware.
const MAX_ENV_WORKERS: usize = 1024;

/// Default work-stealing chunk size: big enough that claim/merge overhead
/// amortizes to noise, small enough that a skewed worklist splits across
/// threads.
pub const DEFAULT_STEAL_CHUNK: usize = 1024;

/// Upper bound accepted for `VCGP_STEAL_CHUNK`.
const MAX_STEAL_CHUNK: usize = 1 << 30;

/// The machine's core count, resolved once per process.
fn machine_parallelism() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

impl PregelConfig {
    /// Resolves the default worker count from an optional `VCGP_WORKERS`
    /// value: a valid positive integer (at most [`MAX_ENV_WORKERS`]) wins;
    /// anything else — unset, unparsable, zero, absurd — falls back to
    /// `fallback`. Split out (and public) so the validation is testable
    /// without mutating process-global environment state.
    pub fn workers_from_env(value: Option<&str>, fallback: usize) -> usize {
        value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| (1..=MAX_ENV_WORKERS).contains(&w))
            .unwrap_or(fallback)
    }

    /// Resolves the default thread count from an optional `VCGP_THREADS`
    /// value. `0` is *valid* here and means "auto" (`min(workers, cores)`);
    /// positive integers up to [`MAX_ENV_WORKERS`] pin the count; anything
    /// else falls back to `fallback`.
    pub fn threads_from_env(value: Option<&str>, fallback: usize) -> usize {
        value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t <= MAX_ENV_WORKERS)
            .unwrap_or(fallback)
    }

    /// Resolves the default steal-chunk size from an optional
    /// `VCGP_STEAL_CHUNK` value. `0` is valid and disables stealing;
    /// positive sizes up to [`MAX_STEAL_CHUNK`] win; anything else falls
    /// back to `fallback`.
    pub fn steal_chunk_from_env(value: Option<&str>, fallback: usize) -> usize {
        value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c <= MAX_STEAL_CHUNK)
            .unwrap_or(fallback)
    }

    /// Resolves the default partitioning from an optional
    /// `VCGP_PARTITIONING` value: `"hash"` or `"range"` (case-insensitive,
    /// surrounding whitespace ignored) wins; anything else — unset, empty,
    /// misspelled — falls back to `fallback`. Split out (and public) for
    /// the same reason as [`PregelConfig::workers_from_env`]: service
    /// deployments switch strategies without code changes, and the
    /// validation is testable without mutating process-global state.
    pub fn partitioning_from_env(value: Option<&str>, fallback: Partitioning) -> Partitioning {
        match value.map(str::trim) {
            Some(v) if v.eq_ignore_ascii_case("hash") => Partitioning::Hash,
            Some(v) if v.eq_ignore_ascii_case("range") => Partitioning::Range,
            _ => fallback,
        }
    }

    /// The OS thread count this configuration actually runs with: the
    /// explicit `num_threads` if set, else the machine's core count, never
    /// more than the worker count and never less than one.
    pub fn resolved_threads(&self) -> usize {
        let w = self.num_workers.max(1);
        let t = if self.num_threads == 0 {
            machine_parallelism()
        } else {
            self.num_threads
        };
        t.min(w).max(1)
    }
}

impl Default for PregelConfig {
    fn default() -> Self {
        let hardware = machine_parallelism().min(8);
        let env = std::env::var("VCGP_WORKERS").ok();
        let workers = PregelConfig::workers_from_env(env.as_deref(), hardware);
        let threads_env = std::env::var("VCGP_THREADS").ok();
        let threads = PregelConfig::threads_from_env(threads_env.as_deref(), 0);
        let chunk_env = std::env::var("VCGP_STEAL_CHUNK").ok();
        let steal_chunk =
            PregelConfig::steal_chunk_from_env(chunk_env.as_deref(), DEFAULT_STEAL_CHUNK);
        let part_env = std::env::var("VCGP_PARTITIONING").ok();
        let partitioning =
            PregelConfig::partitioning_from_env(part_env.as_deref(), Partitioning::Hash);
        PregelConfig {
            num_workers: workers,
            num_threads: threads,
            max_supersteps: 1_000_000,
            seed: 0x5653_4750,
            track_per_vertex: false,
            partitioning,
            steal_chunk,
        }
    }
}

impl PregelConfig {
    /// A single-worker configuration (serial BSP; useful for debugging and
    /// microbenchmarks).
    pub fn single_worker() -> Self {
        PregelConfig {
            num_workers: 1,
            ..Default::default()
        }
    }

    /// Sets the logical worker count.
    pub fn with_workers(mut self, w: usize) -> Self {
        assert!(w >= 1, "at least one worker required");
        self.num_workers = w;
        self
    }

    /// Sets the OS thread count (`0` = auto: `min(workers, cores)`).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.num_threads = t;
        self
    }

    /// Sets the work-stealing chunk size (`0` disables stealing).
    pub fn with_steal_chunk(mut self, c: usize) -> Self {
        self.steal_chunk = c;
        self
    }

    /// Sets the superstep cap.
    pub fn with_max_supersteps(mut self, cap: u64) -> Self {
        self.max_supersteps = cap;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-vertex tracking.
    pub fn with_per_vertex_tracking(mut self) -> Self {
        self.track_per_vertex = true;
        self
    }

    /// Sets the vertex-to-worker partitioning strategy.
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }
}

/// Runs `program` on `graph` starting from `P::Value::default()` at every
/// vertex.
pub fn run<P>(program: &P, graph: &Graph, config: &PregelConfig) -> (Vec<P::Value>, RunStats)
where
    P: VertexProgram,
    P::Value: Default,
{
    let values = (0..graph.num_vertices())
        .map(|_| P::Value::default())
        .collect();
    run_with_values(program, graph, values, config)
}

/// Per-worker mutable state. During a run exactly one thread touches it at
/// a time (which thread rotates with the phase protocol); afterwards it is
/// reassembled into the caller's result.
struct WorkerState<V, M> {
    /// Global vertex ids owned by this worker (`me`, `me + W`, ...).
    ids: Vec<VertexId>,
    values: Vec<V>,
    active: Vec<bool>,
    inbox: Vec<Vec<M>>,
    /// Sorted local indices to run this superstep.
    run_list: Vec<u32>,
    /// Local indices collected for the next superstep (phase A survivors +
    /// phase B reactivations), sorted at the end of delivery.
    next_run: Vec<u32>,
    pv: Option<PerVertexLocal>,
}

/// Per-vertex tracking arrays local to one worker (indexed like `ids`).
struct PerVertexLocal {
    max_sent: Vec<u64>,
    max_received: Vec<u64>,
    max_work: Vec<u64>,
    max_state_bytes: Vec<u64>,
    recv_cur: Vec<u64>,
}

impl PerVertexLocal {
    fn new(k: usize) -> Self {
        PerVertexLocal {
            max_sent: vec![0; k],
            max_received: vec![0; k],
            max_work: vec![0; k],
            max_state_bytes: vec![0; k],
            recv_cur: vec![0; k],
        }
    }
}

/// Scratch slot written by one worker each superstep and read by the master
/// phase.
#[derive(Default)]
struct Scratch {
    stats: WorkerStats,
    delivered: u64,
    combined_sender: u64,
    buffers: BufferCounters,
    inbox_capacity: u64,
    next_active: usize,
    ran: usize,
    chunks: u64,
    chunks_stolen: u64,
}

/// Master-phase decisions shared back to all workers.
struct Control {
    stop: bool,
    reason: HaltReason,
    reactivate: bool,
}

/// Runs `program` on `graph` with explicit initial vertex values.
///
/// Returns the final vertex values (indexed by vertex id) and the run's
/// instrumentation.
///
/// # Panics
/// Panics if `values.len() != graph.num_vertices()`.
pub fn run_with_values<P>(
    program: &P,
    graph: &Graph,
    values: Vec<P::Value>,
    config: &PregelConfig,
) -> (Vec<P::Value>, RunStats)
where
    P: VertexProgram,
{
    let n = graph.num_vertices();
    assert_eq!(values.len(), n, "one initial value per vertex required");
    let w = config.num_workers.max(1);
    let t = config.resolved_threads();
    let partitioner = Partitioner::new(config.partitioning, n, w);
    let started = Instant::now();

    let agg_defs = program.aggregators();
    let identities: Vec<AggValue> = agg_defs.iter().map(|d| d.op.identity()).collect();

    // Distribute vertices and their values round-robin over workers.
    let mut states: Vec<WorkerState<P::Value, P::Message>> = (0..w)
        .map(|_| WorkerState {
            ids: Vec::new(),
            values: Vec::new(),
            active: Vec::new(),
            inbox: Vec::new(),
            run_list: Vec::new(),
            next_run: Vec::new(),
            pv: None,
        })
        .collect();
    for (v, value) in values.into_iter().enumerate() {
        let st = &mut states[partitioner.owner(v as VertexId)];
        st.ids.push(v as VertexId);
        st.values.push(value);
    }
    for st in states.iter_mut() {
        let k = st.ids.len();
        st.active = vec![true; k];
        st.inbox = (0..k).map(|_| Vec::new()).collect();
        st.run_list = (0..k as u32).collect();
        st.next_run = Vec::with_capacity(k);
        if config.track_per_vertex {
            st.pv = Some(PerVertexLocal::new(k));
        }
    }

    let (states, reason, log) = if t == 1 {
        let (reason, log) = run_serial(
            program,
            graph,
            config,
            partitioner,
            &agg_defs,
            &identities,
            &mut states,
        );
        (states, reason, log)
    } else {
        run_threaded(
            program,
            graph,
            config,
            t,
            partitioner,
            &agg_defs,
            &identities,
            states,
        )
    };

    // Reassemble results by vertex id.
    let mut out_values: Vec<Option<P::Value>> = (0..n).map(|_| None).collect();
    let mut per_vertex = if config.track_per_vertex {
        Some(PerVertexStats::new(n))
    } else {
        None
    };
    for st in states {
        let pv_local = st.pv;
        for (li, (id, value)) in st.ids.iter().zip(st.values).enumerate() {
            let gi = *id as usize;
            out_values[gi] = Some(value);
            if let (Some(pv_out), Some(pv)) = (per_vertex.as_mut(), pv_local.as_ref()) {
                pv_out.max_sent[gi] = pv.max_sent[li];
                pv_out.max_received[gi] = pv.max_received[li];
                pv_out.max_work[gi] = pv.max_work[li];
                pv_out.max_state_bytes[gi] = pv.max_state_bytes[li];
            }
        }
    }
    let final_values: Vec<P::Value> = out_values
        .into_iter()
        .map(|v| v.expect("every vertex assigned to exactly one worker"))
        .collect();

    let stats = RunStats {
        superstep_stats: log,
        num_workers: w,
        halt_reason: reason,
        per_vertex,
        wall: started.elapsed(),
    };
    (final_values, stats)
}

/// Decides whether this superstep is the run's last, given the master
/// hook's outcome; shared by both drivers so the halt policy cannot drift.
fn stop_decision(
    halt: bool,
    reactivate: bool,
    active_next: usize,
    superstep: u64,
    max_supersteps: u64,
) -> (bool, HaltReason) {
    if halt {
        (true, HaltReason::MasterHalted)
    } else if active_next == 0 && !reactivate {
        (true, HaltReason::Converged)
    } else if superstep + 1 >= max_supersteps {
        (true, HaltReason::MaxSupersteps)
    } else {
        (false, HaltReason::Converged)
    }
}

/// Runs the compute phase for every vertex on `st.run_list`: invokes the
/// program, pushes messages into `out`, pushes still-active local indices
/// into `st.next_run`. Returns `(work, sent, inbox_capacity)`.
#[allow(clippy::too_many_arguments)]
fn compute_worker<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    seed: u64,
    partitioner: Partitioner,
    superstep: u64,
    st: &mut WorkerState<P::Value, P::Message>,
    out: &mut Outgoing<P::Message>,
    agg_prev: &[AggValue],
    globals: &[AggValue],
    agg_defs: &[AggregatorDef],
    agg_partial: &mut [AggValue],
) -> (u64, u64, u64) {
    let run_list = std::mem::take(&mut st.run_list);
    let mut work_total = 0u64;
    let mut sent_total = 0u64;
    let mut inbox_capacity = 0u64;
    for &li32 in &run_list {
        let li = li32 as usize;
        // One unit for the invocation plus one per message processed.
        let mut vwork = 1 + st.inbox[li].len() as u64;
        let mut vsent = 0u64;
        let mut halted = false;
        {
            let mut ctx = Context::<P> {
                id: st.ids[li],
                superstep,
                graph,
                value: &mut st.values[li],
                halted: &mut halted,
                out,
                partitioner,
                agg_prev,
                agg_partial,
                agg_defs,
                globals,
                work: &mut vwork,
                sent: &mut vsent,
                seed,
            };
            program.compute(&mut ctx, &st.inbox[li]);
        }
        // Clear instead of dropping: the inbox keeps its capacity for
        // the next delivery phase. Vecs of zero-sized messages report
        // usize::MAX capacity; count those as zero instead.
        if std::mem::size_of::<P::Message>() > 0 {
            inbox_capacity += st.inbox[li].capacity() as u64;
        }
        st.inbox[li].clear();
        st.active[li] = !halted;
        if !halted {
            st.next_run.push(li32);
        }
        work_total += vwork;
        sent_total += vsent;
        if let Some(pv) = st.pv.as_mut() {
            pv.max_sent[li] = pv.max_sent[li].max(vsent);
            pv.max_work[li] = pv.max_work[li].max(vwork);
            pv.max_state_bytes[li] =
                pv.max_state_bytes[li].max(st.values[li].state_bytes() as u64);
        }
    }
    st.run_list = run_list;
    (work_total, sent_total, inbox_capacity)
}

/// Drains one sender-ordered lane of `(dest, msg)` pairs addressed to `st`
/// into its per-vertex inboxes, applying the receiver-side combining
/// backstop, counting per-vertex receipts when tracking, and scheduling
/// reactivated vertices onto `st.next_run`. Returns the delivered count.
fn deliver_lane<V, M>(
    st: &mut WorkerState<V, M>,
    partitioner: Partitioner,
    combiner: Option<Combiner<M>>,
    buf: &mut Vec<(VertexId, M)>,
) -> u64 {
    let mut delivered = 0u64;
    // One pass per lane, combiner branch hoisted out of the loop.
    match combiner {
        Some(combine) => {
            for (to, msg) in buf.drain(..) {
                let li = partitioner.local_index(to);
                if let Some(pv) = st.pv.as_mut() {
                    pv.recv_cur[li] += 1;
                }
                let inbox = &mut st.inbox[li];
                if inbox.is_empty() {
                    inbox.push(msg);
                    delivered += 1;
                    // First message: schedule a halted vertex.
                    if !st.active[li] {
                        st.next_run.push(li as u32);
                    }
                } else {
                    combine(&mut inbox[0], msg);
                }
            }
        }
        None => {
            for (to, msg) in buf.drain(..) {
                let li = partitioner.local_index(to);
                if let Some(pv) = st.pv.as_mut() {
                    pv.recv_cur[li] += 1;
                }
                let inbox = &mut st.inbox[li];
                inbox.push(msg);
                delivered += 1;
                if inbox.len() == 1 && !st.active[li] {
                    st.next_run.push(li as u32);
                }
            }
        }
    }
    delivered
}

// ---------------------------------------------------------------------------
// Serial driver (T == 1)
// ---------------------------------------------------------------------------

/// Runs all `W` workers multiplexed on the calling thread. No barriers, no
/// outbox matrix, no per-phase synchronization of any kind: workers compute
/// in ascending order into one shared outgoing buffer set, whose per-
/// receiver lanes then already hold the sender-ordered stream that the
/// threaded delivery phase reconstructs from outbox slots. Delivery drains
/// each lane in place, so the only recurring buffers are the `W` lanes and
/// the per-vertex inboxes — both recycled, so steady-state supersteps stay
/// allocation-free.
fn run_serial<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    cfg: &PregelConfig,
    partitioner: Partitioner,
    agg_defs: &[AggregatorDef],
    identities: &[AggValue],
    states: &mut [WorkerState<P::Value, P::Message>],
) -> (HaltReason, Vec<SuperstepStats>) {
    let w = states.len();
    let combiner = program.combiner();
    // Sender-side combining folds per-message receive counts away, so it is
    // disabled in per-vertex tracking mode; the receiver-side backstop then
    // does all the combining, exactly as before the sender stage existed.
    let sender_combiner = if cfg.track_per_vertex { None } else { combiner };
    let mut out: Outgoing<P::Message> = Outgoing::new(w, graph.num_vertices(), sender_combiner);
    let mut counters = BufferCounters::default();
    // First use of a lane is the allocation event; afterwards the in-place
    // drain recycles its capacity every superstep.
    let mut lane_seen = vec![false; w];
    let mut agg_merged = identities.to_vec();
    let mut globals = program.globals();
    let mut log: Vec<SuperstepStats> = Vec::new();
    let mut superstep: u64 = 0;
    loop {
        // ---- Phase A: compute (workers in ascending order) --------------
        let agg_prev = agg_merged.clone();
        let mut worker_stats = vec![WorkerStats::default(); w];
        let mut agg_partials: Vec<Vec<AggValue>> = Vec::with_capacity(w);
        let mut ran_total = 0usize;
        let mut sent_total = 0u64;
        let mut inbox_capacity = 0u64;
        for (me, st) in states.iter_mut().enumerate() {
            let t0 = Instant::now();
            let mut agg_partial = identities.to_vec();
            ran_total += st.run_list.len();
            let (work, sent, caps) = compute_worker(
                program,
                graph,
                cfg.seed,
                partitioner,
                superstep,
                st,
                &mut out,
                &agg_prev,
                &globals,
                agg_defs,
                &mut agg_partial,
            );
            sent_total += sent;
            inbox_capacity += caps;
            worker_stats[me] = WorkerStats {
                work,
                sent,
                wall: t0.elapsed(),
                ..Default::default()
            };
            agg_partials.push(agg_partial);
        }
        let combined_sender = out.combined;

        // ---- Phase B: delivery ------------------------------------------
        let mut delivered_total = 0u64;
        let mut active_next_total = 0usize;
        for (me, st) in states.iter_mut().enumerate() {
            let lane = &mut out.lanes[me];
            let folded = std::mem::take(&mut lane.folded);
            if !lane.buf.is_empty() {
                counters.note(if lane_seen[me] { lane.buf.capacity() } else { 0 });
                lane_seen[me] = true;
            }
            // `r_i` keeps its algorithm-level meaning: sends folded in the
            // shared buffers still count as received here.
            worker_stats[me].received = lane.buf.len() as u64 + folded;
            if let Some(pv) = st.pv.as_mut() {
                pv.recv_cur.iter_mut().for_each(|c| *c = 0);
            }
            delivered_total += deliver_lane(st, partitioner, combiner, &mut lane.buf);
            if let Some(pv) = st.pv.as_mut() {
                for li in 0..pv.recv_cur.len() {
                    pv.max_received[li] = pv.max_received[li].max(pv.recv_cur[li]);
                }
            }
            // The run list is exactly the set that a full scan would count:
            // phase A pushed the still-active vertices, delivery pushed the
            // halted ones that just received mail — disjoint by the
            // `active` check, so no vertex appears twice.
            st.next_run.sort_unstable();
            active_next_total += st.next_run.len();
        }
        out.begin_superstep();

        // ---- Phase C: master --------------------------------------------
        let mut merged = identities.to_vec();
        for partial in agg_partials {
            for (idx, v) in partial.into_iter().enumerate() {
                agg_defs[idx].op.fold(&mut merged[idx], v);
            }
        }
        let taken = counters.take();
        log.push(SuperstepStats {
            workers: worker_stats,
            active: ran_total,
            messages_sent: sent_total,
            messages_delivered: delivered_total,
            messages_combined_sender: combined_sender,
            buffers: BufferStats {
                allocated: taken.allocated,
                recycled: taken.recycled,
                inbox_capacity,
            },
            aggregates: merged.clone(),
            ..Default::default()
        });
        let mut mc = MasterContext {
            superstep,
            num_vertices: graph.num_vertices(),
            active: active_next_total,
            aggregates: &merged,
            globals: &mut globals,
            halt: false,
            reactivate_all: false,
        };
        program.master_compute(&mut mc);
        let (halt, reactivate) = (mc.halt, mc.reactivate_all);
        agg_merged = merged;
        let (stop, reason) = stop_decision(
            halt,
            reactivate,
            active_next_total,
            superstep,
            cfg.max_supersteps,
        );
        for st in states.iter_mut() {
            if reactivate {
                st.active.iter_mut().for_each(|a| *a = true);
                st.run_list.clear();
                st.run_list.extend(0..st.ids.len() as u32);
            } else {
                std::mem::swap(&mut st.run_list, &mut st.next_run);
            }
            st.next_run.clear();
        }
        if stop {
            return (reason, log);
        }
        superstep += 1;
    }
}

// ---------------------------------------------------------------------------
// Threaded driver (T > 1)
// ---------------------------------------------------------------------------

/// An `UnsafeCell` that is `Sync`. Exclusive access is enforced by the
/// engine's phase protocol — barriers and atomic claim counters — not by
/// the type system; every dereference site documents which protocol rule
/// makes it data-race free.
#[repr(transparent)]
struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: the phase protocol (documented at each `get()` dereference)
// guarantees that at most one thread holds a mutable reference at a time,
// with barrier-ordered handoffs between phases.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn new(v: T) -> Self {
        SyncCell(UnsafeCell::new(v))
    }
    fn get(&self) -> *mut T {
        self.0.get()
    }
    fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// Raw element pointers into one worker's state arrays, published by the
/// worker's home thread so chunk executors (possibly on other threads) can
/// write provably disjoint vertices without materializing aliasing `&mut`
/// references to whole arrays. The array pointers stay valid for the whole
/// run — those Vecs never reallocate after construction; `run`/`run_len`
/// are republished each superstep because the worklists ping-pong.
struct StateView<V, M> {
    ids: *const VertexId,
    values: *mut V,
    active: *mut bool,
    inbox: *mut Vec<M>,
    run: *const u32,
    run_len: usize,
}

// SAFETY: the pointers target heap buffers owned by `WorkerState<V, M>`,
// whose element types are `Send`; the view is only a capability to reach
// them, gated by the same phase protocol as `SyncCell`.
unsafe impl<V: Send, M: Send> Send for StateView<V, M> {}

/// One chunk's buffered outputs: its own lane set (so `Context::send` works
/// unchanged), the survivors, the aggregator partial, and the counters.
/// Pooled and recycled across supersteps.
struct ChunkBuf<M> {
    chunk: usize,
    ran: usize,
    out: Outgoing<M>,
    next: Vec<u32>,
    agg: Vec<AggValue>,
    work: u64,
    sent: u64,
    inbox_capacity: u64,
    wall: Duration,
    stolen: bool,
    /// Newly constructed this acquisition (an allocation event) rather than
    /// recycled from the pool.
    fresh: bool,
}

/// Everything shared between the threads of one run.
struct ParShared<'a, P: VertexProgram> {
    program: &'a P,
    graph: &'a Graph,
    cfg: &'a PregelConfig,
    w: usize,
    /// Resolved steal chunk size; 0 = stealing disabled (direct mode).
    steal_chunk: usize,
    partitioner: Partitioner,
    agg_defs: &'a [AggregatorDef],
    identities: &'a [AggValue],
    workers: Vec<ParWorker<P::Value, P::Message>>,
    /// worker -> home thread.
    home: Vec<usize>,
    /// thread -> contiguous owned worker range.
    blocks: Vec<std::ops::Range<usize>>,
    /// `outboxes[sender][receiver]`: written by the thread that completes
    /// the sender's compute, read by the receiver's home thread after the
    /// compute barrier. The barrier's release/acquire edge replaces the
    /// per-slot mutex the engine used to take `W^2` times per superstep.
    outboxes: Vec<Vec<SyncCell<OutboxSlot<P::Message>>>>,
    /// Free list of chunk buffers, shared so the pool stabilizes regardless
    /// of which thread executes which chunk.
    chunk_pool: Mutex<Vec<ChunkBuf<P::Message>>>,
    barrier: PhaseBarrier,
    agg_merged: Mutex<Vec<AggValue>>,
    globals: Mutex<Vec<AggValue>>,
    control: Mutex<Control>,
    superstep_log: Mutex<Vec<SuperstepStats>>,
    /// Per-thread barrier-wait accumulators, drained by the master phase.
    thread_waits: Vec<Mutex<u64>>,
}

/// Per-worker shared harness for the threaded driver.
struct ParWorker<V, M> {
    state: SyncCell<WorkerState<V, M>>,
    view: SyncCell<StateView<V, M>>,
    /// The worker's master outgoing buffers (lanes + combining tables).
    out: SyncCell<Outgoing<M>>,
    /// Number of worklist chunks this superstep.
    chunks: AtomicUsize,
    /// Next chunk index to claim.
    cursor: AtomicUsize,
    /// Chunks claimed but not yet completed; the thread that decrements it
    /// to zero merges and flushes.
    outstanding: AtomicUsize,
    /// Completed chunk outputs awaiting the ordered merge.
    done: Mutex<Vec<ChunkBuf<M>>>,
    scratch: Mutex<Scratch>,
    agg_partial: Mutex<Vec<AggValue>>,
}

/// Spawns `t` threads over contiguous worker blocks and runs the superstep
/// loop to completion. Returns the states (for reassembly), the halt
/// reason, and the superstep log.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn run_threaded<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    cfg: &PregelConfig,
    t: usize,
    partitioner: Partitioner,
    agg_defs: &[AggregatorDef],
    identities: &[AggValue],
    states: Vec<WorkerState<P::Value, P::Message>>,
) -> (
    Vec<WorkerState<P::Value, P::Message>>,
    HaltReason,
    Vec<SuperstepStats>,
) {
    let w = states.len();
    let combiner = program.combiner();
    let sender_combiner = if cfg.track_per_vertex { None } else { combiner };
    // Per-vertex tracking already implies exact per-message accounting and
    // is a measurement mode, not a throughput mode; keep it on the simple
    // direct path.
    let steal_chunk = if cfg.track_per_vertex {
        0
    } else {
        cfg.steal_chunk
    };
    let workers: Vec<ParWorker<P::Value, P::Message>> = states
        .into_iter()
        .map(|mut st| {
            let view = StateView {
                ids: st.ids.as_ptr(),
                values: st.values.as_mut_ptr(),
                active: st.active.as_mut_ptr(),
                inbox: st.inbox.as_mut_ptr(),
                run: st.run_list.as_ptr(),
                run_len: st.run_list.len(),
            };
            let chunks = if steal_chunk == 0 {
                0
            } else {
                st.run_list.len().div_ceil(steal_chunk)
            };
            ParWorker {
                // Moving `st` into the cell moves the Vec headers, not
                // their heap buffers, so the view's pointers stay valid.
                state: SyncCell::new(st),
                view: SyncCell::new(view),
                out: SyncCell::new(Outgoing::new(w, graph.num_vertices(), sender_combiner)),
                chunks: AtomicUsize::new(chunks),
                cursor: AtomicUsize::new(0),
                outstanding: AtomicUsize::new(chunks),
                done: Mutex::new(Vec::new()),
                scratch: Mutex::new(Scratch::default()),
                agg_partial: Mutex::new(identities.to_vec()),
            }
        })
        .collect();
    let blocks: Vec<std::ops::Range<usize>> =
        (0..t).map(|i| (i * w / t)..((i + 1) * w / t)).collect();
    let mut home = vec![0usize; w];
    for (ti, r) in blocks.iter().enumerate() {
        for wi in r.clone() {
            home[wi] = ti;
        }
    }
    let sh = ParShared::<P> {
        program,
        graph,
        cfg,
        w,
        steal_chunk,
        partitioner,
        agg_defs,
        identities,
        workers,
        home,
        blocks,
        outboxes: (0..w)
            .map(|_| (0..w).map(|_| SyncCell::new(OutboxSlot::default())).collect())
            .collect(),
        chunk_pool: Mutex::new(Vec::new()),
        // Spinning at the barrier only helps when every thread can own a
        // core; otherwise it burns the timeslice the straggler needs.
        barrier: PhaseBarrier::new(t, t <= machine_parallelism()),
        agg_merged: Mutex::new(identities.to_vec()),
        globals: Mutex::new(program.globals()),
        control: Mutex::new(Control {
            stop: false,
            reason: HaltReason::Converged,
            reactivate: false,
        }),
        superstep_log: Mutex::new(Vec::new()),
        thread_waits: (0..t).map(|_| Mutex::new(0)).collect(),
    };

    // Prefill the chunk-buffer pool with superstep 0's chunk count. Every
    // vertex is active in superstep 0, so no later superstep can schedule
    // more chunks than this; with the pool full up front, chunk acquisition
    // never allocates, deterministically — the steady-state invariant can't
    // depend on how the scheduler interleaved earlier merges and releases.
    if steal_chunk > 0 {
        let total: usize = sh
            .workers
            .iter()
            .map(|pw| pw.chunks.load(Ordering::Relaxed))
            .sum();
        let mut pool = sh.chunk_pool.lock().unwrap();
        for _ in 0..total {
            pool.push(ChunkBuf {
                chunk: 0,
                ran: 0,
                out: Outgoing::new_hashed(w, sender_combiner),
                next: Vec::new(),
                agg: identities.to_vec(),
                work: 0,
                sent: 0,
                inbox_capacity: 0,
                wall: Duration::ZERO,
                stolen: false,
                // Startup infrastructure, like the outgoing lanes: not a
                // per-superstep allocation event.
                fresh: false,
            });
        }
    }

    std::thread::scope(|scope| {
        for t_id in 0..t {
            let sh = &sh;
            scope.spawn(move || par_thread(t_id, sh));
        }
    });

    let control = sh.control.into_inner().unwrap();
    let log = sh.superstep_log.into_inner().unwrap();
    let states = sh
        .workers
        .into_iter()
        .map(|pw| pw.state.into_inner())
        .collect();
    (states, control.reason, log)
}

/// The per-thread superstep loop: compute (direct or stealing), compute
/// barrier, delivery + next-superstep setup for owned workers, delivery
/// barrier with the master phase in the leader closure.
fn par_thread<P: VertexProgram>(t_id: usize, sh: &ParShared<'_, P>) {
    let my = sh.blocks[t_id].clone();
    let combiner = sh.program.combiner();
    let sender_combiner = if sh.cfg.track_per_vertex {
        None
    } else {
        combiner
    };
    let mut delivery_scratch: Vec<(VertexId, P::Message)> = Vec::new();
    let mut superstep: u64 = 0;
    let mut wait_ns: u64 = 0;
    loop {
        // ---- Phase A: compute -------------------------------------------
        let agg_prev = sh.agg_merged.lock().unwrap().clone();
        let globals_snapshot = sh.globals.lock().unwrap().clone();
        if sh.steal_chunk > 0 {
            // Own workers first (cache affinity), then one sweep over the
            // others for leftover chunks. After the sweep every cursor is
            // exhausted, so nothing claimable remains.
            for wi in my.clone() {
                drain_chunks(t_id, wi, sh, superstep, &agg_prev, &globals_snapshot, sender_combiner);
            }
            for off in 0..sh.w {
                let wi = (my.end + off) % sh.w;
                if my.contains(&wi) {
                    continue;
                }
                drain_chunks(t_id, wi, sh, superstep, &agg_prev, &globals_snapshot, sender_combiner);
            }
        } else {
            for wi in my.clone() {
                compute_direct(wi, sh, superstep, &agg_prev, &globals_snapshot);
            }
        }
        wait_ns += sh.barrier.wait();

        // ---- Phase B: delivery + next-superstep setup (owned workers) ---
        for wi in my.clone() {
            deliver_worker(wi, sh, combiner, &mut delivery_scratch);
        }
        // Publish this thread's barrier waits before the master (inside the
        // next barrier) drains them; the wait at that barrier itself is
        // only known afterwards and lands in the next superstep's entry.
        *sh.thread_waits[t_id].lock().unwrap() += wait_ns;
        wait_ns = 0;

        // ---- Phase C: master, inside the delivery barrier ---------------
        let (_, b2_wait) = sh.barrier.wait_leader(|| master_phase(sh, superstep));
        wait_ns += b2_wait;
        let (stop, reactivate) = {
            let ctl = sh.control.lock().unwrap();
            (ctl.stop, ctl.reactivate)
        };
        if reactivate {
            for wi in my.clone() {
                // SAFETY: between the master barrier and the reactivation
                // barrier below, only the home thread (us) touches its
                // workers' state.
                let st = unsafe { &mut *sh.workers[wi].state.get() };
                st.active.iter_mut().for_each(|a| *a = true);
                st.run_list.clear();
                st.run_list.extend(0..st.ids.len() as u32);
                publish_schedule(&sh.workers[wi], sh.steal_chunk);
            }
            // Extra barrier only on reactivation supersteps: the rebuilt
            // worklists must be republished before anyone computes.
            wait_ns += sh.barrier.wait();
        }
        if stop {
            break;
        }
        superstep += 1;
    }
}

/// Republishes a worker's worklist view and resets its chunk schedule.
/// Called only while the home thread has exclusive access (startup is
/// handled in the constructor; afterwards: end of delivery, or the
/// reactivation window), so the next compute phase — on the far side of a
/// barrier — sees a consistent schedule.
fn publish_schedule<V, M>(pw: &ParWorker<V, M>, steal_chunk: usize) {
    let run_len;
    // SAFETY: exclusive home-thread access per the contract above; readers
    // are released by a later barrier.
    unsafe {
        let st = &mut *pw.state.get();
        let view = &mut *pw.view.get();
        view.run = st.run_list.as_ptr();
        view.run_len = st.run_list.len();
        run_len = view.run_len;
    }
    let chunks = if steal_chunk == 0 {
        0
    } else {
        run_len.div_ceil(steal_chunk)
    };
    pw.cursor.store(0, Ordering::Relaxed);
    pw.outstanding.store(chunks, Ordering::Relaxed);
    pw.chunks.store(chunks, Ordering::Release);
}

/// Direct (non-stealing) compute for one worker, on whatever thread owns
/// it this phase: the exact sequential semantics of `compute_worker`, plus
/// the flush into the outbox row.
fn compute_direct<P: VertexProgram>(
    wi: usize,
    sh: &ParShared<'_, P>,
    superstep: u64,
    agg_prev: &[AggValue],
    globals: &[AggValue],
) {
    let pw = &sh.workers[wi];
    // SAFETY: compute phase with stealing disabled — only the home thread
    // (us) touches this worker's state and outgoing buffers; receivers read
    // the outbox row only after the compute barrier.
    let st = unsafe { &mut *pw.state.get() };
    let out = unsafe { &mut *pw.out.get() };
    let t0 = Instant::now();
    let ran = st.run_list.len();
    let mut agg_partial = sh.identities.to_vec();
    let (work, sent, inbox_capacity) = compute_worker(
        sh.program,
        sh.graph,
        sh.cfg.seed,
        sh.partitioner,
        superstep,
        st,
        out,
        agg_prev,
        globals,
        sh.agg_defs,
        &mut agg_partial,
    );
    let wall = t0.elapsed();
    let combined = out.combined;
    let buffers = flush_out(wi, sh, out);
    {
        let mut sc = pw.scratch.lock().unwrap();
        sc.stats = WorkerStats {
            work,
            sent,
            received: 0,
            wall,
            stolen_chunks: 0,
        };
        sc.delivered = 0;
        sc.combined_sender = combined;
        sc.buffers = buffers;
        sc.inbox_capacity = inbox_capacity;
        sc.next_active = 0;
        sc.ran = ran;
        sc.chunks = 0;
        sc.chunks_stolen = 0;
    }
    *pw.agg_partial.lock().unwrap() = agg_partial;
}

/// Ships `out`'s nonempty lanes into worker `wi`'s outbox row and resets
/// the combining tables for the next superstep. Returns this flush's
/// buffer-recycling events.
fn flush_out<P: VertexProgram>(
    wi: usize,
    sh: &ParShared<'_, P>,
    out: &mut Outgoing<P::Message>,
) -> BufferCounters {
    let mut counters = BufferCounters::default();
    for (dw, lane) in out.lanes.iter_mut().enumerate() {
        if lane.buf.is_empty() {
            debug_assert_eq!(lane.folded, 0, "folds without buffered messages");
            continue;
        }
        // SAFETY: compute phase — row `wi` is written only by the single
        // thread that completed `wi`'s compute (us); receivers read their
        // column only after the compute barrier.
        let slot = unsafe { &mut *sh.outboxes[wi][dw].get() };
        debug_assert!(slot.msgs.is_empty(), "outbox not drained");
        std::mem::swap(&mut slot.msgs, &mut lane.buf);
        slot.folded = std::mem::take(&mut lane.folded);
        // The lane now holds whatever empty buffer the receiver parked in
        // the slot last superstep (fresh only at startup).
        counters.note(lane.buf.capacity());
    }
    out.begin_superstep();
    counters
}

/// Claims and executes chunks of worker `wi` until its cursor runs out;
/// whoever completes the last outstanding chunk merges and flushes.
#[allow(clippy::too_many_arguments)]
fn drain_chunks<P: VertexProgram>(
    t_id: usize,
    wi: usize,
    sh: &ParShared<'_, P>,
    superstep: u64,
    agg_prev: &[AggValue],
    globals: &[AggValue],
    sender_combiner: Option<Combiner<P::Message>>,
) {
    let pw = &sh.workers[wi];
    let chunks = pw.chunks.load(Ordering::Acquire);
    if chunks == 0 {
        return;
    }
    loop {
        let c = pw.cursor.fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            return;
        }
        let stolen = sh.home[wi] != t_id;
        let buf = exec_chunk(c, wi, sh, superstep, agg_prev, globals, sender_combiner, stolen);
        pw.done.lock().unwrap().push(buf);
        // AcqRel: the completer that observes zero must see every other
        // completer's chunk output (and their vertex writes).
        if pw.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            merge_worker(wi, sh);
        }
    }
}

/// Executes one chunk of worker `wi`'s worklist into a private
/// [`ChunkBuf`]. Runs on whichever thread claimed the chunk.
#[allow(clippy::too_many_arguments)]
fn exec_chunk<P: VertexProgram>(
    c: usize,
    wi: usize,
    sh: &ParShared<'_, P>,
    superstep: u64,
    agg_prev: &[AggValue],
    globals: &[AggValue],
    sender_combiner: Option<Combiner<P::Message>>,
    stolen: bool,
) -> ChunkBuf<P::Message> {
    let pw = &sh.workers[wi];
    // SAFETY (shared read): views are written only outside the compute
    // phase; the barriers order those writes before this read, and nothing
    // writes them while chunks execute.
    let view = unsafe { &*(pw.view.get() as *const StateView<P::Value, P::Message>) };
    let lo = c * sh.steal_chunk;
    let hi = (lo + sh.steal_chunk).min(view.run_len);
    let mut buf = acquire_chunk_buf(sh, sender_combiner);
    buf.chunk = c;
    buf.stolen = stolen;
    buf.ran = hi - lo;
    let t0 = Instant::now();
    let mut work_total = 0u64;
    let mut sent_total = 0u64;
    let mut inbox_capacity = 0u64;
    for i in lo..hi {
        // SAFETY: `run` holds unique sorted local indices and the chunk
        // ranges partition it, so each `li` below is visited by exactly one
        // chunk executor this phase; the references formed from the element
        // pointers are therefore unaliased. The arrays themselves never
        // reallocate during a run.
        let li = unsafe { *view.run.add(i) } as usize;
        let id = unsafe { *view.ids.add(li) };
        let inbox: &mut Vec<P::Message> = unsafe { &mut *view.inbox.add(li) };
        let value: &mut P::Value = unsafe { &mut *view.values.add(li) };
        let mut vwork = 1 + inbox.len() as u64;
        let mut vsent = 0u64;
        let mut halted = false;
        {
            let mut ctx = Context::<P> {
                id,
                superstep,
                graph: sh.graph,
                value,
                halted: &mut halted,
                out: &mut buf.out,
                partitioner: sh.partitioner,
                agg_prev,
                agg_partial: &mut buf.agg,
                agg_defs: sh.agg_defs,
                globals,
                work: &mut vwork,
                sent: &mut vsent,
                seed: sh.cfg.seed,
            };
            sh.program.compute(&mut ctx, inbox);
        }
        if std::mem::size_of::<P::Message>() > 0 {
            inbox_capacity += inbox.capacity() as u64;
        }
        inbox.clear();
        // SAFETY: disjoint element, as above.
        unsafe { *view.active.add(li) = !halted };
        if !halted {
            buf.next.push(li as u32);
        }
        work_total += vwork;
        sent_total += vsent;
    }
    buf.work = work_total;
    buf.sent = sent_total;
    buf.inbox_capacity = inbox_capacity;
    buf.wall = t0.elapsed();
    buf
}

/// Pops a recycled chunk buffer from the shared pool, or builds a fresh
/// one (counted as an allocation event by the merge).
fn acquire_chunk_buf<P: VertexProgram>(
    sh: &ParShared<'_, P>,
    sender_combiner: Option<Combiner<P::Message>>,
) -> ChunkBuf<P::Message> {
    if let Some(mut b) = sh.chunk_pool.lock().unwrap().pop() {
        b.fresh = false;
        b.agg.copy_from_slice(sh.identities);
        b
    } else {
        ChunkBuf {
            chunk: 0,
            ran: 0,
            // No direct-mapped combining index here: one slot per graph
            // vertex *per chunk buffer* would dwarf the messages. The
            // per-lane open-addressing tables size with actual traffic.
            out: Outgoing::new_hashed(sh.w, sender_combiner),
            next: Vec::new(),
            agg: sh.identities.to_vec(),
            work: 0,
            sent: 0,
            inbox_capacity: 0,
            wall: Duration::ZERO,
            stolen: false,
            fresh: true,
        }
    }
}

/// Returns a drained chunk buffer to the pool.
fn release_chunk_buf<P: VertexProgram>(sh: &ParShared<'_, P>, mut b: ChunkBuf<P::Message>) {
    b.next.clear();
    b.out.begin_superstep();
    sh.chunk_pool.lock().unwrap().push(b);
}

/// Merges worker `wi`'s completed chunks — in chunk order — into its master
/// buffers and flushes them. Runs on the single thread that completed the
/// worker's last outstanding chunk.
fn merge_worker<P: VertexProgram>(wi: usize, sh: &ParShared<'_, P>) {
    let pw = &sh.workers[wi];
    let mut done = std::mem::take(&mut *pw.done.lock().unwrap());
    done.sort_unstable_by_key(|b| b.chunk);
    // SAFETY: every chunk executor for `wi` has finished (`outstanding`
    // reached zero with AcqRel ordering) and exactly one thread — us — runs
    // the merge; nothing else touches the master buffers or `next_run`
    // until the delivery phase, on the far side of the compute barrier.
    let out = unsafe { &mut *pw.out.get() };
    let next_run: &mut Vec<u32> = unsafe { &mut *std::ptr::addr_of_mut!((*pw.state.get()).next_run) };
    let mut work = 0u64;
    let mut sent = 0u64;
    let mut inbox_capacity = 0u64;
    let mut ran = 0usize;
    let mut wall = Duration::ZERO;
    let mut stolen = 0u64;
    let mut combined = 0u64;
    let mut counters = BufferCounters::default();
    let chunks_total = done.len() as u64;
    let mut agg = sh.identities.to_vec();
    for mut b in done {
        // Replay the chunk's sends through the master buffers in chunk
        // order: the exact push sequence single-threaded execution would
        // have produced, so lane order and combining folds — and everything
        // downstream — are schedule-independent.
        for (dw, clane) in b.out.lanes.iter_mut().enumerate() {
            // Chunk-internal folds still count toward the receiver's
            // algorithm-level `r_i`, exactly like sender-side folds.
            out.lanes[dw].folded += std::mem::take(&mut clane.folded);
            for (to, msg) in clane.buf.drain(..) {
                out.push(dw, to, msg);
            }
        }
        combined += std::mem::take(&mut b.out.combined);
        next_run.extend_from_slice(&b.next);
        for (idx, v) in b.agg.iter().enumerate() {
            sh.agg_defs[idx].op.fold(&mut agg[idx], *v);
        }
        work += b.work;
        sent += b.sent;
        inbox_capacity += b.inbox_capacity;
        ran += b.ran;
        wall += b.wall;
        if b.stolen {
            stolen += 1;
        }
        if b.fresh {
            counters.allocated += 1;
        } else {
            counters.recycled += 1;
        }
        release_chunk_buf(sh, b);
    }
    // Replay folds landed in `out.combined`; add the chunk-internal ones.
    let combined = combined + out.combined;
    let flush = flush_out(wi, sh, out);
    counters.allocated += flush.allocated;
    counters.recycled += flush.recycled;
    {
        let mut sc = pw.scratch.lock().unwrap();
        sc.stats = WorkerStats {
            work,
            sent,
            received: 0,
            wall,
            stolen_chunks: stolen,
        };
        sc.delivered = 0;
        sc.combined_sender = combined;
        sc.buffers = counters;
        sc.inbox_capacity = inbox_capacity;
        sc.next_active = 0;
        sc.ran = ran;
        sc.chunks = chunks_total;
        sc.chunks_stolen = stolen;
    }
    *pw.agg_partial.lock().unwrap() = agg;
}

/// Delivery phase for one worker, on its home thread: drain the outbox
/// column in sender order, finalize the next worklist, republish the chunk
/// schedule.
fn deliver_worker<P: VertexProgram>(
    wi: usize,
    sh: &ParShared<'_, P>,
    combiner: Option<Combiner<P::Message>>,
    scratch: &mut Vec<(VertexId, P::Message)>,
) {
    let pw = &sh.workers[wi];
    // A worker with an empty worklist had no merge this superstep, so its
    // compute-side scratch is stale; zero it before recording delivery.
    let no_compute = sh.steal_chunk > 0 && pw.chunks.load(Ordering::Relaxed) == 0;
    // SAFETY: delivery phase — after the compute barrier every outbox slot
    // addressed to `wi` is fully written, every chunk executor is done, and
    // only `wi`'s home thread (us) touches its state until the next compute
    // phase begins at a later barrier.
    let st = unsafe { &mut *pw.state.get() };
    if let Some(pv) = st.pv.as_mut() {
        pv.recv_cur.iter_mut().for_each(|c| *c = 0);
    }
    let mut received = 0u64;
    let mut delivered = 0u64;
    for sender in 0..sh.w {
        // Swap the lane out (and an empty, capacity-carrying buffer in,
        // for the sender's next flush) instead of taking and dropping.
        // SAFETY: column `wi` is read only by us this phase; the sender's
        // write happened before the compute barrier.
        let slot = unsafe { &mut *sh.outboxes[sender][wi].get() };
        std::mem::swap(&mut slot.msgs, scratch);
        let folded = std::mem::take(&mut slot.folded);
        // `r_i` keeps its algorithm-level meaning: sends folded at the
        // sender still count as received here.
        received += scratch.len() as u64 + folded;
        delivered += deliver_lane(st, sh.partitioner, combiner, scratch);
    }
    if let Some(pv) = st.pv.as_mut() {
        for li in 0..pv.recv_cur.len() {
            pv.max_received[li] = pv.max_received[li].max(pv.recv_cur[li]);
        }
    }
    // The next worklist is exactly the set a full scan would count: the
    // compute phase contributed the still-active vertices, delivery the
    // halted ones that just received mail — disjoint by the `active` check.
    st.next_run.sort_unstable();
    let next_active = st.next_run.len();
    std::mem::swap(&mut st.run_list, &mut st.next_run);
    st.next_run.clear();
    {
        let mut sc = pw.scratch.lock().unwrap();
        if no_compute {
            sc.stats = WorkerStats::default();
            sc.combined_sender = 0;
            sc.buffers = BufferCounters::default();
            sc.inbox_capacity = 0;
            sc.ran = 0;
            sc.chunks = 0;
            sc.chunks_stolen = 0;
        }
        sc.stats.received = received;
        sc.delivered = delivered;
        sc.next_active = next_active;
    }
    publish_schedule(pw, sh.steal_chunk);
}

/// The serial master phase, run by the last thread to arrive at the
/// delivery barrier (inside its leader closure, before anyone is
/// released): merge aggregators and statistics in worker order, run the
/// master hook, decide whether to stop.
fn master_phase<P: VertexProgram>(sh: &ParShared<'_, P>, superstep: u64) {
    let mut merged = sh.identities.to_vec();
    let mut workers = Vec::with_capacity(sh.w);
    let mut active_next_total = 0usize;
    let mut ran_total = 0usize;
    let mut sent = 0u64;
    let mut delivered_total = 0u64;
    let mut combined_total = 0u64;
    let mut chunks_total = 0u64;
    let mut chunks_stolen = 0u64;
    let mut buffers = BufferStats::default();
    for pw in &sh.workers {
        let partial = std::mem::replace(
            &mut *pw.agg_partial.lock().unwrap(),
            sh.identities.to_vec(),
        );
        for (idx, v) in partial.into_iter().enumerate() {
            sh.agg_defs[idx].op.fold(&mut merged[idx], v);
        }
        let sc = pw.scratch.lock().unwrap();
        workers.push(sc.stats);
        active_next_total += sc.next_active;
        ran_total += sc.ran;
        sent += sc.stats.sent;
        delivered_total += sc.delivered;
        combined_total += sc.combined_sender;
        chunks_total += sc.chunks;
        chunks_stolen += sc.chunks_stolen;
        buffers.allocated += sc.buffers.allocated;
        buffers.recycled += sc.buffers.recycled;
        buffers.inbox_capacity += sc.inbox_capacity;
    }
    let mut wait_total = 0u64;
    let mut wait_max = 0u64;
    for tw in &sh.thread_waits {
        let v = std::mem::take(&mut *tw.lock().unwrap());
        wait_total += v;
        wait_max = wait_max.max(v);
    }
    sh.superstep_log.lock().unwrap().push(SuperstepStats {
        workers,
        active: ran_total,
        messages_sent: sent,
        messages_delivered: delivered_total,
        messages_combined_sender: combined_total,
        buffers,
        aggregates: merged.clone(),
        barrier_wait_ns: wait_total,
        barrier_wait_max_ns: wait_max,
        chunks: chunks_total,
        chunks_stolen,
    });
    let mut globals = sh.globals.lock().unwrap();
    let mut mc = MasterContext {
        superstep,
        num_vertices: sh.graph.num_vertices(),
        active: active_next_total,
        aggregates: &merged,
        globals: &mut globals,
        halt: false,
        reactivate_all: false,
    };
    sh.program.master_compute(&mut mc);
    let (halt, reactivate) = (mc.halt, mc.reactivate_all);
    drop(globals);
    let (stop, reason) = stop_decision(
        halt,
        reactivate,
        active_next_total,
        superstep,
        sh.cfg.max_supersteps,
    );
    {
        let mut ctl = sh.control.lock().unwrap();
        ctl.stop = stop;
        ctl.reason = reason;
        ctl.reactivate = reactivate;
    }
    *sh.agg_merged.lock().unwrap() = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggOp, AggregatorDef};
    use vcgp_graph::generators;

    /// Halts immediately; sanity-checks convergence in one superstep.
    struct Noop;
    impl VertexProgram for Noop {
        type Value = u32;
        type Message = ();
        fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
            ctx.vote_to_halt();
        }
    }

    /// Each vertex floods its id for `rounds` supersteps; exercises message
    /// delivery, reactivation, and counters.
    struct Flood {
        rounds: u64,
    }
    impl VertexProgram for Flood {
        type Value = u64;
        type Message = u64;
        fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u64]) {
            *ctx.value_mut() += msgs.iter().sum::<u64>();
            if ctx.superstep() < self.rounds {
                ctx.send_to_all_out_neighbors(1);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn noop_converges_in_one_superstep() {
        let g = generators::path(10);
        let (_, stats) = run(&Noop, &g, &PregelConfig::single_worker());
        assert_eq!(stats.supersteps(), 1);
        assert_eq!(stats.halt_reason, HaltReason::Converged);
        assert_eq!(stats.total_messages(), 0);
    }

    #[test]
    fn flood_counts_messages_per_degree() {
        let g = generators::star(5); // center 0 with 4 leaves
        let (values, stats) = run(&Flood { rounds: 1 }, &g, &PregelConfig::single_worker());
        // Superstep 0: everyone sends 1 along each edge; superstep 1:
        // everyone sums. Center receives 4, leaves receive 1 each.
        assert_eq!(values[0], 4);
        assert_eq!(values[1], 1);
        assert_eq!(stats.total_messages(), 8);
        assert_eq!(stats.supersteps(), 2);
    }

    #[test]
    fn results_identical_across_worker_and_thread_counts() {
        let g = generators::gnm_connected(101, 300, 9);
        let base = run(&Flood { rounds: 3 }, &g, &PregelConfig::single_worker());
        for workers in [2usize, 3, 5, 8] {
            // threads = 1 takes the serial multiplexed driver; 2 and 3 the
            // threaded one (with a tiny steal chunk so worklists actually
            // split); stats and values must not move.
            for threads in [1usize, 2, 3] {
                let cfg = PregelConfig::default()
                    .with_workers(workers)
                    .with_threads(threads)
                    .with_steal_chunk(2);
                let other = run(&Flood { rounds: 3 }, &g, &cfg);
                assert_eq!(base.0, other.0, "values differ at W={workers} T={threads}");
                assert_eq!(
                    base.1.total_messages(),
                    other.1.total_messages(),
                    "message totals differ at W={workers} T={threads}"
                );
                assert_eq!(base.1.supersteps(), other.1.supersteps());
                for (a, b) in base
                    .1
                    .superstep_stats
                    .iter()
                    .zip(&other.1.superstep_stats)
                {
                    assert_eq!(
                        a.messages_delivered, b.messages_delivered,
                        "delivered differ at W={workers} T={threads}"
                    );
                    assert_eq!(a.active, b.active, "active differ at W={workers} T={threads}");
                }
            }
        }
    }

    #[test]
    fn stealing_disabled_matches_stealing_enabled() {
        let g = generators::gnm_connected(101, 300, 9);
        let on = PregelConfig::default()
            .with_workers(4)
            .with_threads(2)
            .with_steal_chunk(3);
        let off = PregelConfig::default()
            .with_workers(4)
            .with_threads(2)
            .with_steal_chunk(0);
        let a = run(&Flood { rounds: 3 }, &g, &on);
        let b = run(&Flood { rounds: 3 }, &g, &off);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.total_messages(), b.1.total_messages());
        // Chunk accounting exists only on the stealing path.
        assert!(a.1.superstep_stats[0].chunks > 0);
        assert_eq!(b.1.superstep_stats[0].chunks, 0);
    }

    /// Min-propagation with a combiner: messages to the same vertex collapse.
    struct MinProp;
    impl VertexProgram for MinProp {
        type Value = u32;
        type Message = u32;
        fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u32]) {
            let incoming = msgs.iter().copied().min();
            let current = *ctx.value();
            let candidate = if ctx.superstep() == 0 {
                ctx.id()
            } else {
                current
            };
            let best = incoming.map_or(candidate, |m| m.min(candidate));
            if ctx.superstep() == 0 || best < current {
                *ctx.value_mut() = best;
                ctx.send_to_all_out_neighbors(best);
            }
            ctx.vote_to_halt();
        }
        fn combiner(&self) -> Option<fn(&mut u32, u32)> {
            Some(|acc, m| *acc = (*acc).min(m))
        }
    }

    #[test]
    fn combiner_reduces_delivered_not_sent() {
        let g = generators::complete(6);
        let cfg = PregelConfig::single_worker();
        let (values, stats) = run(&MinProp, &g, &cfg);
        assert!(values.iter().all(|&v| v == 0));
        let s0 = &stats.superstep_stats[0];
        assert_eq!(s0.messages_sent, 30); // 6 vertices x 5 neighbors
        assert_eq!(s0.messages_delivered, 6); // combined to one per vertex
        // With one worker every send after the first per destination folds
        // at the sender: 30 sends - 6 destinations = 24 folds, leaving the
        // receiver backstop nothing to do.
        assert_eq!(s0.messages_combined_sender, 24);
    }

    #[test]
    fn sender_combining_depends_on_worker_count_when_threaded() {
        let g = generators::complete(6);
        for (workers, expect_combined) in [(1usize, 24u64), (2, 18)] {
            let cfg = PregelConfig::default()
                .with_workers(workers)
                .with_threads(workers);
            let (values, stats) = run(&MinProp, &g, &cfg);
            assert!(values.iter().all(|&v| v == 0), "W={workers}");
            let s0 = &stats.superstep_stats[0];
            // sent and delivered are worker-count independent by design...
            assert_eq!(s0.messages_sent, 30, "W={workers}");
            assert_eq!(s0.messages_delivered, 6, "W={workers}");
            // ...while the sender-side fold count is a transport observable:
            // with two *threads* each sender worker buffers separately, so a
            // destination receives one shipped message per sender worker and
            // only 30 - 6*2 = 18 sends fold at the sender.
            assert_eq!(s0.messages_combined_sender, expect_combined, "W={workers}");
        }
    }

    #[test]
    fn serial_driver_shares_one_combining_table() {
        // On one thread all workers buffer through one shared table, so the
        // fold count matches W=1 regardless of the logical worker count —
        // the transport observable tracks threads, not workers.
        let g = generators::complete(6);
        let cfg = PregelConfig::default().with_workers(2).with_threads(1);
        let (values, stats) = run(&MinProp, &g, &cfg);
        assert!(values.iter().all(|&v| v == 0));
        let s0 = &stats.superstep_stats[0];
        assert_eq!(s0.messages_sent, 30);
        assert_eq!(s0.messages_delivered, 6);
        assert_eq!(s0.messages_combined_sender, 24);
    }

    #[test]
    fn per_vertex_tracking_disables_sender_combining() {
        let g = generators::complete(6);
        for threads in [1usize, 2] {
            let cfg = PregelConfig::default()
                .with_workers(2)
                .with_threads(threads)
                .with_per_vertex_tracking();
            let (values, stats) = run(&MinProp, &g, &cfg);
            assert!(values.iter().all(|&v| v == 0), "T={threads}");
            let s0 = &stats.superstep_stats[0];
            // The receiver backstop still combines down to one per inbox, but
            // no send folds at the sender, so per-message receive counts stay
            // exact for the BPPA observables.
            assert_eq!(s0.messages_sent, 30, "T={threads}");
            assert_eq!(s0.messages_delivered, 6, "T={threads}");
            assert_eq!(s0.messages_combined_sender, 0, "T={threads}");
            let pv = stats.per_vertex.unwrap();
            assert!(pv.max_received.iter().all(|&r| r == 5), "T={threads}");
        }
    }

    #[test]
    fn steady_state_supersteps_allocate_no_message_buffers() {
        let g = generators::gnm_connected(64, 200, 7);
        for workers in [1usize, 3] {
            let cfg = PregelConfig::default().with_workers(workers);
            let (_, stats) = run(&Flood { rounds: 6 }, &g, &cfg);
            assert!(stats.supersteps() >= 6, "W={workers}");
            for (i, s) in stats.superstep_stats.iter().enumerate().skip(2) {
                // After the two-superstep warmup the lane/outbox/scratch
                // swap cycle is closed: nothing on the message path is
                // allocated again.
                assert_eq!(
                    s.buffers.allocated, 0,
                    "superstep {i} allocated buffers at W={workers}"
                );
                if i < stats.superstep_stats.len() - 1 {
                    assert!(
                        s.buffers.recycled > 0,
                        "superstep {i} recycled nothing at W={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_stealing_steady_state_allocation_free() {
        // Same invariant on the threaded driver with aggressive chunking:
        // lane handoff recycles through the outbox swap cycle and chunk
        // buffers through the prefilled pool, so steady-state supersteps
        // allocate nothing no matter how chunks were scheduled.
        let g = generators::gnm_connected(64, 200, 7);
        let cfg = PregelConfig::default()
            .with_workers(3)
            .with_threads(2)
            .with_steal_chunk(4);
        let (_, stats) = run(&Flood { rounds: 6 }, &g, &cfg);
        assert!(stats.supersteps() >= 6);
        for (i, s) in stats.superstep_stats.iter().enumerate().skip(2) {
            assert_eq!(s.buffers.allocated, 0, "superstep {i} allocated");
            if i < stats.superstep_stats.len() - 1 {
                assert!(s.buffers.recycled > 0, "superstep {i} recycled nothing");
            }
        }
    }

    #[test]
    fn inbox_capacity_retained_across_supersteps() {
        let g = generators::gnm_connected(64, 200, 7);
        let cfg = PregelConfig::single_worker();
        let (_, stats) = run(&Flood { rounds: 6 }, &g, &cfg);
        let caps: Vec<u64> = stats
            .superstep_stats
            .iter()
            .map(|s| s.buffers.inbox_capacity)
            .collect();
        // Superstep 0 runs before any delivery, so inboxes hold no
        // capacity yet; afterwards every vertex keeps the allocation its
        // busiest superstep needed (Flood has constant traffic, so the
        // retained total is stable — the regression this guards against is
        // the old `mem::take` dropping capacity every superstep).
        assert_eq!(caps[0], 0);
        assert!(caps[2] > 0);
        assert_eq!(caps[2], caps[3]);
        assert_eq!(caps[3], caps[4]);
    }

    #[test]
    fn partitioning_env_override_validates() {
        use crate::partition::Partitioning;
        // Valid values win over the fallback, case-insensitively.
        assert_eq!(
            PregelConfig::partitioning_from_env(Some("range"), Partitioning::Hash),
            Partitioning::Range
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some(" Hash "), Partitioning::Range),
            Partitioning::Hash
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some("RANGE"), Partitioning::Hash),
            Partitioning::Range
        );
        // Unset, empty, or misspelled values fall back.
        assert_eq!(
            PregelConfig::partitioning_from_env(None, Partitioning::Hash),
            Partitioning::Hash
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some(""), Partitioning::Range),
            Partitioning::Range
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some("round-robin"), Partitioning::Hash),
            Partitioning::Hash
        );
    }

    #[test]
    fn threads_env_override_validates() {
        // Valid values win over the fallback; 0 is valid and means "auto".
        assert_eq!(PregelConfig::threads_from_env(Some("2"), 0), 2);
        assert_eq!(PregelConfig::threads_from_env(Some("0"), 3), 0);
        assert_eq!(PregelConfig::threads_from_env(Some(" 8 "), 0), 8);
        // Unset, unparsable, or absurd values fall back.
        assert_eq!(PregelConfig::threads_from_env(None, 0), 0);
        assert_eq!(PregelConfig::threads_from_env(Some("auto"), 0), 0);
        assert_eq!(PregelConfig::threads_from_env(Some("-1"), 0), 0);
        assert_eq!(PregelConfig::threads_from_env(Some("4096"), 0), 0);
    }

    #[test]
    fn steal_chunk_env_override_validates() {
        // Valid values win; 0 is valid and disables stealing.
        assert_eq!(PregelConfig::steal_chunk_from_env(Some("64"), 1024), 64);
        assert_eq!(PregelConfig::steal_chunk_from_env(Some("0"), 1024), 0);
        // Unset, unparsable, or absurd values fall back.
        assert_eq!(PregelConfig::steal_chunk_from_env(None, 1024), 1024);
        assert_eq!(PregelConfig::steal_chunk_from_env(Some("huge"), 1024), 1024);
        assert_eq!(
            PregelConfig::steal_chunk_from_env(Some("99999999999999999999"), 1024),
            1024
        );
    }

    #[test]
    fn resolved_threads_caps_at_workers() {
        let cfg = PregelConfig::default().with_workers(4).with_threads(9);
        assert_eq!(cfg.resolved_threads(), 4);
        let cfg = PregelConfig::default().with_workers(4).with_threads(2);
        assert_eq!(cfg.resolved_threads(), 2);
        // Auto never exceeds the worker count either.
        let auto = PregelConfig::default().with_workers(1).with_threads(0);
        assert_eq!(auto.resolved_threads(), 1);
    }

    /// Aggregator test: sums vertex ids in superstep 0, master halts after
    /// verifying the total.
    struct SumIds;
    impl VertexProgram for SumIds {
        type Value = i64;
        type Message = ();
        fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
            if ctx.superstep() == 0 {
                ctx.aggregate(0, AggValue::I64(ctx.id() as i64));
            } else {
                *ctx.value_mut() = ctx.read_aggregate(0).as_i64();
                ctx.vote_to_halt();
            }
        }
        fn aggregators(&self) -> Vec<AggregatorDef> {
            vec![AggregatorDef::new("sum", AggOp::SumI64)]
        }
    }

    #[test]
    fn aggregator_visible_next_superstep() {
        let g = generators::path(10);
        for (workers, threads) in [(1usize, 1usize), (4, 1), (4, 2)] {
            let cfg = PregelConfig::default()
                .with_workers(workers)
                .with_threads(threads)
                .with_steal_chunk(2);
            let (values, stats) = run(&SumIds, &g, &cfg);
            assert!(values.iter().all(|&v| v == 45), "W={workers} T={threads}");
            // The merged trajectory is part of the superstep log.
            assert_eq!(
                stats.superstep_stats[0].aggregates,
                vec![AggValue::I64(45)],
                "W={workers} T={threads}"
            );
        }
    }

    /// Master drives three phases via a global slot, reactivating everyone.
    struct Phased;
    impl VertexProgram for Phased {
        type Value = i64;
        type Message = ();
        fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
            *ctx.value_mut() = ctx.global(0).as_i64();
            ctx.vote_to_halt();
        }
        fn globals(&self) -> Vec<AggValue> {
            vec![AggValue::I64(0)]
        }
        fn master_compute(&self, master: &mut MasterContext<'_>) {
            let phase = master.global(0).as_i64();
            if phase < 2 {
                master.set_global(0, AggValue::I64(phase + 1));
                master.reactivate_all();
            } else {
                master.halt();
            }
        }
    }

    #[test]
    fn master_phases_and_halt() {
        let g = generators::path(5);
        // threads = 2 exercises the reactivation barrier of the threaded
        // driver; threads = 1 the serial rebuild.
        for threads in [1usize, 2] {
            let cfg = PregelConfig::default().with_workers(3).with_threads(threads);
            let (values, stats) = run(&Phased, &g, &cfg);
            assert_eq!(stats.halt_reason, HaltReason::MasterHalted, "T={threads}");
            assert_eq!(stats.supersteps(), 3, "T={threads}");
            assert!(values.iter().all(|&v| v == 2), "T={threads}");
        }
    }

    /// Never halts: exercises the superstep cap.
    struct Forever;
    impl VertexProgram for Forever {
        type Value = u32;
        type Message = ();
        fn compute(&self, _ctx: &mut Context<'_, Self>, _msgs: &[()]) {}
    }

    #[test]
    fn max_supersteps_cap() {
        let g = generators::path(3);
        let cfg = PregelConfig::single_worker().with_max_supersteps(7);
        let (_, stats) = run(&Forever, &g, &cfg);
        assert_eq!(stats.supersteps(), 7);
        assert_eq!(stats.halt_reason, HaltReason::MaxSupersteps);
    }

    #[test]
    fn per_vertex_tracking_reflects_degree() {
        let g = generators::star(6);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let (_, stats) = run(&Flood { rounds: 1 }, &g, &cfg);
        let pv = stats.per_vertex.unwrap();
        assert_eq!(pv.max_sent[0], 5); // center sends to 5 leaves
        assert_eq!(pv.max_sent[1], 1);
        assert_eq!(pv.max_received[0], 5);
        assert_eq!(pv.max_received[2], 1);
        assert!(pv.max_work[0] >= 6); // 1 invocation + 5 sends
        assert!(pv.max_state_bytes[0] >= 8);
    }

    #[test]
    fn deterministic_rng_across_workers() {
        struct RngProbe;
        impl VertexProgram for RngProbe {
            type Value = u64;
            type Message = ();
            fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
                *ctx.value_mut() = ctx.rng().next_u64();
                ctx.vote_to_halt();
            }
        }
        let g = generators::path(37);
        let a = run(&RngProbe, &g, &PregelConfig::single_worker().with_seed(5)).0;
        let b = run(
            &RngProbe,
            &g,
            &PregelConfig::default()
                .with_workers(4)
                .with_threads(2)
                .with_seed(5),
        )
        .0;
        let c = run(&RngProbe, &g, &PregelConfig::single_worker().with_seed(6)).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn message_reactivates_halted_vertex() {
        /// Vertex 0 sends one message to vertex 2 in superstep 1 only.
        struct LateSend;
        impl VertexProgram for LateSend {
            type Value = u32;
            type Message = u32;
            fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u32]) {
                if ctx.superstep() == 0 && ctx.id() == 0 {
                    ctx.send(2, 99);
                }
                if let Some(&m) = msgs.first() {
                    *ctx.value_mut() = m;
                }
                ctx.vote_to_halt();
            }
        }
        let g = generators::path(4);
        // threads = 2 also exercises the empty-worklist worker path: in
        // superstep 1 only vertex 2's worker has anything to run.
        for threads in [1usize, 2] {
            let cfg = PregelConfig::default().with_workers(2).with_threads(threads);
            let (values, stats) = run(&LateSend, &g, &cfg);
            assert_eq!(values[2], 99, "T={threads}");
            assert_eq!(stats.supersteps(), 2, "T={threads}");
        }
    }

    #[test]
    fn chunk_accounting_counts_worklist_chunks() {
        let g = generators::path(10);
        let cfg = PregelConfig::default()
            .with_workers(2)
            .with_threads(2)
            .with_steal_chunk(1);
        let (_, stats) = run(&Flood { rounds: 1 }, &g, &cfg);
        let s0 = &stats.superstep_stats[0];
        // Chunk size 1: one chunk per active vertex.
        assert_eq!(s0.chunks, 10);
        assert!(s0.chunks_stolen <= s0.chunks);
        let stolen_sum: u64 = s0.workers.iter().map(|w| w.stolen_chunks).sum();
        assert_eq!(stolen_sum, s0.chunks_stolen);
    }

    #[test]
    fn work_accounting_charges() {
        struct Charger;
        impl VertexProgram for Charger {
            type Value = u32;
            type Message = ();
            fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
                ctx.charge(10);
                ctx.vote_to_halt();
            }
        }
        let g = generators::path(4);
        let (_, stats) = run(&Charger, &g, &PregelConfig::single_worker());
        // 4 vertices x (1 invocation + 10 charged).
        assert_eq!(stats.total_work(), 44);
    }

    #[test]
    #[should_panic(expected = "one initial value per vertex")]
    fn wrong_value_count_panics() {
        let g = generators::path(3);
        run_with_values(&Noop, &g, vec![0u32; 2], &PregelConfig::single_worker());
    }

    #[test]
    fn range_partitioning_matches_hash() {
        let g = generators::gnm_connected(123, 350, 4);
        let hash_cfg = PregelConfig::default()
            .with_workers(4)
            .with_threads(2)
            .with_steal_chunk(3);
        let range_cfg = PregelConfig::default()
            .with_workers(4)
            .with_threads(2)
            .with_steal_chunk(3)
            .with_partitioning(crate::partition::Partitioning::Range);
        let a = run(&Flood { rounds: 3 }, &g, &hash_cfg);
        let b = run(&Flood { rounds: 3 }, &g, &range_cfg);
        assert_eq!(a.0, b.0, "results must not depend on partitioning");
        assert_eq!(a.1.total_messages(), b.1.total_messages());
        assert_eq!(a.1.supersteps(), b.1.supersteps());
    }

    #[test]
    fn workers_env_override_validates() {
        // Valid values win over the fallback.
        assert_eq!(PregelConfig::workers_from_env(Some("3"), 8), 3);
        assert_eq!(PregelConfig::workers_from_env(Some(" 16 "), 8), 16);
        assert_eq!(PregelConfig::workers_from_env(Some("1"), 8), 1);
        // Unset, unparsable, zero, or absurd values fall back.
        assert_eq!(PregelConfig::workers_from_env(None, 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some(""), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("lots"), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("0"), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("-2"), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("1000000"), 8), 8);
    }

    #[test]
    fn empty_graph_runs() {
        let g = vcgp_graph::GraphBuilder::new(0).build();
        for threads in [1usize, 2] {
            let cfg = PregelConfig::default().with_workers(2).with_threads(threads);
            let (values, stats) = run(&Noop, &g, &cfg);
            assert!(values.is_empty(), "T={threads}");
            assert_eq!(stats.supersteps(), 1, "T={threads}");
        }
    }
}
