//! The BSP execution engine.
//!
//! Vertices are partitioned over `W` worker threads by `v mod W`; each
//! superstep runs three phases separated by barriers:
//!
//! 1. **compute** — every worker runs `compute` on its runnable vertices
//!    (tracked in a sorted per-worker worklist, so sparse supersteps cost
//!    `O(active)`, not `O(n)`) and buckets outgoing messages by destination
//!    worker, folding them per destination vertex when the program has a
//!    combiner;
//! 2. **delivery** — every worker drains the buffers addressed to it *in
//!    fixed sender order*, so message delivery order is deterministic
//!    regardless of thread scheduling;
//! 3. **master** — worker 0 merges aggregators and statistics, runs the
//!    program's master-compute hook, and decides whether to stop.
//!
//! The engine never holds a lock across a barrier, and every shared mutex
//! is either per-worker (uncontended) or touched only in the serial master
//! phase.

use crate::aggregate::{AggValue, AggregatorDef};
use crate::metrics::{BufferStats, HaltReason, PerVertexStats, RunStats, SuperstepStats, WorkerStats};
use crate::partition::{Partitioner, Partitioning};
use crate::pool::{BufferCounters, OutboxSlot};
use crate::program::{Context, MasterContext, Outgoing, VertexProgram};
use crate::state_size::StateSize;
use std::sync::{Barrier, Mutex};
use std::time::Instant;
use vcgp_graph::{Graph, VertexId};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct PregelConfig {
    /// Number of worker threads `p` (the processor count of the BSP cost
    /// model). Defaults to the machine parallelism, capped at 8; the
    /// `VCGP_WORKERS` environment variable overrides the default (so
    /// service deployments can use every core without code changes).
    pub num_workers: usize,
    /// Hard cap on supersteps (a safety net; converging algorithms never
    /// reach it).
    pub max_supersteps: u64,
    /// Seed for the deterministic per-vertex RNG ([`Context::rng`]).
    pub seed: u64,
    /// Record per-vertex maxima (messages, work, state bytes) for the BPPA
    /// checker. Adds O(n) bookkeeping per superstep and disables
    /// *sender-side* combining (per-message receive counts must stay
    /// exact); off by default.
    pub track_per_vertex: bool,
    /// Vertex-to-worker assignment strategy. Defaults to hash; the
    /// `VCGP_PARTITIONING` environment variable (`hash` / `range`)
    /// overrides the default, mirroring `VCGP_WORKERS`.
    pub partitioning: Partitioning,
}

/// Hard sanity cap on `VCGP_WORKERS`: more threads than this is never a
/// deliberate configuration on current hardware.
const MAX_ENV_WORKERS: usize = 1024;

impl PregelConfig {
    /// Resolves the default worker count from an optional `VCGP_WORKERS`
    /// value: a valid positive integer (at most [`MAX_ENV_WORKERS`]) wins;
    /// anything else — unset, unparsable, zero, absurd — falls back to
    /// `fallback`. Split out (and public) so the validation is testable
    /// without mutating process-global environment state.
    pub fn workers_from_env(value: Option<&str>, fallback: usize) -> usize {
        value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| (1..=MAX_ENV_WORKERS).contains(&w))
            .unwrap_or(fallback)
    }

    /// Resolves the default partitioning from an optional
    /// `VCGP_PARTITIONING` value: `"hash"` or `"range"` (case-insensitive,
    /// surrounding whitespace ignored) wins; anything else — unset, empty,
    /// misspelled — falls back to `fallback`. Split out (and public) for
    /// the same reason as [`PregelConfig::workers_from_env`]: service
    /// deployments switch strategies without code changes, and the
    /// validation is testable without mutating process-global state.
    pub fn partitioning_from_env(value: Option<&str>, fallback: Partitioning) -> Partitioning {
        match value.map(str::trim) {
            Some(v) if v.eq_ignore_ascii_case("hash") => Partitioning::Hash,
            Some(v) if v.eq_ignore_ascii_case("range") => Partitioning::Range,
            _ => fallback,
        }
    }
}

impl Default for PregelConfig {
    fn default() -> Self {
        let hardware = std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(4);
        let env = std::env::var("VCGP_WORKERS").ok();
        let workers = PregelConfig::workers_from_env(env.as_deref(), hardware);
        let part_env = std::env::var("VCGP_PARTITIONING").ok();
        let partitioning =
            PregelConfig::partitioning_from_env(part_env.as_deref(), Partitioning::Hash);
        PregelConfig {
            num_workers: workers,
            max_supersteps: 1_000_000,
            seed: 0x5653_4750,
            track_per_vertex: false,
            partitioning,
        }
    }
}

impl PregelConfig {
    /// A single-worker configuration (serial BSP; useful for debugging and
    /// microbenchmarks).
    pub fn single_worker() -> Self {
        PregelConfig {
            num_workers: 1,
            ..Default::default()
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, w: usize) -> Self {
        assert!(w >= 1, "at least one worker required");
        self.num_workers = w;
        self
    }

    /// Sets the superstep cap.
    pub fn with_max_supersteps(mut self, cap: u64) -> Self {
        self.max_supersteps = cap;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-vertex tracking.
    pub fn with_per_vertex_tracking(mut self) -> Self {
        self.track_per_vertex = true;
        self
    }

    /// Sets the vertex-to-worker partitioning strategy.
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }
}

/// Runs `program` on `graph` starting from `P::Value::default()` at every
/// vertex.
pub fn run<P>(program: &P, graph: &Graph, config: &PregelConfig) -> (Vec<P::Value>, RunStats)
where
    P: VertexProgram,
    P::Value: Default,
{
    let values = (0..graph.num_vertices())
        .map(|_| P::Value::default())
        .collect();
    run_with_values(program, graph, values, config)
}

/// Per-worker mutable state, owned exclusively by one worker thread during
/// the run and reassembled afterwards.
struct WorkerState<V, M> {
    /// Global vertex ids owned by this worker (`me`, `me + W`, ...).
    ids: Vec<VertexId>,
    values: Vec<V>,
    active: Vec<bool>,
    inbox: Vec<Vec<M>>,
    pv: Option<PerVertexLocal>,
}

/// Per-vertex tracking arrays local to one worker (indexed like `ids`).
struct PerVertexLocal {
    max_sent: Vec<u64>,
    max_received: Vec<u64>,
    max_work: Vec<u64>,
    max_state_bytes: Vec<u64>,
    recv_cur: Vec<u64>,
}

impl PerVertexLocal {
    fn new(k: usize) -> Self {
        PerVertexLocal {
            max_sent: vec![0; k],
            max_received: vec![0; k],
            max_work: vec![0; k],
            max_state_bytes: vec![0; k],
            recv_cur: vec![0; k],
        }
    }
}

/// Scratch slot written by one worker each superstep and read by the master
/// phase.
#[derive(Default)]
struct Scratch {
    stats: WorkerStats,
    delivered: u64,
    combined_sender: u64,
    buffers: BufferCounters,
    inbox_capacity: u64,
    next_active: usize,
    ran: usize,
}

/// Master-phase decisions shared back to all workers.
struct Control {
    stop: bool,
    reason: HaltReason,
    reactivate: bool,
}

/// Everything shared between worker threads.
struct Shared<'a, P: VertexProgram> {
    program: &'a P,
    graph: &'a Graph,
    cfg: &'a PregelConfig,
    num_workers: usize,
    partitioner: Partitioner,
    agg_defs: Vec<AggregatorDef>,
    barrier: Barrier,
    /// `outboxes[sender][receiver]`: messages produced in the compute phase,
    /// drained by the receiver in the delivery phase. Between uses each slot
    /// parks an empty, capacity-carrying buffer for the sender's next flush
    /// (see [`crate::pool`]).
    outboxes: Vec<Vec<Mutex<OutboxSlot<P::Message>>>>,
    scratch: Vec<Mutex<Scratch>>,
    agg_partials: Vec<Mutex<Vec<AggValue>>>,
    agg_merged: Mutex<Vec<AggValue>>,
    globals: Mutex<Vec<AggValue>>,
    control: Mutex<Control>,
    superstep_log: Mutex<Vec<SuperstepStats>>,
}

/// Runs `program` on `graph` with explicit initial vertex values.
///
/// Returns the final vertex values (indexed by vertex id) and the run's
/// instrumentation.
///
/// # Panics
/// Panics if `values.len() != graph.num_vertices()`.
pub fn run_with_values<P>(
    program: &P,
    graph: &Graph,
    values: Vec<P::Value>,
    config: &PregelConfig,
) -> (Vec<P::Value>, RunStats)
where
    P: VertexProgram,
{
    let n = graph.num_vertices();
    assert_eq!(values.len(), n, "one initial value per vertex required");
    let w = config.num_workers.max(1);
    let partitioner = Partitioner::new(config.partitioning, n, w);
    let started = Instant::now();

    let agg_defs = program.aggregators();
    let identities: Vec<AggValue> = agg_defs.iter().map(|d| d.op.identity()).collect();

    // Distribute vertices and their values round-robin over workers.
    let mut states: Vec<WorkerState<P::Value, P::Message>> = (0..w)
        .map(|_| WorkerState {
            ids: Vec::new(),
            values: Vec::new(),
            active: Vec::new(),
            inbox: Vec::new(),
            pv: None,
        })
        .collect();
    for (v, value) in values.into_iter().enumerate() {
        let st = &mut states[partitioner.owner(v as VertexId)];
        st.ids.push(v as VertexId);
        st.values.push(value);
    }
    for st in states.iter_mut() {
        let k = st.ids.len();
        st.active = vec![true; k];
        st.inbox = (0..k).map(|_| Vec::new()).collect();
        if config.track_per_vertex {
            st.pv = Some(PerVertexLocal::new(k));
        }
    }

    let shared = Shared::<P> {
        program,
        graph,
        cfg: config,
        num_workers: w,
        partitioner,
        agg_defs,
        barrier: Barrier::new(w),
        outboxes: (0..w)
            .map(|_| (0..w).map(|_| Mutex::new(OutboxSlot::default())).collect())
            .collect(),
        scratch: (0..w).map(|_| Mutex::new(Scratch::default())).collect(),
        agg_partials: (0..w).map(|_| Mutex::new(identities.clone())).collect(),
        agg_merged: Mutex::new(identities.clone()),
        globals: Mutex::new(program.globals()),
        control: Mutex::new(Control {
            stop: false,
            reason: HaltReason::Converged,
            reactivate: false,
        }),
        superstep_log: Mutex::new(Vec::new()),
    };

    if w == 1 {
        worker_loop(0, &mut states[0], &shared, &identities);
    } else {
        std::thread::scope(|scope| {
            for (me, st) in states.iter_mut().enumerate() {
                let shared = &shared;
                let identities = &identities;
                scope.spawn(move || worker_loop(me, st, shared, identities));
            }
        });
    }

    // Reassemble results by vertex id.
    let mut out_values: Vec<Option<P::Value>> = (0..n).map(|_| None).collect();
    let mut per_vertex = if config.track_per_vertex {
        Some(PerVertexStats::new(n))
    } else {
        None
    };
    for st in states {
        let pv_local = st.pv;
        for (li, (id, value)) in st.ids.iter().zip(st.values).enumerate() {
            let gi = *id as usize;
            out_values[gi] = Some(value);
            if let (Some(pv_out), Some(pv)) = (per_vertex.as_mut(), pv_local.as_ref()) {
                pv_out.max_sent[gi] = pv.max_sent[li];
                pv_out.max_received[gi] = pv.max_received[li];
                pv_out.max_work[gi] = pv.max_work[li];
                pv_out.max_state_bytes[gi] = pv.max_state_bytes[li];
            }
        }
    }
    let final_values: Vec<P::Value> = out_values
        .into_iter()
        .map(|v| v.expect("every vertex assigned to exactly one worker"))
        .collect();

    let control = shared.control.into_inner().unwrap();
    let stats = RunStats {
        superstep_stats: shared.superstep_log.into_inner().unwrap(),
        num_workers: w,
        halt_reason: control.reason,
        per_vertex,
        wall: started.elapsed(),
    };
    (final_values, stats)
}

/// The per-worker superstep loop. All workers execute this function in
/// lockstep; worker 0 additionally runs the serial master phase.
fn worker_loop<P>(
    me: usize,
    st: &mut WorkerState<P::Value, P::Message>,
    sh: &Shared<'_, P>,
    identities: &[AggValue],
) where
    P: VertexProgram,
{
    let w = sh.num_workers;
    let combiner = sh.program.combiner();
    // Sender-side combining folds per-message receive counts away, so it is
    // disabled in per-vertex tracking mode; the receiver-side backstop then
    // does all the combining, exactly as before the sender stage existed.
    let sender_combiner = if sh.cfg.track_per_vertex {
        None
    } else {
        combiner
    };
    // Message-path buffers live for the whole run: outgoing lanes (inside
    // `out`), the delivery scratch, and per-vertex inboxes are recycled
    // across supersteps, so steady-state supersteps allocate nothing.
    let mut out: Outgoing<P::Message> =
        Outgoing::new(w, sh.graph.num_vertices(), sender_combiner);
    let mut delivery_scratch: Vec<(VertexId, P::Message)> = Vec::new();
    let mut counters = BufferCounters::default();
    // Worklist scheduling: each superstep runs only the vertices that are
    // active or received a message, instead of scanning every owned vertex.
    // `run_list` is rebuilt each superstep from phase A (non-halting
    // vertices) and phase B (vertices whose inbox went nonempty) and sorted,
    // so compute order — and therefore send/delivery order — stays the
    // documented ascending-id order regardless of arrival order.
    let k = st.ids.len();
    let mut run_list: Vec<u32> = (0..k as u32).collect();
    let mut next_run: Vec<u32> = Vec::with_capacity(k);
    let mut superstep: u64 = 0;
    loop {
        // ---- Phase A: compute -------------------------------------------
        let agg_prev = sh.agg_merged.lock().unwrap().clone();
        let globals_snapshot = sh.globals.lock().unwrap().clone();
        let t0 = Instant::now();
        let mut work_total = 0u64;
        let mut sent_total = 0u64;
        let mut inbox_capacity = 0u64;
        let ran = run_list.len();
        let mut agg_partial = identities.to_vec();
        for &li32 in &run_list {
            let li = li32 as usize;
            // One unit for the invocation plus one per message processed.
            let mut vwork = 1 + st.inbox[li].len() as u64;
            let mut vsent = 0u64;
            let mut halted = false;
            {
                let mut ctx = Context::<P> {
                    id: st.ids[li],
                    superstep,
                    graph: sh.graph,
                    value: &mut st.values[li],
                    halted: &mut halted,
                    out: &mut out,
                    partitioner: sh.partitioner,
                    agg_prev: &agg_prev,
                    agg_partial: &mut agg_partial,
                    agg_defs: &sh.agg_defs,
                    globals: &globals_snapshot,
                    work: &mut vwork,
                    sent: &mut vsent,
                    seed: sh.cfg.seed,
                };
                sh.program.compute(&mut ctx, &st.inbox[li]);
            }
            // Clear instead of dropping: the inbox keeps its capacity for
            // the next delivery phase. Vecs of zero-sized messages report
            // usize::MAX capacity; count those as zero instead.
            if std::mem::size_of::<P::Message>() > 0 {
                inbox_capacity += st.inbox[li].capacity() as u64;
            }
            st.inbox[li].clear();
            st.active[li] = !halted;
            if !halted {
                next_run.push(li32);
            }
            work_total += vwork;
            sent_total += vsent;
            if let Some(pv) = st.pv.as_mut() {
                pv.max_sent[li] = pv.max_sent[li].max(vsent);
                pv.max_work[li] = pv.max_work[li].max(vwork);
                pv.max_state_bytes[li] =
                    pv.max_state_bytes[li].max(st.values[li].state_bytes() as u64);
            }
        }
        let wall = t0.elapsed();
        let combined_sender = out.combined;
        for dw in 0..w {
            let lane = &mut out.lanes[dw];
            if lane.buf.is_empty() {
                debug_assert_eq!(lane.folded, 0, "folds without buffered messages");
                continue;
            }
            let mut slot = sh.outboxes[me][dw].lock().unwrap();
            debug_assert!(slot.msgs.is_empty(), "outbox not drained");
            std::mem::swap(&mut slot.msgs, &mut lane.buf);
            slot.folded = std::mem::take(&mut lane.folded);
            // The lane now holds whatever empty buffer the receiver parked
            // in the slot last superstep (fresh only at startup).
            counters.note(lane.buf.capacity());
        }
        out.begin_superstep();
        {
            let mut sc = sh.scratch[me].lock().unwrap();
            sc.stats = WorkerStats {
                work: work_total,
                sent: sent_total,
                received: 0,
                wall,
            };
            sc.delivered = 0;
            sc.combined_sender = combined_sender;
            sc.buffers = counters.take();
            sc.inbox_capacity = inbox_capacity;
            sc.next_active = 0;
            sc.ran = ran;
        }
        *sh.agg_partials[me].lock().unwrap() = agg_partial;
        sh.barrier.wait();

        // ---- Phase B: delivery ------------------------------------------
        if let Some(pv) = st.pv.as_mut() {
            pv.recv_cur.iter_mut().for_each(|c| *c = 0);
        }
        let mut received = 0u64;
        let mut delivered = 0u64;
        for sender in 0..w {
            // Swap the lane out (and an empty, capacity-carrying buffer in,
            // for the sender's next flush) instead of taking and dropping.
            let folded;
            {
                let mut slot = sh.outboxes[sender][me].lock().unwrap();
                std::mem::swap(&mut slot.msgs, &mut delivery_scratch);
                folded = std::mem::take(&mut slot.folded);
            }
            // `r_i` keeps its algorithm-level meaning: sends folded at the
            // sender still count as received here.
            received += delivery_scratch.len() as u64 + folded;
            // One pass per lane, combiner branch hoisted out of the loop.
            match combiner {
                Some(combine) => {
                    for (to, msg) in delivery_scratch.drain(..) {
                        let li = sh.partitioner.local_index(to);
                        if let Some(pv) = st.pv.as_mut() {
                            pv.recv_cur[li] += 1;
                        }
                        let inbox = &mut st.inbox[li];
                        if inbox.is_empty() {
                            inbox.push(msg);
                            delivered += 1;
                            // First message: schedule a halted vertex.
                            if !st.active[li] {
                                next_run.push(li as u32);
                            }
                        } else {
                            combine(&mut inbox[0], msg);
                        }
                    }
                }
                None => {
                    for (to, msg) in delivery_scratch.drain(..) {
                        let li = sh.partitioner.local_index(to);
                        if let Some(pv) = st.pv.as_mut() {
                            pv.recv_cur[li] += 1;
                        }
                        let inbox = &mut st.inbox[li];
                        inbox.push(msg);
                        delivered += 1;
                        if inbox.len() == 1 && !st.active[li] {
                            next_run.push(li as u32);
                        }
                    }
                }
            }
        }
        if let Some(pv) = st.pv.as_mut() {
            for li in 0..pv.recv_cur.len() {
                pv.max_received[li] = pv.max_received[li].max(pv.recv_cur[li]);
            }
        }
        // The run list is exactly the set that the old full scan counted:
        // phase A pushed the still-active vertices, the loop above pushed
        // the halted ones that just received mail — disjoint by the
        // `active` check, so no vertex appears twice.
        next_run.sort_unstable();
        let next_active = next_run.len();
        {
            let mut sc = sh.scratch[me].lock().unwrap();
            sc.stats.received = received;
            sc.delivered = delivered;
            sc.next_active = next_active;
        }
        sh.barrier.wait();

        // ---- Phase C: master (worker 0 only) ----------------------------
        if me == 0 {
            let mut merged = identities.to_vec();
            let mut workers = Vec::with_capacity(w);
            let mut active_next_total = 0usize;
            let mut ran_total = 0usize;
            let mut sent = 0u64;
            let mut delivered_total = 0u64;
            let mut combined_total = 0u64;
            let mut buffers = BufferStats::default();
            for i in 0..w {
                let partial = std::mem::replace(
                    &mut *sh.agg_partials[i].lock().unwrap(),
                    identities.to_vec(),
                );
                for (idx, v) in partial.into_iter().enumerate() {
                    sh.agg_defs[idx].op.fold(&mut merged[idx], v);
                }
                let sc = sh.scratch[i].lock().unwrap();
                workers.push(sc.stats);
                active_next_total += sc.next_active;
                ran_total += sc.ran;
                sent += sc.stats.sent;
                delivered_total += sc.delivered;
                combined_total += sc.combined_sender;
                buffers.allocated += sc.buffers.allocated;
                buffers.recycled += sc.buffers.recycled;
                buffers.inbox_capacity += sc.inbox_capacity;
            }
            sh.superstep_log.lock().unwrap().push(SuperstepStats {
                workers,
                active: ran_total,
                messages_sent: sent,
                messages_delivered: delivered_total,
                messages_combined_sender: combined_total,
                buffers,
            });
            let mut globals = sh.globals.lock().unwrap();
            let mut mc = MasterContext {
                superstep,
                num_vertices: sh.graph.num_vertices(),
                active: active_next_total,
                aggregates: &merged,
                globals: &mut globals,
                halt: false,
                reactivate_all: false,
            };
            sh.program.master_compute(&mut mc);
            let (halt, reactivate) = (mc.halt, mc.reactivate_all);
            drop(globals);
            let mut ctl = sh.control.lock().unwrap();
            ctl.reactivate = reactivate;
            if halt {
                ctl.stop = true;
                ctl.reason = HaltReason::MasterHalted;
            } else if active_next_total == 0 && !reactivate {
                ctl.stop = true;
                ctl.reason = HaltReason::Converged;
            } else if superstep + 1 >= sh.cfg.max_supersteps {
                ctl.stop = true;
                ctl.reason = HaltReason::MaxSupersteps;
            } else {
                ctl.stop = false;
            }
            *sh.agg_merged.lock().unwrap() = merged;
        }
        sh.barrier.wait();

        let (stop, reactivate) = {
            let ctl = sh.control.lock().unwrap();
            (ctl.stop, ctl.reactivate)
        };
        if reactivate {
            st.active.iter_mut().for_each(|a| *a = true);
            run_list.clear();
            run_list.extend(0..k as u32);
        } else {
            std::mem::swap(&mut run_list, &mut next_run);
        }
        next_run.clear();
        if stop {
            break;
        }
        superstep += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggOp, AggregatorDef};
    use vcgp_graph::generators;

    /// Halts immediately; sanity-checks convergence in one superstep.
    struct Noop;
    impl VertexProgram for Noop {
        type Value = u32;
        type Message = ();
        fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
            ctx.vote_to_halt();
        }
    }

    /// Each vertex floods its id for `rounds` supersteps; exercises message
    /// delivery, reactivation, and counters.
    struct Flood {
        rounds: u64,
    }
    impl VertexProgram for Flood {
        type Value = u64;
        type Message = u64;
        fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u64]) {
            *ctx.value_mut() += msgs.iter().sum::<u64>();
            if ctx.superstep() < self.rounds {
                ctx.send_to_all_out_neighbors(1);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn noop_converges_in_one_superstep() {
        let g = generators::path(10);
        let (_, stats) = run(&Noop, &g, &PregelConfig::single_worker());
        assert_eq!(stats.supersteps(), 1);
        assert_eq!(stats.halt_reason, HaltReason::Converged);
        assert_eq!(stats.total_messages(), 0);
    }

    #[test]
    fn flood_counts_messages_per_degree() {
        let g = generators::star(5); // center 0 with 4 leaves
        let (values, stats) = run(&Flood { rounds: 1 }, &g, &PregelConfig::single_worker());
        // Superstep 0: everyone sends 1 along each edge; superstep 1:
        // everyone sums. Center receives 4, leaves receive 1 each.
        assert_eq!(values[0], 4);
        assert_eq!(values[1], 1);
        assert_eq!(stats.total_messages(), 8);
        assert_eq!(stats.supersteps(), 2);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let g = generators::gnm_connected(101, 300, 9);
        let base = run(&Flood { rounds: 3 }, &g, &PregelConfig::single_worker());
        for workers in [2, 3, 5, 8] {
            let cfg = PregelConfig::default().with_workers(workers);
            let other = run(&Flood { rounds: 3 }, &g, &cfg);
            assert_eq!(base.0, other.0, "values differ at W={workers}");
            assert_eq!(
                base.1.total_messages(),
                other.1.total_messages(),
                "message totals differ at W={workers}"
            );
            assert_eq!(base.1.supersteps(), other.1.supersteps());
        }
    }

    /// Min-propagation with a combiner: messages to the same vertex collapse.
    struct MinProp;
    impl VertexProgram for MinProp {
        type Value = u32;
        type Message = u32;
        fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u32]) {
            let incoming = msgs.iter().copied().min();
            let current = *ctx.value();
            let candidate = if ctx.superstep() == 0 {
                ctx.id()
            } else {
                current
            };
            let best = incoming.map_or(candidate, |m| m.min(candidate));
            if ctx.superstep() == 0 || best < current {
                *ctx.value_mut() = best;
                ctx.send_to_all_out_neighbors(best);
            }
            ctx.vote_to_halt();
        }
        fn combiner(&self) -> Option<fn(&mut u32, u32)> {
            Some(|acc, m| *acc = (*acc).min(m))
        }
    }

    #[test]
    fn combiner_reduces_delivered_not_sent() {
        let g = generators::complete(6);
        let cfg = PregelConfig::single_worker();
        let (values, stats) = run(&MinProp, &g, &cfg);
        assert!(values.iter().all(|&v| v == 0));
        let s0 = &stats.superstep_stats[0];
        assert_eq!(s0.messages_sent, 30); // 6 vertices x 5 neighbors
        assert_eq!(s0.messages_delivered, 6); // combined to one per vertex
        // With one worker every send after the first per destination folds
        // at the sender: 30 sends - 6 destinations = 24 folds, leaving the
        // receiver backstop nothing to do.
        assert_eq!(s0.messages_combined_sender, 24);
    }

    #[test]
    fn sender_combining_depends_on_worker_count() {
        let g = generators::complete(6);
        for (workers, expect_combined) in [(1usize, 24u64), (2, 18)] {
            let cfg = PregelConfig::default().with_workers(workers);
            let (values, stats) = run(&MinProp, &g, &cfg);
            assert!(values.iter().all(|&v| v == 0), "W={workers}");
            let s0 = &stats.superstep_stats[0];
            // sent and delivered are worker-count independent by design...
            assert_eq!(s0.messages_sent, 30, "W={workers}");
            assert_eq!(s0.messages_delivered, 6, "W={workers}");
            // ...while the sender-side fold count is a transport observable:
            // with W=2 each destination receives one shipped message per
            // sender worker (3 senders each fold 5->... per side), so only
            // 30 - 6*2 = 18 sends fold at the sender.
            assert_eq!(s0.messages_combined_sender, expect_combined, "W={workers}");
        }
    }

    #[test]
    fn per_vertex_tracking_disables_sender_combining() {
        let g = generators::complete(6);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let (values, stats) = run(&MinProp, &g, &cfg);
        assert!(values.iter().all(|&v| v == 0));
        let s0 = &stats.superstep_stats[0];
        // The receiver backstop still combines down to one per inbox, but
        // no send folds at the sender, so per-message receive counts stay
        // exact for the BPPA observables.
        assert_eq!(s0.messages_sent, 30);
        assert_eq!(s0.messages_delivered, 6);
        assert_eq!(s0.messages_combined_sender, 0);
        let pv = stats.per_vertex.unwrap();
        assert!(pv.max_received.iter().all(|&r| r == 5));
    }

    #[test]
    fn steady_state_supersteps_allocate_no_message_buffers() {
        let g = generators::gnm_connected(64, 200, 7);
        for workers in [1usize, 3] {
            let cfg = PregelConfig::default().with_workers(workers);
            let (_, stats) = run(&Flood { rounds: 6 }, &g, &cfg);
            assert!(stats.supersteps() >= 6, "W={workers}");
            for (i, s) in stats.superstep_stats.iter().enumerate().skip(2) {
                // After the two-superstep warmup the lane/outbox/scratch
                // swap cycle is closed: nothing on the message path is
                // allocated again.
                assert_eq!(
                    s.buffers.allocated, 0,
                    "superstep {i} allocated buffers at W={workers}"
                );
                if i < stats.superstep_stats.len() - 1 {
                    assert!(
                        s.buffers.recycled > 0,
                        "superstep {i} recycled nothing at W={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn inbox_capacity_retained_across_supersteps() {
        let g = generators::gnm_connected(64, 200, 7);
        let cfg = PregelConfig::single_worker();
        let (_, stats) = run(&Flood { rounds: 6 }, &g, &cfg);
        let caps: Vec<u64> = stats
            .superstep_stats
            .iter()
            .map(|s| s.buffers.inbox_capacity)
            .collect();
        // Superstep 0 runs before any delivery, so inboxes hold no
        // capacity yet; afterwards every vertex keeps the allocation its
        // busiest superstep needed (Flood has constant traffic, so the
        // retained total is stable — the regression this guards against is
        // the old `mem::take` dropping capacity every superstep).
        assert_eq!(caps[0], 0);
        assert!(caps[2] > 0);
        assert_eq!(caps[2], caps[3]);
        assert_eq!(caps[3], caps[4]);
    }

    #[test]
    fn partitioning_env_override_validates() {
        use crate::partition::Partitioning;
        // Valid values win over the fallback, case-insensitively.
        assert_eq!(
            PregelConfig::partitioning_from_env(Some("range"), Partitioning::Hash),
            Partitioning::Range
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some(" Hash "), Partitioning::Range),
            Partitioning::Hash
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some("RANGE"), Partitioning::Hash),
            Partitioning::Range
        );
        // Unset, empty, or misspelled values fall back.
        assert_eq!(
            PregelConfig::partitioning_from_env(None, Partitioning::Hash),
            Partitioning::Hash
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some(""), Partitioning::Range),
            Partitioning::Range
        );
        assert_eq!(
            PregelConfig::partitioning_from_env(Some("round-robin"), Partitioning::Hash),
            Partitioning::Hash
        );
    }

    /// Aggregator test: sums vertex ids in superstep 0, master halts after
    /// verifying the total.
    struct SumIds;
    impl VertexProgram for SumIds {
        type Value = i64;
        type Message = ();
        fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
            if ctx.superstep() == 0 {
                ctx.aggregate(0, AggValue::I64(ctx.id() as i64));
            } else {
                *ctx.value_mut() = ctx.read_aggregate(0).as_i64();
                ctx.vote_to_halt();
            }
        }
        fn aggregators(&self) -> Vec<AggregatorDef> {
            vec![AggregatorDef::new("sum", AggOp::SumI64)]
        }
    }

    #[test]
    fn aggregator_visible_next_superstep() {
        let g = generators::path(10);
        for workers in [1, 4] {
            let cfg = PregelConfig::default().with_workers(workers);
            let (values, _) = run(&SumIds, &g, &cfg);
            assert!(values.iter().all(|&v| v == 45), "W={workers}");
        }
    }

    /// Master drives three phases via a global slot, reactivating everyone.
    struct Phased;
    impl VertexProgram for Phased {
        type Value = i64;
        type Message = ();
        fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
            *ctx.value_mut() = ctx.global(0).as_i64();
            ctx.vote_to_halt();
        }
        fn globals(&self) -> Vec<AggValue> {
            vec![AggValue::I64(0)]
        }
        fn master_compute(&self, master: &mut MasterContext<'_>) {
            let phase = master.global(0).as_i64();
            if phase < 2 {
                master.set_global(0, AggValue::I64(phase + 1));
                master.reactivate_all();
            } else {
                master.halt();
            }
        }
    }

    #[test]
    fn master_phases_and_halt() {
        let g = generators::path(5);
        let (values, stats) = run(&Phased, &g, &PregelConfig::default().with_workers(3));
        assert_eq!(stats.halt_reason, HaltReason::MasterHalted);
        assert_eq!(stats.supersteps(), 3);
        assert!(values.iter().all(|&v| v == 2));
    }

    /// Never halts: exercises the superstep cap.
    struct Forever;
    impl VertexProgram for Forever {
        type Value = u32;
        type Message = ();
        fn compute(&self, _ctx: &mut Context<'_, Self>, _msgs: &[()]) {}
    }

    #[test]
    fn max_supersteps_cap() {
        let g = generators::path(3);
        let cfg = PregelConfig::single_worker().with_max_supersteps(7);
        let (_, stats) = run(&Forever, &g, &cfg);
        assert_eq!(stats.supersteps(), 7);
        assert_eq!(stats.halt_reason, HaltReason::MaxSupersteps);
    }

    #[test]
    fn per_vertex_tracking_reflects_degree() {
        let g = generators::star(6);
        let cfg = PregelConfig::single_worker().with_per_vertex_tracking();
        let (_, stats) = run(&Flood { rounds: 1 }, &g, &cfg);
        let pv = stats.per_vertex.unwrap();
        assert_eq!(pv.max_sent[0], 5); // center sends to 5 leaves
        assert_eq!(pv.max_sent[1], 1);
        assert_eq!(pv.max_received[0], 5);
        assert_eq!(pv.max_received[2], 1);
        assert!(pv.max_work[0] >= 6); // 1 invocation + 5 sends
        assert!(pv.max_state_bytes[0] >= 8);
    }

    #[test]
    fn deterministic_rng_across_workers() {
        struct RngProbe;
        impl VertexProgram for RngProbe {
            type Value = u64;
            type Message = ();
            fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
                *ctx.value_mut() = ctx.rng().next_u64();
                ctx.vote_to_halt();
            }
        }
        let g = generators::path(37);
        let a = run(&RngProbe, &g, &PregelConfig::single_worker().with_seed(5)).0;
        let b = run(
            &RngProbe,
            &g,
            &PregelConfig::default().with_workers(4).with_seed(5),
        )
        .0;
        let c = run(&RngProbe, &g, &PregelConfig::single_worker().with_seed(6)).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn message_reactivates_halted_vertex() {
        /// Vertex 0 sends one message to vertex 2 in superstep 1 only.
        struct LateSend;
        impl VertexProgram for LateSend {
            type Value = u32;
            type Message = u32;
            fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[u32]) {
                if ctx.superstep() == 0 && ctx.id() == 0 {
                    ctx.send(2, 99);
                }
                if let Some(&m) = msgs.first() {
                    *ctx.value_mut() = m;
                }
                ctx.vote_to_halt();
            }
        }
        let g = generators::path(4);
        let (values, stats) = run(&LateSend, &g, &PregelConfig::default().with_workers(2));
        assert_eq!(values[2], 99);
        assert_eq!(stats.supersteps(), 2);
    }

    #[test]
    fn work_accounting_charges() {
        struct Charger;
        impl VertexProgram for Charger {
            type Value = u32;
            type Message = ();
            fn compute(&self, ctx: &mut Context<'_, Self>, _msgs: &[()]) {
                ctx.charge(10);
                ctx.vote_to_halt();
            }
        }
        let g = generators::path(4);
        let (_, stats) = run(&Charger, &g, &PregelConfig::single_worker());
        // 4 vertices x (1 invocation + 10 charged).
        assert_eq!(stats.total_work(), 44);
    }

    #[test]
    #[should_panic(expected = "one initial value per vertex")]
    fn wrong_value_count_panics() {
        let g = generators::path(3);
        run_with_values(&Noop, &g, vec![0u32; 2], &PregelConfig::single_worker());
    }

    #[test]
    fn range_partitioning_matches_hash() {
        let g = generators::gnm_connected(123, 350, 4);
        let hash_cfg = PregelConfig::default().with_workers(4);
        let range_cfg = PregelConfig::default()
            .with_workers(4)
            .with_partitioning(crate::partition::Partitioning::Range);
        let a = run(&Flood { rounds: 3 }, &g, &hash_cfg);
        let b = run(&Flood { rounds: 3 }, &g, &range_cfg);
        assert_eq!(a.0, b.0, "results must not depend on partitioning");
        assert_eq!(a.1.total_messages(), b.1.total_messages());
        assert_eq!(a.1.supersteps(), b.1.supersteps());
    }

    #[test]
    fn workers_env_override_validates() {
        // Valid values win over the fallback.
        assert_eq!(PregelConfig::workers_from_env(Some("3"), 8), 3);
        assert_eq!(PregelConfig::workers_from_env(Some(" 16 "), 8), 16);
        assert_eq!(PregelConfig::workers_from_env(Some("1"), 8), 1);
        // Unset, unparsable, zero, or absurd values fall back.
        assert_eq!(PregelConfig::workers_from_env(None, 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some(""), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("lots"), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("0"), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("-2"), 8), 8);
        assert_eq!(PregelConfig::workers_from_env(Some("1000000"), 8), 8);
    }

    #[test]
    fn empty_graph_runs() {
        let g = vcgp_graph::GraphBuilder::new(0).build();
        let (values, stats) = run(&Noop, &g, &PregelConfig::default().with_workers(2));
        assert!(values.is_empty());
        assert_eq!(stats.supersteps(), 1);
    }
}
