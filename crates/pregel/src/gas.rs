//! A gather-apply-scatter (GAS) programming layer over the BSP engine.
//!
//! The paper's introduction surveys the post-Pregel model zoo —
//! "asynchronous (GraphLab), ... gather-apply-scatter (PowerGraph)" — as
//! responses to Pregel's efficiency issues. This module provides the GAS
//! abstraction in its *delta-push* form (as in GraphLab's signal/scatter
//! style): an active vertex **scatters** a contribution along each
//! out-edge; contributions addressed to the same target are **merged** by
//! an associative monoid (realized as an engine combiner, so only one
//! value per target crosses a worker boundary); the target **applies** the
//! merged value and decides whether to scatter in turn.
//!
//! Compared to writing the same algorithm directly against
//! [`crate::VertexProgram`], GAS programs get sender-side combining and
//! adaptive activation for free — the `gas_vs_bsp` ablation quantifies the
//! message reduction.

use crate::engine::PregelConfig;
use crate::metrics::RunStats;
use crate::program::{Combiner, Context, MasterContext, VertexProgram};
use crate::state_size::StateSize;
use vcgp_graph::{Graph, VertexId};

/// A mergeable gather value (an associative, commutative monoid action).
pub trait GatherValue: Clone + Send {
    /// Folds `other` into `self`. Must be associative and commutative.
    fn merge(&mut self, other: Self);
}

impl GatherValue for f64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

impl GatherValue for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// A minimum-tracking gather value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinF64(pub f64);

impl GatherValue for MinF64 {
    fn merge(&mut self, other: Self) {
        self.0 = self.0.min(other.0);
    }
}

/// Read-only per-vertex information handed to [`GasProgram::apply`].
#[derive(Debug, Clone, Copy)]
pub struct GasInfo {
    /// The vertex id.
    pub vertex: VertexId,
    /// Current superstep (0 = the initial apply).
    pub superstep: u64,
    /// Number of vertices in the graph.
    pub num_vertices: usize,
    /// Out-degree of the vertex.
    pub out_degree: usize,
}

/// A gather-apply-scatter program.
pub trait GasProgram: Sync {
    /// Per-vertex state.
    type State: Clone + Send + StateSize + Default;
    /// The mergeable contribution type.
    type Gather: GatherValue;

    /// The contribution an active vertex pushes along one out-edge, given
    /// its state and the edge weight. `None` suppresses the edge.
    fn scatter(&self, state: &Self::State, weight: f64) -> Option<Self::Gather>;

    /// Folds the merged incoming contribution (if any) into the state.
    /// Returning `true` keeps the vertex active: it scatters this
    /// superstep. The initial apply (superstep 0) receives `None`.
    fn apply(&self, state: &mut Self::State, merged: Option<&Self::Gather>, info: &GasInfo)
        -> bool;

    /// Optional superstep cap for fixed-round programs.
    fn max_supersteps(&self) -> u64 {
        u64::MAX
    }
}

/// The adapter translating a [`GasProgram`] into a [`VertexProgram`].
struct GasAdapter<P> {
    program: P,
}

/// Adapter message: the merged gather contribution.
impl<P: GasProgram> VertexProgram for GasAdapter<P> {
    type Value = P::State;
    type Message = P::Gather;

    fn compute(&self, ctx: &mut Context<'_, Self>, messages: &[P::Gather]) {
        let merged = messages.iter().cloned().reduce(|mut a, b| {
            a.merge(b);
            a
        });
        let info = GasInfo {
            vertex: ctx.id(),
            superstep: ctx.superstep(),
            num_vertices: ctx.num_vertices(),
            out_degree: ctx.out_neighbors().len(),
        };
        let scatter_now =
            self.program.apply(ctx.value_mut(), merged.as_ref(), &info)
                && ctx.superstep() < self.program.max_supersteps();
        if scatter_now {
            let (graph, id) = (ctx.graph(), ctx.id());
            for (v, w) in graph.out_edges(id) {
                if let Some(g) = self.program.scatter(ctx.value(), w) {
                    ctx.send(v, g);
                }
            }
        }
        ctx.vote_to_halt();
    }

    fn combiner(&self) -> Option<Combiner<P::Gather>> {
        Some(|acc, m| acc.merge(m))
    }

    fn master_compute(&self, _master: &mut MasterContext<'_>) {}
}

/// Runs a GAS program on `graph`.
pub fn run_gas<P: GasProgram>(
    program: P,
    graph: &Graph,
    config: &PregelConfig,
) -> (Vec<P::State>, RunStats) {
    crate::engine::run(&GasAdapter { program }, graph, config)
}

/// Residual-push GAS PageRank (the forward-push formulation used by
/// GraphLab-style adaptive engines): every vertex tracks the mass it
/// gained since its last scatter and forwards `α · gain / outdeg` along
/// its out-edges; gains below `tolerance` are not propagated, so converged
/// regions of the graph fall silent. The fixpoint is the PageRank vector
/// `s(v) = (1-α)/n + α Σ_u s(u)/d(u)` (sink mass not redistributed, as in
/// the row 2 implementations), approximated to within the dropped
/// residual mass.
pub struct PageRankGas {
    /// Damping factor α.
    pub alpha: f64,
    /// Minimum gain worth propagating, as a fraction of the uniform mass
    /// `1/n` (so `1e-3` means "ignore gains below a thousandth of a
    /// vertex's fair share", independent of graph size).
    pub tolerance: f64,
}

/// PageRank-GAS state.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrState {
    /// Current score estimate.
    pub score: f64,
    /// Mass received since the last scatter (the pending residual).
    gain: f64,
}

impl StateSize for PrState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl PageRankGas {
    /// The apply step shared by the weighted scatter program below:
    /// contributions arrive pre-scaled by `α / outdeg(sender)`.
    fn apply(&self, state: &mut PrState, merged: Option<&f64>, info: &GasInfo) -> bool {
        if info.superstep == 0 {
            let base = (1.0 - self.alpha) / info.num_vertices as f64;
            state.score = base;
            state.gain = base;
        } else if let Some(&sum) = merged {
            state.score += sum;
            state.gain = sum;
        } else {
            return false;
        }
        let threshold = self.tolerance / info.num_vertices as f64;
        info.out_degree > 0 && state.gain > threshold
    }
}

/// Runs delta PageRank over GAS. The out-degree division is folded into
/// the scatter by rescaling edge weights (`w = 1/outdeg`), prepared here.
pub fn run_pagerank_gas(
    graph: &Graph,
    alpha: f64,
    tolerance: f64,
    config: &PregelConfig,
) -> (Vec<f64>, RunStats) {
    // Rebuild with weight 1/outdeg(u) on each arc u -> v so that scatter
    // can push `score * weight`.
    let mut b = if graph.is_directed() {
        vcgp_graph::GraphBuilder::directed(graph.num_vertices())
    } else {
        vcgp_graph::GraphBuilder::new(graph.num_vertices())
    };
    assert!(graph.is_directed(), "pagerank-gas expects a digraph");
    for u in graph.vertices() {
        let deg = graph.out_degree(u) as f64;
        for &v in graph.out_neighbors(u) {
            b.add_weighted_edge(u, v, 1.0 / deg);
        }
    }
    let weighted = b.build();
    struct WeightedPr(PageRankGas);
    impl GasProgram for WeightedPr {
        type State = PrState;
        type Gather = f64;
        fn scatter(&self, state: &PrState, weight: f64) -> Option<f64> {
            // weight = 1/outdeg(sender): forward α · gain / outdeg.
            Some(self.0.alpha * state.gain * weight)
        }
        fn apply(&self, state: &mut PrState, merged: Option<&f64>, info: &GasInfo) -> bool {
            self.0.apply(state, merged, info)
        }
        fn max_supersteps(&self) -> u64 {
            10_000
        }
    }
    let (states, stats) = run_gas(WeightedPr(PageRankGas { alpha, tolerance }), &weighted, config);
    (states.into_iter().map(|s| s.score).collect(), stats)
}

/// GAS single-source shortest paths (min-plus relaxation).
pub struct SsspGas {
    /// The source vertex.
    pub source: VertexId,
}

/// SSSP-GAS state: the tentative distance.
#[derive(Debug, Clone, Copy)]
pub struct DistState(pub f64);

impl Default for DistState {
    fn default() -> Self {
        DistState(f64::INFINITY)
    }
}

impl StateSize for DistState {
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl GasProgram for SsspGas {
    type State = DistState;
    type Gather = MinF64;

    fn scatter(&self, state: &DistState, weight: f64) -> Option<MinF64> {
        Some(MinF64(state.0 + weight))
    }

    fn apply(&self, state: &mut DistState, merged: Option<&MinF64>, info: &GasInfo) -> bool {
        let offered = match (info.superstep, merged) {
            (0, _) if info.vertex == self.source => 0.0,
            (_, Some(m)) => m.0,
            _ => return false,
        };
        if offered < state.0 {
            state.0 = offered;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn gas_sssp_matches_pregel_semantics() {
        let g = generators::with_random_weights(
            &generators::gnm_connected(80, 200, 3),
            0.1,
            2.0,
            3,
            false,
        );
        let (states, _) = run_gas(SsspGas { source: 0 }, &g, &PregelConfig::single_worker());
        // Validate the triangle inequality and source distance.
        assert_eq!(states[0].0, 0.0);
        for (u, v, w) in g.edges() {
            assert!(states[v as usize].0 <= states[u as usize].0 + w + 1e-9);
        }
    }

    #[test]
    fn gas_pagerank_close_to_power_iteration() {
        let g = generators::digraph_gnm(60, 240, 5);
        let cfg = PregelConfig::single_worker();
        let (scores, stats) = run_pagerank_gas(&g, 0.85, 1e-9, &cfg);
        let reference = {
            let mut prev = vec![1.0 / 60.0; 60];
            for _ in 0..200 {
                let mut next = vec![0.15 / 60.0; 60];
                for u in g.vertices() {
                    let share = 0.85 * prev[u as usize] / g.out_degree(u).max(1) as f64;
                    for &v in g.out_neighbors(u) {
                        next[v as usize] += share;
                    }
                }
                prev = next;
            }
            prev
        };
        for (a, b) in scores.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!(stats.supersteps() < 200);
    }

    #[test]
    fn delta_activation_reduces_messages() {
        // With a loose tolerance, converged vertices stop scattering: the
        // adaptive GAS run sends far fewer messages than tight tolerance.
        let g = generators::digraph_gnm(200, 800, 7);
        let cfg = PregelConfig::single_worker();
        let (_, tight) = run_pagerank_gas(&g, 0.85, 1e-12, &cfg);
        let (_, loose) = run_pagerank_gas(&g, 0.85, 1e-3, &cfg);
        assert!(
            loose.total_messages() * 2 < tight.total_messages(),
            "loose {} vs tight {}",
            loose.total_messages(),
            tight.total_messages()
        );
    }

    #[test]
    fn gather_merge_is_order_insensitive() {
        let mut a = MinF64(3.0);
        a.merge(MinF64(1.0));
        a.merge(MinF64(2.0));
        let mut b = MinF64(2.0);
        b.merge(MinF64(3.0));
        b.merge(MinF64(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_gas_matches_serial() {
        let g = generators::with_random_weights(
            &generators::gnm_connected(120, 360, 9),
            0.1,
            1.0,
            9,
            false,
        );
        let (a, _) = run_gas(SsspGas { source: 5 }, &g, &PregelConfig::single_worker());
        let (b, _) = run_gas(
            SsspGas { source: 5 },
            &g,
            &PregelConfig::default().with_workers(4),
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
        }
    }
}
