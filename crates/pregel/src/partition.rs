//! Vertex-to-worker partitioning strategies.
//!
//! The paper's introduction lists "graph partitioning and re-partitioning"
//! among the optimization techniques designed for vertex-centric systems;
//! the partitioning ablation measures how the strategy moves the BSP cost
//! model's `w = max_i w_i` and `h = max_i max(s_i, r_i)` terms (maxima
//! over workers — exactly what load imbalance inflates).

use vcgp_graph::VertexId;

/// How vertices are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioning {
    /// `v mod W` — spreads id-correlated hubs across workers; the default.
    #[default]
    Hash,
    /// Contiguous ranges of `ceil(n / W)` vertices per worker — better
    /// locality for id-clustered graphs, worse balance for id-correlated
    /// skew (e.g. R-MAT's low-id hubs).
    Range,
}

/// A resolved partitioning for a concrete `(n, W)`.
///
/// `owner`/`local_index` sit on the per-message hot path (one owner lookup
/// per send, one local-index lookup per delivery), so the `%`/`/` pair is
/// strength-reduced for *every* divisor — hardware division is tens of
/// cycles, comparable to the rest of the per-message work combined.
/// Power-of-two divisors use mask/shift; the rest use a Lemire fastmod
/// reciprocal (`m = floor(2^64 / d) + 1`), exact for all `u32` numerators
/// when `d >= 2`. Non-power-of-two worker counts (W=3, W=5, ...) used to
/// take the slow division path on every send — and so did *range*
/// partitioning's block divisor for every worker count.
#[derive(Debug, Clone, Copy)]
pub struct Partitioner {
    strategy: Partitioning,
    num_workers: usize,
    /// `log2(W)` when `W` is a power of two; `u32::MAX` otherwise.
    shift: u32,
    /// Lemire reciprocal of `W` when `W` is not a power of two.
    magic: u64,
    /// Range block size (`ceil(n / W)`); unused for hash.
    block: usize,
    /// `log2(block)` when the block is a power of two; `u32::MAX` otherwise.
    block_shift: u32,
    /// Lemire reciprocal of `block` when it is not a power of two.
    block_magic: u64,
}

/// `floor(2^64 / d) + 1`, the fastdiv/fastmod reciprocal. Requires
/// `2 <= d <= u32::MAX` for exact `u32` quotients and remainders; callers
/// route `d == 1` and powers of two through the shift path instead (so the
/// smallest divisor reaching here is 3).
#[inline]
fn reciprocal(d: usize) -> u64 {
    debug_assert!(d >= 2 && d <= u32::MAX as usize);
    (u64::MAX / d as u64) + 1
}

/// `v / d` via the reciprocal: take the high 64 bits of `m * v`.
#[inline]
fn fastdiv(m: u64, v: u32) -> usize {
    (((m as u128) * v as u128) >> 64) as usize
}

/// `v % d` via the reciprocal: scale the low 64 bits of `m * v` by `d`.
#[inline]
fn fastmod(m: u64, v: u32, d: usize) -> usize {
    let low = m.wrapping_mul(v as u64);
    (((low as u128) * d as u128) >> 64) as usize
}

impl Partitioner {
    /// Resolves `strategy` for a graph of `n` vertices on `w` workers.
    pub fn new(strategy: Partitioning, n: usize, w: usize) -> Self {
        assert!(w >= 1);
        assert!(w <= u32::MAX as usize, "worker count exceeds reciprocal range");
        let block = n.div_ceil(w).max(1);
        Partitioner {
            strategy,
            num_workers: w,
            shift: if w.is_power_of_two() {
                w.trailing_zeros()
            } else {
                u32::MAX
            },
            magic: if w.is_power_of_two() { 0 } else { reciprocal(w) },
            block,
            block_shift: if block.is_power_of_two() {
                block.trailing_zeros()
            } else {
                u32::MAX
            },
            block_magic: if block.is_power_of_two() {
                0
            } else {
                reciprocal(block)
            },
        }
    }

    /// The worker that owns vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        match self.strategy {
            Partitioning::Hash => {
                if self.shift != u32::MAX {
                    v as usize & (self.num_workers - 1)
                } else {
                    fastmod(self.magic, v, self.num_workers)
                }
            }
            Partitioning::Range => {
                let q = if self.block_shift != u32::MAX {
                    v as usize >> self.block_shift
                } else {
                    fastdiv(self.block_magic, v)
                };
                q.min(self.num_workers - 1)
            }
        }
    }

    /// The owner-local index of vertex `v`.
    #[inline]
    pub fn local_index(&self, v: VertexId) -> usize {
        match self.strategy {
            Partitioning::Hash => {
                if self.shift != u32::MAX {
                    v as usize >> self.shift
                } else {
                    fastdiv(self.magic, v)
                }
            }
            Partitioning::Range => v as usize - self.owner(v) * self.block,
        }
    }

    /// The number of workers this partitioner routes over.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(strategy: Partitioning, n: usize, w: usize) {
        let p = Partitioner::new(strategy, n, w);
        let mut counts = vec![0usize; w];
        let mut seen = vec![vec![]; w];
        for v in 0..n as VertexId {
            let o = p.owner(v);
            assert!(o < w, "owner out of range");
            let li = p.local_index(v);
            counts[o] += 1;
            seen[o].push((li, v));
        }
        // Local indices are dense and unique per worker.
        for (o, entries) in seen.iter().enumerate() {
            let mut idx: Vec<usize> = entries.iter().map(|&(li, _)| li).collect();
            idx.sort_unstable();
            assert_eq!(idx, (0..counts[o]).collect::<Vec<_>>(), "worker {o}");
        }
    }

    #[test]
    fn hash_partitioning_dense_local_indices() {
        for (n, w) in [(10, 3), (16, 4), (1, 1), (7, 8), (100, 7)] {
            roundtrip(Partitioning::Hash, n, w);
        }
    }

    #[test]
    fn range_partitioning_dense_local_indices() {
        for (n, w) in [(10, 3), (16, 4), (1, 1), (7, 8), (100, 7)] {
            roundtrip(Partitioning::Range, n, w);
        }
    }

    #[test]
    fn range_is_contiguous() {
        let p = Partitioner::new(Partitioning::Range, 10, 3);
        // block = 4: [0..4) -> 0, [4..8) -> 1, [8..10) -> 2.
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 0);
        assert_eq!(p.owner(4), 1);
        assert_eq!(p.owner(9), 2);
        assert_eq!(p.local_index(9), 1);
    }

    #[test]
    fn power_of_two_fast_path_matches_division() {
        // The mask/shift fast path must agree with the plain `%`/`/`
        // formulas for every strategy-independent input.
        for w in [1usize, 2, 3, 4, 5, 6, 7, 8, 16] {
            let p = Partitioner::new(Partitioning::Hash, 1000, w);
            for v in 0..1000u32 {
                assert_eq!(p.owner(v), v as usize % w, "owner v={v} w={w}");
                assert_eq!(p.local_index(v), v as usize / w, "local v={v} w={w}");
            }
        }
    }

    #[test]
    fn reciprocal_path_matches_division_for_odd_worker_counts() {
        // Non-power-of-two worker counts take the Lemire fastmod path; it
        // must agree with `%`/`/` across the id range, including ids far
        // beyond n (owner() is also used on message destinations, which the
        // engine asserts are in range, but the arithmetic itself must hold
        // anywhere a u32 can point).
        for w in [3usize, 5, 6, 7, 9, 12, 33, 100, 999, 1024] {
            let p = Partitioner::new(Partitioning::Hash, 10_000, w);
            for v in (0..100_000u32)
                .step_by(17)
                .chain([u32::MAX, u32::MAX - 1, u32::MAX / 3])
            {
                assert_eq!(p.owner(v), v as usize % w, "owner v={v} w={w}");
                assert_eq!(p.local_index(v), v as usize / w, "local v={v} w={w}");
            }
        }
    }

    #[test]
    fn range_reciprocal_matches_division() {
        // Range partitioning divides by the block size, which is rarely a
        // power of two; cover blocks of 1 (n <= w), odd blocks, and the
        // final short block.
        for (n, w) in [
            (10usize, 3usize),
            (3, 7),
            (100, 7),
            (1000, 3),
            (12_345, 5),
            (999, 999),
        ] {
            let p = Partitioner::new(Partitioning::Range, n, w);
            let block = n.div_ceil(w).max(1);
            for v in 0..n as u32 {
                let expect = (v as usize / block).min(w - 1);
                assert_eq!(p.owner(v), expect, "owner v={v} n={n} w={w}");
                assert_eq!(
                    p.local_index(v),
                    v as usize - expect * block,
                    "local v={v} n={n} w={w}"
                );
            }
        }
    }

    #[test]
    fn hash_spreads_consecutive_ids() {
        let p = Partitioner::new(Partitioning::Hash, 100, 4);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(1), 1);
        assert_eq!(p.owner(5), 1);
        assert_eq!(p.local_index(5), 1);
    }
}
