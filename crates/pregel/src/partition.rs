//! Vertex-to-worker partitioning strategies.
//!
//! The paper's introduction lists "graph partitioning and re-partitioning"
//! among the optimization techniques designed for vertex-centric systems;
//! the partitioning ablation measures how the strategy moves the BSP cost
//! model's `w = max_i w_i` and `h = max_i max(s_i, r_i)` terms (maxima
//! over workers — exactly what load imbalance inflates).

use vcgp_graph::VertexId;

/// How vertices are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioning {
    /// `v mod W` — spreads id-correlated hubs across workers; the default.
    #[default]
    Hash,
    /// Contiguous ranges of `ceil(n / W)` vertices per worker — better
    /// locality for id-clustered graphs, worse balance for id-correlated
    /// skew (e.g. R-MAT's low-id hubs).
    Range,
}

/// A resolved partitioning for a concrete `(n, W)`.
///
/// `owner`/`local_index` sit on the per-message hot path (one owner lookup
/// per send, one local-index lookup per delivery), so for power-of-two
/// worker counts the hash strategy's `%`/`/` are strength-reduced to
/// mask/shift — hardware division is tens of cycles, comparable to the
/// rest of the per-message work combined.
#[derive(Debug, Clone, Copy)]
pub struct Partitioner {
    strategy: Partitioning,
    num_workers: usize,
    /// `log2(W)` when `W` is a power of two; `u32::MAX` otherwise.
    shift: u32,
    /// Range block size (`ceil(n / W)`); unused for hash.
    block: usize,
}

impl Partitioner {
    /// Resolves `strategy` for a graph of `n` vertices on `w` workers.
    pub fn new(strategy: Partitioning, n: usize, w: usize) -> Self {
        assert!(w >= 1);
        Partitioner {
            strategy,
            num_workers: w,
            shift: if w.is_power_of_two() {
                w.trailing_zeros()
            } else {
                u32::MAX
            },
            block: n.div_ceil(w).max(1),
        }
    }

    /// The worker that owns vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        match self.strategy {
            Partitioning::Hash => {
                if self.shift != u32::MAX {
                    v as usize & (self.num_workers - 1)
                } else {
                    v as usize % self.num_workers
                }
            }
            Partitioning::Range => (v as usize / self.block).min(self.num_workers - 1),
        }
    }

    /// The owner-local index of vertex `v`.
    #[inline]
    pub fn local_index(&self, v: VertexId) -> usize {
        match self.strategy {
            Partitioning::Hash => {
                if self.shift != u32::MAX {
                    v as usize >> self.shift
                } else {
                    v as usize / self.num_workers
                }
            }
            Partitioning::Range => v as usize - self.owner(v) * self.block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(strategy: Partitioning, n: usize, w: usize) {
        let p = Partitioner::new(strategy, n, w);
        let mut counts = vec![0usize; w];
        let mut seen = vec![vec![]; w];
        for v in 0..n as VertexId {
            let o = p.owner(v);
            assert!(o < w, "owner out of range");
            let li = p.local_index(v);
            counts[o] += 1;
            seen[o].push((li, v));
        }
        // Local indices are dense and unique per worker.
        for (o, entries) in seen.iter().enumerate() {
            let mut idx: Vec<usize> = entries.iter().map(|&(li, _)| li).collect();
            idx.sort_unstable();
            assert_eq!(idx, (0..counts[o]).collect::<Vec<_>>(), "worker {o}");
        }
    }

    #[test]
    fn hash_partitioning_dense_local_indices() {
        for (n, w) in [(10, 3), (16, 4), (1, 1), (7, 8), (100, 7)] {
            roundtrip(Partitioning::Hash, n, w);
        }
    }

    #[test]
    fn range_partitioning_dense_local_indices() {
        for (n, w) in [(10, 3), (16, 4), (1, 1), (7, 8), (100, 7)] {
            roundtrip(Partitioning::Range, n, w);
        }
    }

    #[test]
    fn range_is_contiguous() {
        let p = Partitioner::new(Partitioning::Range, 10, 3);
        // block = 4: [0..4) -> 0, [4..8) -> 1, [8..10) -> 2.
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 0);
        assert_eq!(p.owner(4), 1);
        assert_eq!(p.owner(9), 2);
        assert_eq!(p.local_index(9), 1);
    }

    #[test]
    fn power_of_two_fast_path_matches_division() {
        // The mask/shift fast path must agree with the plain `%`/`/`
        // formulas for every strategy-independent input.
        for w in [1usize, 2, 3, 4, 5, 6, 7, 8, 16] {
            let p = Partitioner::new(Partitioning::Hash, 1000, w);
            for v in 0..1000u32 {
                assert_eq!(p.owner(v), v as usize % w, "owner v={v} w={w}");
                assert_eq!(p.local_index(v), v as usize / w, "local v={v} w={w}");
            }
        }
    }

    #[test]
    fn hash_spreads_consecutive_ids() {
        let p = Partitioner::new(Partitioning::Hash, 100, 4);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(1), 1);
        assert_eq!(p.owner(5), 1);
        assert_eq!(p.local_index(5), 1);
    }
}
