//! Run statistics: the raw observables of the BSP cost model.

use crate::aggregate::AggValue;
use std::time::Duration;

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// Every vertex voted to halt and no message was in flight.
    Converged,
    /// The configured superstep cap was reached.
    MaxSupersteps,
    /// The master requested termination.
    MasterHalted,
}

/// Per-worker observables for one superstep: exactly the `w_i`, `s_i`,
/// `r_i` of Valiant's model (§2.1 of the paper), plus wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Local work units performed by this worker (`w_i`).
    pub work: u64,
    /// Messages sent by this worker (`s_i`), counted at the algorithm
    /// level (before any combining).
    pub sent: u64,
    /// Messages received by this worker (`r_i`), counted at the algorithm
    /// level.
    pub received: u64,
    /// Wall-clock time of the compute phase on this worker.
    pub wall: Duration,
    /// Worklist chunks of this worker executed by a thread other than its
    /// home thread (zero unless the engine ran multi-threaded with work
    /// stealing enabled).
    pub stolen_chunks: u64,
}

/// Message-plane buffer accounting for one superstep, summed over workers.
///
/// The engine recycles every message-path buffer (outgoing lanes, outbox
/// slots, inboxes) across supersteps; after a short warmup, steady-state
/// supersteps must report `allocated == 0`. See `crate::pool` for the
/// recycling scheme these counters observe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Message-path buffers that entered service with no capacity (a fresh
    /// allocation): startup and first-use events only, in steady state 0.
    pub allocated: u64,
    /// Buffers reused with their capacity intact via the recycling cycle.
    pub recycled: u64,
    /// Total inbox capacity (in messages) retained by the vertices that ran
    /// `compute` this superstep — stable across steady-state supersteps
    /// because cleared inboxes keep their allocation.
    pub inbox_capacity: u64,
}

/// Aggregated observables for one superstep.
///
/// The three message counters measure different layers of the plane:
/// [`messages_sent`](Self::messages_sent) is what the *algorithm* produced
/// (one per [`crate::Context::send`], before any combining — the paper's
/// message complexity); [`messages_combined_sender`](Self::messages_combined_sender)
/// is how many of those sends were folded into an already-buffered message
/// at the sender and therefore never materialized;
/// [`messages_delivered`](Self::messages_delivered) is what reached vertex
/// inboxes after the receiver-side combining backstop. Without a combiner,
/// `sent == delivered` and `combined == 0`; with one,
/// `delivered <= sent - messages_combined_sender`.
#[derive(Debug, Clone, Default)]
pub struct SuperstepStats {
    /// One entry per worker.
    pub workers: Vec<WorkerStats>,
    /// Vertices that executed `compute` this superstep.
    pub active: usize,
    /// Total messages sent at the algorithm level (pre-combine).
    pub messages_sent: u64,
    /// Total messages delivered to inboxes (post-combine, both stages).
    pub messages_delivered: u64,
    /// Sends folded into an existing per-destination entry inside a
    /// sender's buffers (zero without a combiner, and in per-vertex
    /// tracking mode, where the sender stage is disabled). Unlike the two
    /// counters above this is a transport observable: it depends on the
    /// worker count and partitioning, because only messages that share a
    /// sender worker can be combined there.
    pub messages_combined_sender: u64,
    /// Buffer recycling observables for this superstep.
    pub buffers: BufferStats,
    /// The merged aggregator values produced by this superstep (in
    /// declaration order) — the run's aggregator *trajectory*, recorded so
    /// determinism tests can assert it superstep by superstep instead of
    /// only observing final vertex values.
    pub aggregates: Vec<AggValue>,
    /// Nanoseconds threads spent waiting at superstep barriers, summed over
    /// threads, as observed since the previous master phase (a thread's
    /// wait at the delivery barrier is only known after the master phase
    /// embedded in it runs, so it lands in the next superstep's entry).
    /// Zero when the engine ran on one thread — no barriers exist there.
    pub barrier_wait_ns: u64,
    /// The largest single-thread share of [`barrier_wait_ns`](Self::barrier_wait_ns).
    pub barrier_wait_max_ns: u64,
    /// Worklist chunks executed this superstep (zero when the engine ran
    /// without chunked work stealing — one thread, or stealing disabled).
    pub chunks: u64,
    /// How many of those chunks ran on a thread other than their worker's
    /// home thread.
    pub chunks_stolen: u64,
}

impl SuperstepStats {
    /// `w = max_i w_i`.
    pub fn max_work(&self) -> u64 {
        self.workers.iter().map(|w| w.work).max().unwrap_or(0)
    }

    /// `h = max_i max(s_i, r_i)`.
    pub fn max_h(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.sent.max(w.received))
            .max()
            .unwrap_or(0)
    }

    /// Total work across workers.
    pub fn total_work(&self) -> u64 {
        self.workers.iter().map(|w| w.work).sum()
    }
}

/// Per-vertex maxima across the whole run, recorded when
/// [`crate::PregelConfig::track_per_vertex`] is set. These are the
/// observables for BPPA properties 1-3.
#[derive(Debug, Clone, Default)]
pub struct PerVertexStats {
    /// Max messages sent by each vertex in any single superstep.
    pub max_sent: Vec<u64>,
    /// Max messages received by each vertex in any single superstep.
    pub max_received: Vec<u64>,
    /// Max work units charged by each vertex in any single superstep.
    pub max_work: Vec<u64>,
    /// Max state bytes held by each vertex at any superstep boundary.
    pub max_state_bytes: Vec<u64>,
}

impl PerVertexStats {
    pub(crate) fn new(n: usize) -> Self {
        PerVertexStats {
            max_sent: vec![0; n],
            max_received: vec![0; n],
            max_work: vec![0; n],
            max_state_bytes: vec![0; n],
        }
    }

    /// Merges another run's per-vertex maxima into this one (pipelines).
    pub fn merge_max(&mut self, other: &PerVertexStats) {
        fn fold(a: &mut Vec<u64>, b: &[u64]) {
            if a.len() < b.len() {
                a.resize(b.len(), 0);
            }
            for (x, &y) in a.iter_mut().zip(b) {
                *x = (*x).max(y);
            }
        }
        fold(&mut self.max_sent, &other.max_sent);
        fold(&mut self.max_received, &other.max_received);
        fold(&mut self.max_work, &other.max_work);
        fold(&mut self.max_state_bytes, &other.max_state_bytes);
    }
}

/// Complete statistics of one Pregel run (or a pipeline of runs, after
/// [`RunStats::merge`]).
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-superstep observables, in execution order.
    pub superstep_stats: Vec<SuperstepStats>,
    /// Number of workers `p`.
    pub num_workers: usize,
    /// Why the computation stopped.
    pub halt_reason: HaltReason,
    /// Per-vertex maxima (when tracking was enabled).
    pub per_vertex: Option<PerVertexStats>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl RunStats {
    /// Number of supersteps executed.
    pub fn supersteps(&self) -> u64 {
        self.superstep_stats.len() as u64
    }

    /// Total messages sent over the run (pre-combine; the paper's message
    /// complexity).
    pub fn total_messages(&self) -> u64 {
        self.superstep_stats.iter().map(|s| s.messages_sent).sum()
    }

    /// Total work units over the run.
    pub fn total_work(&self) -> u64 {
        self.superstep_stats.iter().map(|s| s.total_work()).sum()
    }

    /// Concatenates another run's supersteps onto this one, merging
    /// per-vertex maxima and summing wall time. Used by multi-stage
    /// pipelines (the BCC workload chains six Pregel jobs).
    pub fn merge(&mut self, other: RunStats) {
        self.superstep_stats.extend(other.superstep_stats);
        self.num_workers = self.num_workers.max(other.num_workers);
        self.halt_reason = other.halt_reason;
        self.wall += other.wall;
        match (&mut self.per_vertex, other.per_vertex) {
            (Some(mine), Some(theirs)) => mine.merge_max(&theirs),
            (slot @ None, Some(theirs)) => *slot = Some(theirs),
            _ => {}
        }
    }

    /// An empty stats value to fold pipeline stages into.
    pub fn empty(num_workers: usize) -> RunStats {
        RunStats {
            superstep_stats: Vec::new(),
            num_workers,
            halt_reason: HaltReason::Converged,
            per_vertex: None,
            wall: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(workers: Vec<WorkerStats>) -> SuperstepStats {
        SuperstepStats {
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn superstep_maxima() {
        let s = stats_with(vec![
            WorkerStats {
                work: 10,
                sent: 3,
                received: 9,
                wall: Duration::ZERO,
                ..Default::default()
            },
            WorkerStats {
                work: 7,
                sent: 8,
                received: 2,
                wall: Duration::ZERO,
                ..Default::default()
            },
        ]);
        assert_eq!(s.max_work(), 10);
        assert_eq!(s.max_h(), 9);
        assert_eq!(s.total_work(), 17);
    }

    #[test]
    fn empty_superstep() {
        let s = stats_with(vec![]);
        assert_eq!(s.max_work(), 0);
        assert_eq!(s.max_h(), 0);
    }

    #[test]
    fn merge_concatenates_and_maxes() {
        let mut a = RunStats::empty(2);
        a.superstep_stats.push(stats_with(vec![WorkerStats {
            work: 5,
            sent: 1,
            received: 1,
            wall: Duration::ZERO,
            ..Default::default()
        }]));
        a.per_vertex = Some(PerVertexStats {
            max_sent: vec![1, 2],
            max_received: vec![0, 0],
            max_work: vec![3, 3],
            max_state_bytes: vec![8, 8],
        });
        let mut b = RunStats::empty(2);
        b.superstep_stats.push(stats_with(vec![WorkerStats {
            work: 9,
            sent: 2,
            received: 2,
            wall: Duration::ZERO,
            ..Default::default()
        }]));
        b.per_vertex = Some(PerVertexStats {
            max_sent: vec![4, 1],
            max_received: vec![1, 1],
            max_work: vec![1, 9],
            max_state_bytes: vec![16, 4],
        });
        b.halt_reason = HaltReason::MasterHalted;
        a.merge(b);
        assert_eq!(a.supersteps(), 2);
        assert_eq!(a.total_work(), 14);
        assert_eq!(a.halt_reason, HaltReason::MasterHalted);
        let pv = a.per_vertex.unwrap();
        assert_eq!(pv.max_sent, vec![4, 2]);
        assert_eq!(pv.max_work, vec![3, 9]);
        assert_eq!(pv.max_state_bytes, vec![16, 8]);
    }

    #[test]
    fn totals_over_run() {
        let mut r = RunStats::empty(1);
        for i in 0..3u64 {
            r.superstep_stats.push(SuperstepStats {
                workers: vec![WorkerStats {
                    work: i + 1,
                    sent: i,
                    received: i,
                    wall: Duration::ZERO,
                    ..Default::default()
                }],
                active: 1,
                messages_sent: i,
                messages_delivered: i,
                ..Default::default()
            });
        }
        assert_eq!(r.supersteps(), 3);
        assert_eq!(r.total_messages(), 3);
        assert_eq!(r.total_work(), 6);
    }
}
