//! Message-plane buffer recycling and sender-side combining support.
//!
//! The engine's hot path moves three kinds of buffers every superstep:
//! per-destination-worker outgoing lanes, the outbox slots they are shipped
//! through, and per-vertex inboxes. Before this module existed, every one
//! of them was reallocated from zero capacity each superstep. The recycling
//! scheme is a degenerate free-list with exactly one parked buffer per
//! outbox slot, circulated by `mem::swap`:
//!
//! 1. the sender swaps its full lane into the outbox slot and keeps the
//!    empty (but capacity-carrying) vector the receiver parked there;
//! 2. the receiver swaps the full lane out into a per-worker scratch
//!    vector, drains it, and leaves its previous scratch — again empty but
//!    with capacity — parked in the slot for the sender's next flush;
//! 3. inboxes are `clear()`ed after `compute` instead of being dropped, so
//!    their capacity survives into the next delivery phase.
//!
//! After a two-superstep warmup the cycle is closed: no message-path buffer
//! is allocated again. [`BufferCounters`] observes the invariant (and the
//! warmup) and is surfaced per superstep as
//! [`crate::metrics::BufferStats`].
//!
//! The sender-side combining index maps a destination vertex to its
//! position in the sender's lane, generation-stamped so clearing between
//! supersteps is O(1). Two variants share that contract: [`DirectTable`]
//! (one slot per graph vertex — a single indexed load per send, used up to
//! [`DIRECT_INDEX_MAX_VERTICES`]) and [`DestTable`] (open addressing,
//! memory proportional to distinct destinations, for graphs beyond the
//! direct limit). Lookups resolve in lane push order, so combining folds
//! messages in exactly the order they were sent — keeping the engine's
//! documented determinism.

use vcgp_graph::VertexId;

/// One `outboxes[sender][receiver]` slot: the shipped messages plus how
/// many algorithm-level sends were folded into them at the sender (so the
/// receiver can report `r_i` pre-combine, per its documented meaning).
pub(crate) struct OutboxSlot<M> {
    pub(crate) msgs: Vec<(VertexId, M)>,
    pub(crate) folded: u64,
}

impl<M> Default for OutboxSlot<M> {
    fn default() -> Self {
        OutboxSlot {
            msgs: Vec::new(),
            folded: 0,
        }
    }
}

/// Counts message-path buffer acquisitions: `recycled` when a buffer with
/// live capacity came back through the swap cycle, `allocated` when a
/// fresh zero-capacity vector had to enter circulation (startup, or a lane
/// used for the first time).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BufferCounters {
    pub(crate) allocated: u64,
    pub(crate) recycled: u64,
}

impl BufferCounters {
    /// Records one buffer entering service with `capacity` message slots.
    #[inline]
    pub(crate) fn note(&mut self, capacity: usize) {
        if capacity > 0 {
            self.recycled += 1;
        } else {
            self.allocated += 1;
        }
    }

    /// Takes this superstep's counts, resetting for the next.
    pub(crate) fn take(&mut self) -> BufferCounters {
        std::mem::take(self)
    }
}

/// Largest vertex count for which sender-side combining uses the
/// direct-mapped [`DirectTable`] (8 MiB of index per worker at the limit);
/// larger graphs fall back to the open-addressing [`DestTable`] per lane.
pub(crate) const DIRECT_INDEX_MAX_VERTICES: usize = 1 << 20;

/// Direct-mapped variant of [`DestTable`]: one generation-stamped slot per
/// *graph vertex*, so a lookup is a single indexed load with no hashing,
/// probing, or growth checks. One instance serves all of a worker's lanes
/// (a destination vertex determines its lane uniquely), allocated once at
/// startup — the memory is what [`DIRECT_INDEX_MAX_VERTICES`] bounds.
pub(crate) struct DirectTable {
    /// `generation << 32 | lane_index`; a slot whose generation differs
    /// from [`DirectTable::gen`] is empty this superstep.
    slots: Vec<u64>,
    gen: u64,
}

impl DirectTable {
    pub(crate) fn new(num_vertices: usize) -> Self {
        DirectTable {
            slots: vec![0; num_vertices],
            gen: 1,
        }
    }

    /// Starts a new superstep: every slot becomes logically empty.
    #[inline]
    pub(crate) fn advance(&mut self) {
        self.gen += 1;
        if self.gen >= u32::MAX as u64 {
            self.reset();
        }
    }

    /// Re-zeroes the backing store when the 32-bit generation space is
    /// exhausted (once every ~4 billion supersteps).
    #[cold]
    fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = 0);
        self.gen = 1;
    }

    /// Returns the lane index recorded for `key` this superstep, or
    /// records `next` (the position the caller is about to push) and
    /// returns `None`.
    #[inline]
    pub(crate) fn find_or_insert(&mut self, key: VertexId, next: usize) -> Option<usize> {
        debug_assert!(next < u32::MAX as usize, "lane overflows direct table");
        let s = &mut self.slots[key as usize];
        if *s >> 32 == self.gen {
            Some((*s & 0xFFFF_FFFF) as usize)
        } else {
            *s = (self.gen << 32) | next as u64;
            None
        }
    }
}

/// Number of lane entries per occupied table slot above which the table
/// grows (load factor 7/8).
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Open-addressing map from destination vertex id to an index in the
/// owning lane's message buffer. Slots are stamped with a generation so
/// starting a new superstep is a counter bump, not a table clear; the
/// backing storage is retained for the whole run.
pub(crate) struct DestTable {
    /// `generation << 32 | (lane_index + 1)`; a slot whose generation
    /// differs from [`DestTable::gen`] is empty this superstep.
    slots: Vec<u64>,
    /// `slots.len() - 1`, cached: the probe sequence runs once per send.
    mask: usize,
    /// Entry count at which the table grows (load factor 7/8), cached so
    /// the per-send check is one comparison instead of two multiplies.
    grow_at: usize,
    gen: u64,
    /// Entries recorded this superstep.
    len: usize,
}

impl DestTable {
    pub(crate) fn new() -> Self {
        DestTable {
            slots: Vec::new(),
            mask: 0,
            grow_at: 0,
            gen: 0,
            len: 0,
        }
    }

    /// Starts a new superstep: every slot becomes logically empty.
    #[inline]
    pub(crate) fn advance(&mut self) {
        self.gen += 1;
        self.len = 0;
    }

    #[inline]
    fn hash(&self, key: VertexId) -> usize {
        // Fibonacci hashing; the high bits are the well-mixed ones.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Looks up `key` among this superstep's entries of `lane`. Returns the
    /// lane index of an existing entry, or records `lane.len()` as the
    /// position the caller is about to push and returns `None`.
    #[inline]
    pub(crate) fn find_or_insert<M>(
        &mut self,
        key: VertexId,
        lane: &[(VertexId, M)],
    ) -> Option<usize> {
        if self.len >= self.grow_at {
            self.grow(lane);
        }
        let tag = self.gen << 32;
        let mut i = self.hash(key);
        loop {
            let s = self.slots[i];
            if s >> 32 != self.gen {
                debug_assert!(lane.len() < u32::MAX as usize, "lane overflows dest table");
                self.slots[i] = tag | (lane.len() as u64 + 1);
                self.len += 1;
                return None;
            }
            let idx = (s & 0xFFFF_FFFF) as usize - 1;
            if lane[idx].0 == key {
                return Some(idx);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Doubles the table (min 64 slots) and re-indexes this superstep's
    /// lane entries; their keys are unique by construction.
    #[cold]
    fn grow<M>(&mut self, lane: &[(VertexId, M)]) {
        let new_len = (self.slots.len() * 2).max(64);
        self.slots.clear();
        self.slots.resize(new_len, 0);
        self.mask = new_len - 1;
        self.grow_at = new_len / LOAD_DEN * LOAD_NUM;
        // Re-stamp under a fresh generation so stale pre-grow slots (all
        // zero now) can never alias.
        self.gen += 1;
        let tag = self.gen << 32;
        for (idx, (key, _)) in lane.iter().enumerate() {
            let mut i = self.hash(*key);
            while self.slots[i] >> 32 == self.gen {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = tag | (idx as u64 + 1);
        }
    }
}

/// One per-destination-worker outgoing buffer: the addressed messages, the
/// sender-side combining index over them, and the fold count shipped to
/// the receiver alongside the messages.
pub(crate) struct Lane<M> {
    pub(crate) buf: Vec<(VertexId, M)>,
    pub(crate) folded: u64,
    pub(crate) table: DestTable,
}

impl<M> Lane<M> {
    pub(crate) fn new() -> Self {
        Lane {
            buf: Vec::new(),
            folded: 0,
            table: DestTable::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_table_finds_duplicates_in_push_order() {
        let mut t = DestTable::new();
        let mut lane: Vec<(VertexId, u64)> = Vec::new();
        for &(key, val) in &[(5, 10), (9, 20), (5, 30), (1, 40), (9, 50), (5, 60)] {
            match t.find_or_insert(key, &lane) {
                Some(i) => lane[i].1 += val,
                None => lane.push((key, val)),
            }
        }
        assert_eq!(lane, vec![(5, 100), (9, 70), (1, 40)]);
    }

    #[test]
    fn dest_table_advance_empties_logically() {
        let mut t = DestTable::new();
        let mut lane: Vec<(VertexId, u32)> = Vec::new();
        assert!(t.find_or_insert(3, &lane).is_none());
        lane.push((3, 1));
        assert_eq!(t.find_or_insert(3, &lane), Some(0));
        t.advance();
        lane.clear();
        // Same key is unknown again in the new superstep.
        assert!(t.find_or_insert(3, &lane).is_none());
        lane.push((3, 2));
        assert_eq!(t.find_or_insert(3, &lane), Some(0));
    }

    #[test]
    fn dest_table_survives_growth() {
        let mut t = DestTable::new();
        let mut lane: Vec<(VertexId, u64)> = Vec::new();
        // Insert enough distinct keys to force several growths, then check
        // every key still resolves to its own slot.
        for key in 0..500u32 {
            assert!(t.find_or_insert(key, &lane).is_none(), "key {key} fresh");
            lane.push((key, key as u64));
        }
        for key in 0..500u32 {
            assert_eq!(t.find_or_insert(key, &lane), Some(key as usize));
        }
    }

    #[test]
    fn direct_table_roundtrip_and_advance() {
        let mut t = DirectTable::new(8);
        assert!(t.find_or_insert(3, 0).is_none());
        assert!(t.find_or_insert(5, 1).is_none());
        assert_eq!(t.find_or_insert(3, 99), Some(0));
        assert_eq!(t.find_or_insert(5, 99), Some(1));
        t.advance();
        // All slots are logically empty again in the new superstep.
        assert!(t.find_or_insert(3, 7).is_none());
        assert_eq!(t.find_or_insert(3, 99), Some(7));
    }

    #[test]
    fn direct_table_generation_wrap_resets() {
        let mut t = DirectTable::new(4);
        t.gen = u32::MAX as u64 - 1;
        assert!(t.find_or_insert(2, 5).is_none());
        assert_eq!(t.find_or_insert(2, 0), Some(5));
        t.advance(); // crosses the wrap threshold and re-zeroes
        assert_eq!(t.gen, 1);
        assert!(t.find_or_insert(2, 1).is_none());
        assert_eq!(t.find_or_insert(2, 0), Some(1));
    }

    #[test]
    fn buffer_counters_classify_by_capacity() {
        let mut c = BufferCounters::default();
        c.note(0);
        c.note(16);
        c.note(8);
        assert_eq!(c.allocated, 1);
        assert_eq!(c.recycled, 2);
        let taken = c.take();
        assert_eq!(taken.recycled, 2);
        assert_eq!(c.allocated + c.recycled, 0);
    }
}
