//! An instrumented Pregel-style BSP vertex-centric graph processing engine.
//!
//! The engine executes a user [`VertexProgram`] over a [`vcgp_graph::Graph`]
//! in globally-synchronous supersteps, following the semantics of Malewicz
//! et al.'s Pregel (SIGMOD 2010):
//!
//! * in superstep 0 every vertex is active and `compute` runs with no
//!   incoming messages;
//! * messages sent in superstep `S` are delivered at the start of `S + 1`;
//! * a vertex may [`Context::vote_to_halt`]; an incoming message reactivates
//!   it; the computation converges when every vertex is halted and no
//!   message is in flight;
//! * optional message combiners, named monoid aggregators, and a
//!   master-compute hook (as in Giraph) for global phase control.
//!
//! Unlike a production system, the engine's first-class output is its
//! **instrumentation**: per-superstep, per-worker counts of local work and
//! messages sent/received — exactly the `w_i`, `s_i`, `r_i` of Valiant's BSP
//! cost model used by the paper (§2.1) — plus optional per-vertex maxima of
//! messages, work, and state bytes for the BPPA properties (§2.2).
//!
//! Work is counted in deterministic *operation units*, not wall time: one
//! unit per compute invocation, per message sent, and per message received,
//! plus whatever the program explicitly charges for adjacency scans via
//! [`Context::charge`]. This makes every cost reported by the workspace
//! exactly reproducible.
//!
//! # Example
//!
//! ```
//! use vcgp_pregel::{Context, PregelConfig, VertexProgram};
//!
//! /// Each vertex counts its neighbors by receiving one ping per edge.
//! struct CountPings;
//! impl VertexProgram for CountPings {
//!     type Value = u64;
//!     type Message = ();
//!     fn compute(&self, ctx: &mut Context<'_, Self>, msgs: &[()]) {
//!         if ctx.superstep() == 0 {
//!             ctx.send_to_all_out_neighbors(());
//!         } else {
//!             *ctx.value_mut() = msgs.len() as u64;
//!         }
//!         ctx.vote_to_halt();
//!     }
//! }
//!
//! let g = vcgp_graph::generators::star(5);
//! let (counts, stats) = vcgp_pregel::run(&CountPings, &g, &PregelConfig::single_worker());
//! assert_eq!(counts, vec![4, 1, 1, 1, 1]);
//! assert_eq!(stats.supersteps(), 2);
//! ```

pub mod aggregate;
pub(crate) mod barrier;
pub mod engine;
pub mod gas;
pub mod metrics;
pub mod partition;
pub(crate) mod pool;
pub mod program;
pub mod state_size;

pub use aggregate::{AggOp, AggTypeMismatch, AggValue, AggregatorDef};
pub use engine::{run, run_with_values, PregelConfig};
pub use gas::{run_gas, GasInfo, GasProgram, GatherValue};
pub use metrics::{HaltReason, PerVertexStats, RunStats, SuperstepStats, WorkerStats};
pub use partition::{Partitioner, Partitioning};
pub use program::{Combiner, Context, MasterContext, VertexProgram};
pub use state_size::StateSize;

pub use vcgp_graph::{Graph, VertexId, INVALID_VERTEX};
