//! Row 7: strongly connected components by Tarjan's algorithm \[21\],
//! `O(m + n)`, implemented iteratively so deep graphs (long directed paths)
//! cannot overflow the call stack.

use crate::work::Work;
use vcgp_graph::{Graph, VertexId};

/// Result of the SCC baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccResult {
    /// Component label per vertex, normalized to the smallest vertex id in
    /// the component (so results are comparable across algorithms).
    pub components: Vec<VertexId>,
    /// Number of strongly connected components.
    pub count: usize,
    /// Operation count.
    pub work: u64,
}

/// Tarjan's SCC algorithm (iterative).
pub fn scc(g: &Graph) -> SccResult {
    assert!(g.is_directed(), "scc requires a digraph");
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<VertexId> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0u32;
    let mut count = 0usize;
    let mut work = Work::new();
    // (vertex, next out-edge offset) call frames.
    let mut frames: Vec<(VertexId, usize)> = Vec::new();

    for s in 0..n as VertexId {
        work.charge(1);
        if index[s as usize] != UNSET {
            continue;
        }
        index[s as usize] = next_index;
        low[s as usize] = next_index;
        next_index += 1;
        stack.push(s);
        on_stack[s as usize] = true;
        frames.push((s, 0));
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let neighbors = g.out_neighbors(v);
            if *ei < neighbors.len() {
                let u = neighbors[*ei];
                *ei += 1;
                work.charge(1);
                if index[u as usize] == UNSET {
                    index[u as usize] = next_index;
                    low[u as usize] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u as usize] = true;
                    frames.push((u, 0));
                } else if on_stack[u as usize] {
                    low[v as usize] = low[v as usize].min(index[u as usize]);
                }
            } else {
                frames.pop();
                work.charge(1);
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    // v is the root of an SCC: pop its members.
                    count += 1;
                    let mut members = Vec::new();
                    loop {
                        let u = stack.pop().expect("scc stack underflow");
                        on_stack[u as usize] = false;
                        members.push(u);
                        work.charge(1);
                        if u == v {
                            break;
                        }
                    }
                    let label = *members.iter().min().expect("non-empty scc");
                    for u in members {
                        comp[u as usize] = label;
                    }
                }
            }
        }
    }
    SccResult {
        components: comp,
        count,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn directed_cycle_is_one_scc() {
        let r = scc(&generators::directed_cycle(7));
        assert_eq!(r.count, 1);
        assert!(r.components.iter().all(|&c| c == 0));
    }

    #[test]
    fn directed_path_is_all_singletons() {
        let r = scc(&generators::directed_path(6));
        assert_eq!(r.count, 6);
        assert_eq!(r.components, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // 0->1->2->0 and 3->4->3, plus 2->3.
        let mut b = GraphBuilder::directed(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(3, 4);
        b.add_edge(4, 3);
        b.add_edge(2, 3);
        let r = scc(&b.build());
        assert_eq!(r.count, 2);
        assert_eq!(r.components, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn cyclic_digraph_family_has_k_plus_singletons() {
        let g = generators::cyclic_digraph(40, 4, 10, 1);
        let r = scc(&g);
        // Each of the 4 cycles is one SCC; inter-cycle arcs only go forward.
        assert_eq!(r.count, 4);
    }

    #[test]
    fn deep_path_does_not_overflow() {
        let g = generators::directed_path(200_000);
        let r = scc(&g);
        assert_eq!(r.count, 200_000);
    }

    #[test]
    fn scc_is_equivalence_consistent() {
        // Mutual reachability check on a small random digraph against the
        // label assignment.
        let g = generators::digraph_gnm(30, 90, 5);
        let r = scc(&g);
        let reach = |s: u32| vcgp_graph::traversal::bfs_levels(&g, s);
        for u in 0..30u32 {
            let ru = reach(u);
            for v in 0..30u32 {
                let same = r.components[u as usize] == r.components[v as usize];
                let mutual = ru[v as usize] != u32::MAX
                    && reach(v)[u as usize] != u32::MAX;
                assert_eq!(same, mutual, "vertices {u},{v}");
            }
        }
    }

    #[test]
    fn work_linear() {
        let w1 = scc(&generators::digraph_gnm(1000, 4000, 2)).work;
        let w2 = scc(&generators::digraph_gnm(2000, 8000, 2)).work;
        let ratio = w2 as f64 / w1 as f64;
        assert!((1.6..2.5).contains(&ratio), "ratio {ratio}");
    }
}
