//! Rows 1 and 17: diameter and unweighted APSP by BFS from every vertex,
//! `O(mn)` — matching the complexity the paper lists for both baselines
//! (Roditty-Williams-style exact computation for row 1; Chan's algorithm
//! substituted by BFS-per-source for row 17, same `O(mn)` bound).

use crate::work::Work;
use std::collections::VecDeque;
use vcgp_graph::{Graph, VertexId};

/// Result of the diameter baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiameterResult {
    /// The diameter `δ` (max eccentricity).
    pub diameter: u32,
    /// Eccentricity of every vertex.
    pub eccentricities: Vec<u32>,
    /// Operation count.
    pub work: u64,
}

/// BFS levels from `src` charging one unit per visit and per scanned edge.
fn bfs_counted(g: &Graph, src: VertexId, levels: &mut [u32], work: &mut Work) {
    levels.iter_mut().for_each(|l| *l = u32::MAX);
    let mut queue = VecDeque::new();
    levels[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        work.charge(1);
        let next = levels[u as usize] + 1;
        for &v in g.out_neighbors(u) {
            work.charge(1);
            if levels[v as usize] == u32::MAX {
                levels[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
}

/// Exact diameter of a connected unweighted graph. Row 1 baseline.
///
/// # Panics
/// Panics if the graph is empty or disconnected (eccentricities would be
/// infinite).
pub fn diameter(g: &Graph) -> DiameterResult {
    let n = g.num_vertices();
    assert!(n > 0, "diameter of an empty graph is undefined");
    let mut work = Work::new();
    let mut levels = vec![u32::MAX; n];
    let mut ecc = vec![0u32; n];
    let mut best = 0u32;
    for s in 0..n as VertexId {
        bfs_counted(g, s, &mut levels, &mut work);
        let mut e = 0u32;
        for &d in levels.iter() {
            assert!(d != u32::MAX, "diameter requires a connected graph");
            e = e.max(d);
        }
        ecc[s as usize] = e;
        best = best.max(e);
    }
    DiameterResult {
        diameter: best,
        eccentricities: ecc,
        work: work.count(),
    }
}

/// Result of the APSP baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApspResult {
    /// `dist[u][v]` = hop distance (`u32::MAX` if unreachable).
    pub dist: Vec<Vec<u32>>,
    /// Operation count.
    pub work: u64,
}

/// All-pairs shortest paths of an unweighted graph by BFS from every
/// source. Row 17 baseline.
pub fn apsp(g: &Graph) -> ApspResult {
    let n = g.num_vertices();
    let mut work = Work::new();
    let mut dist = Vec::with_capacity(n);
    for s in 0..n as VertexId {
        let mut levels = vec![u32::MAX; n];
        bfs_counted(g, s, &mut levels, &mut work);
        dist.push(levels);
    }
    ApspResult {
        dist,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(diameter(&generators::path(10)).diameter, 9);
        assert_eq!(diameter(&generators::cycle(8)).diameter, 4);
        assert_eq!(diameter(&generators::star(9)).diameter, 2);
        assert_eq!(diameter(&generators::complete(5)).diameter, 1);
        assert_eq!(diameter(&generators::grid(4, 6)).diameter, 8);
    }

    #[test]
    fn eccentricities_of_path() {
        let r = diameter(&generators::path(5));
        assert_eq!(r.eccentricities, vec![4, 3, 2, 3, 4]);
    }

    #[test]
    fn matches_property_probe() {
        for seed in 0..4 {
            let g = generators::gnm_connected(40, 90, seed);
            assert_eq!(
                diameter(&g).diameter,
                vcgp_graph::properties::exact_diameter(&g).unwrap()
            );
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_panics() {
        diameter(&vcgp_graph::GraphBuilder::new(3).build());
    }

    #[test]
    fn apsp_symmetric_on_undirected() {
        let g = generators::gnm_connected(25, 50, 2);
        let r = apsp(&g);
        for u in 0..25 {
            assert_eq!(r.dist[u][u], 0);
            for v in 0..25 {
                assert_eq!(r.dist[u][v], r.dist[v][u]);
            }
        }
    }

    #[test]
    fn apsp_work_scales_with_mn() {
        let w1 = apsp(&generators::gnm_connected(100, 300, 1)).work;
        let w2 = apsp(&generators::gnm_connected(200, 600, 1)).work;
        let ratio = w2 as f64 / w1 as f64;
        assert!((3.0..5.5).contains(&ratio), "expected ~4x, got {ratio}");
    }

    #[test]
    fn apsp_directed_reachability() {
        let g = generators::directed_path(4);
        let r = apsp(&g);
        assert_eq!(r.dist[0][3], 3);
        assert_eq!(r.dist[3][0], u32::MAX);
    }
}
