//! Rows 13 and 14: matching baselines.
//!
//! Row 13 (maximum weight matching): the paper's baseline is Preis's
//! linear-time 1/2-approximation \[16\]. We implement the standard greedy
//! heaviest-edge-first realization (`O(m log m)` from sorting); with
//! distinct edge weights its output coincides exactly with the
//! locally-dominant matching the vertex-centric algorithm computes, which
//! makes the two implementations comparable edge-for-edge.
//!
//! Row 14 (bipartite maximal matching, unweighted): greedy `O(m + n)`.

use crate::work::Work;
use vcgp_graph::{Graph, VertexId, INVALID_VERTEX};

/// Result of a matching baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingResult {
    /// `mate[v]` is `v`'s partner, or `INVALID_VERTEX` if unmatched.
    pub mate: Vec<VertexId>,
    /// Total weight of matched edges.
    pub total_weight: f64,
    /// Number of matched edges.
    pub size: usize,
    /// Operation count.
    pub work: u64,
}

/// Greedy heaviest-edge-first matching (Preis-style 1/2-approximation).
/// Ties are broken by endpoint ids, matching the vertex-centric rule.
pub fn mwm_greedy(g: &Graph) -> MatchingResult {
    assert!(!g.is_directed(), "matching requires an undirected graph");
    let n = g.num_vertices();
    let mut work = Work::new();
    let mut edges: Vec<(VertexId, VertexId, f64)> = g.edges().filter(|&(u, v, _)| u != v).collect();
    edges.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    work.charge(Work::sort_cost(edges.len()));
    let mut mate = vec![INVALID_VERTEX; n];
    let mut total = 0.0;
    let mut size = 0usize;
    for (u, v, w) in edges {
        work.charge(1);
        if mate[u as usize] == INVALID_VERTEX && mate[v as usize] == INVALID_VERTEX {
            mate[u as usize] = v;
            mate[v as usize] = u;
            total += w;
            size += 1;
        }
    }
    MatchingResult {
        mate,
        total_weight: total,
        size,
        work: work.count(),
    }
}

/// Greedy maximal matching for a bipartite graph whose left side is
/// `0..nl`: every left vertex grabs its first free neighbor. `O(m + n)`.
pub fn bipartite_greedy(g: &Graph, nl: usize) -> MatchingResult {
    assert!(!g.is_directed(), "matching requires an undirected graph");
    let n = g.num_vertices();
    assert!(nl <= n);
    let mut work = Work::new();
    let mut mate = vec![INVALID_VERTEX; n];
    let mut size = 0usize;
    for u in 0..nl as VertexId {
        work.charge(1);
        if mate[u as usize] != INVALID_VERTEX {
            continue;
        }
        for &v in g.out_neighbors(u) {
            work.charge(1);
            if mate[v as usize] == INVALID_VERTEX {
                mate[u as usize] = v;
                mate[v as usize] = u;
                size += 1;
                break;
            }
        }
    }
    MatchingResult {
        mate,
        total_weight: size as f64,
        size,
        work: work.count(),
    }
}

/// Validates that `mate` is a matching on `g`, i.e. symmetric and along
/// real edges. Shared with the vertex-centric tests.
pub fn is_valid_matching(g: &Graph, mate: &[VertexId]) -> bool {
    if mate.len() != g.num_vertices() {
        return false;
    }
    for v in g.vertices() {
        let m = mate[v as usize];
        if m == INVALID_VERTEX {
            continue;
        }
        if m == v || mate[m as usize] != v || !g.has_edge(v, m) {
            return false;
        }
    }
    true
}

/// Validates maximality: no edge has both endpoints unmatched.
pub fn is_maximal_matching(g: &Graph, mate: &[VertexId]) -> bool {
    is_valid_matching(g, mate)
        && g.edges().all(|(u, v, _)| {
            u == v || mate[u as usize] != INVALID_VERTEX || mate[v as usize] != INVALID_VERTEX
        })
}

/// Maximum-weight matching by brute force (test oracle; exponential).
#[cfg(test)]
fn mwm_brute(g: &Graph) -> f64 {
    let edges: Vec<(VertexId, VertexId, f64)> = g.edges().filter(|&(u, v, _)| u != v).collect();
    fn recurse(edges: &[(VertexId, VertexId, f64)], used: &mut Vec<bool>) -> f64 {
        if edges.is_empty() {
            return 0.0;
        }
        let (u, v, w) = edges[0];
        let skip = recurse(&edges[1..], used);
        if used[u as usize] || used[v as usize] {
            return skip;
        }
        used[u as usize] = true;
        used[v as usize] = true;
        let take = w + recurse(&edges[1..], used);
        used[u as usize] = false;
        used[v as usize] = false;
        take.max(skip)
    }
    let mut used = vec![false; g.num_vertices()];
    recurse(&edges, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    fn weighted(n: usize, m: usize, seed: u64) -> Graph {
        generators::with_random_weights(&generators::gnm(n, m, seed), 0.0, 1.0, seed, true)
    }

    #[test]
    fn triangle_takes_heaviest() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(1, 2, 3.0);
        b.add_weighted_edge(0, 2, 2.0);
        let r = mwm_greedy(&b.build());
        assert_eq!(r.size, 1);
        assert_eq!(r.total_weight, 3.0);
        assert_eq!(r.mate[1], 2);
    }

    #[test]
    fn greedy_is_half_approximation() {
        for seed in 0..5 {
            let g = weighted(12, 20, seed);
            let r = mwm_greedy(&g);
            let opt = mwm_brute(&g);
            assert!(is_valid_matching(&g, &r.mate), "seed {seed}");
            assert!(
                r.total_weight * 2.0 + 1e-9 >= opt,
                "seed {seed}: {} vs opt {opt}",
                r.total_weight
            );
        }
    }

    #[test]
    fn greedy_matching_is_maximal() {
        for seed in 0..5 {
            let g = weighted(50, 120, seed);
            let r = mwm_greedy(&g);
            assert!(is_maximal_matching(&g, &r.mate), "seed {seed}");
        }
    }

    #[test]
    fn bipartite_greedy_is_maximal() {
        for seed in 0..5 {
            let g = generators::bipartite(30, 30, 120, seed);
            let r = bipartite_greedy(&g, 30);
            assert!(is_maximal_matching(&g, &r.mate), "seed {seed}");
            assert!(r.size >= 1);
        }
    }

    #[test]
    fn bipartite_perfect_on_complete() {
        let g = generators::bipartite(4, 4, 16, 1);
        let r = bipartite_greedy(&g, 4);
        assert_eq!(r.size, 4);
    }

    #[test]
    fn empty_graph_empty_matching() {
        let g = GraphBuilder::new(3).build();
        let r = mwm_greedy(&g);
        assert_eq!(r.size, 0);
        assert!(is_maximal_matching(&g, &r.mate));
    }

    #[test]
    fn validators_reject_bad_matchings() {
        let g = generators::path(4);
        // Asymmetric.
        assert!(!is_valid_matching(&g, &[1, INVALID_VERTEX, INVALID_VERTEX, INVALID_VERTEX]));
        // Non-edge.
        assert!(!is_valid_matching(&g, &[2, INVALID_VERTEX, 0, INVALID_VERTEX]));
        // Valid but not maximal (edge 2-3 free).
        assert!(is_valid_matching(&g, &[1, 0, INVALID_VERTEX, INVALID_VERTEX]));
        assert!(!is_maximal_matching(&g, &[1, 0, INVALID_VERTEX, INVALID_VERTEX]));
    }
}
