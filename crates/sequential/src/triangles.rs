//! §3.8 demonstrator baseline: triangle counting and local clustering
//! coefficients by forward-degree ordering, `O(m^{3/2})` (Latapy/Schank-
//! Wagner style). The paper lists neighborhood-centric analytics among the
//! workloads that are *fundamentally awkward* for the vertex-centric
//! model; this baseline quantifies the gap.

use crate::work::Work;
use vcgp_graph::{Graph, VertexId};

/// Result of the triangle baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TriangleResult {
    /// Triangles incident to each vertex.
    pub per_vertex: Vec<u64>,
    /// Total triangle count (each counted once).
    pub total: u64,
    /// Local clustering coefficient per vertex
    /// (`2·tri(v) / (d(v)(d(v)-1))`, 0 for degree < 2).
    pub clustering: Vec<f64>,
    /// Operation count.
    pub work: u64,
}

/// Forward-edge triangle counting: orient each edge toward the higher
/// `(degree, id)` endpoint and intersect forward adjacencies.
pub fn triangles(g: &Graph) -> TriangleResult {
    assert!(!g.is_directed(), "triangle counting runs on undirected graphs");
    let n = g.num_vertices();
    let mut work = Work::new();
    let rank = |v: VertexId| (g.out_degree(v), v);
    // Forward adjacency: neighbors with higher rank. The lists must be
    // sorted by *rank* (not id): the pair-enumeration below relies on
    // `fv[i+1..]` holding exactly the forward neighbors above `fv[i]` in
    // the orientation order, and the intersections merge in that order.
    let mut forward: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for v in g.vertices() {
        for &u in g.out_neighbors(v) {
            work.charge(1);
            if u != v && rank(u) > rank(v) {
                forward[v as usize].push(u);
            }
        }
        forward[v as usize].sort_by_key(|&u| rank(u));
        work.charge(Work::sort_cost(forward[v as usize].len()));
    }
    let mut per_vertex = vec![0u64; n];
    let mut total = 0u64;
    for v in g.vertices() {
        let fv = &forward[v as usize];
        for (i, &u) in fv.iter().enumerate() {
            // Merge-intersect forward[v][i+1..] with forward[u], both in
            // rank order.
            let (mut a, mut b) = (i + 1, 0usize);
            let fu = &forward[u as usize];
            while a < fv.len() && b < fu.len() {
                work.charge(1);
                match rank(fv[a]).cmp(&rank(fu[b])) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let w = fv[a];
                        per_vertex[v as usize] += 1;
                        per_vertex[u as usize] += 1;
                        per_vertex[w as usize] += 1;
                        total += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    let clustering = per_vertex
        .iter()
        .enumerate()
        .map(|(v, &t)| {
            let d = g.out_degree(v as VertexId) as f64;
            if d < 2.0 {
                0.0
            } else {
                2.0 * t as f64 / (d * (d - 1.0))
            }
        })
        .collect();
    TriangleResult {
        per_vertex,
        total,
        clustering,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn single_triangle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let r = triangles(&b.build());
        assert_eq!(r.total, 1);
        assert_eq!(r.per_vertex, vec![1, 1, 1]);
        assert_eq!(r.clustering, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn complete_graph_count() {
        // K_6 has C(6,3) = 20 triangles, each vertex in C(5,2) = 10.
        let r = triangles(&generators::complete(6));
        assert_eq!(r.total, 20);
        assert!(r.per_vertex.iter().all(|&t| t == 10));
        assert!(r.clustering.iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn trees_have_none() {
        let r = triangles(&generators::random_tree(50, 3));
        assert_eq!(r.total, 0);
        assert!(r.clustering.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn square_with_diagonal() {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.add_edge(u, v);
        }
        let r = triangles(&b.build());
        assert_eq!(r.total, 2);
        assert_eq!(r.per_vertex, vec![2, 1, 2, 1]);
    }

    #[test]
    fn brute_force_agreement() {
        for seed in 0..4 {
            let g = generators::gnm(30, 120, seed);
            let r = triangles(&g);
            // O(n^3) oracle.
            let mut expected = 0u64;
            for a in 0..30u32 {
                for b in (a + 1)..30 {
                    for c in (b + 1)..30 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            expected += 1;
                        }
                    }
                }
            }
            assert_eq!(r.total, expected, "seed {seed}");
        }
    }
}
