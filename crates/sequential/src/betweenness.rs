//! Row 15: betweenness centrality on unweighted graphs by Brandes'
//! algorithm \[1\], `O(mn)`.
//!
//! Convention: raw dependency accumulation over all ordered source vertices
//! — each unordered pair contributes from both of its endpoints on
//! undirected graphs, and endpoints are excluded. The vertex-centric
//! implementation uses the same convention, so scores compare exactly.

use crate::work::Work;
use std::collections::VecDeque;
use vcgp_graph::{Graph, VertexId};

/// Result of the betweenness baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BetweennessResult {
    /// Centrality score per vertex.
    pub scores: Vec<f64>,
    /// Operation count.
    pub work: u64,
}

/// Brandes' algorithm from every source (or a subset, for sampled
/// benchmarking — pass `None` for all sources).
pub fn betweenness(g: &Graph, sources: Option<&[VertexId]>) -> BetweennessResult {
    let n = g.num_vertices();
    let mut work = Work::new();
    let mut scores = vec![0.0f64; n];
    let all: Vec<VertexId>;
    let sources = match sources {
        Some(s) => s,
        None => {
            all = (0..n as VertexId).collect();
            &all
        }
    };
    let mut dist = vec![i64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for &s in sources {
        dist.iter_mut().for_each(|d| *d = i64::MAX);
        sigma.iter_mut().for_each(|x| *x = 0.0);
        delta.iter_mut().for_each(|x| *x = 0.0);
        order.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            work.charge(1);
            order.push(u);
            let du = dist[u as usize];
            for &v in g.out_neighbors(u) {
                work.charge(1);
                if dist[v as usize] == i64::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == du + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        // Back-propagate dependencies in reverse BFS order.
        for &u in order.iter().rev() {
            work.charge(1);
            let du = dist[u as usize];
            for &v in g.out_neighbors(u) {
                work.charge(1);
                if dist[v as usize] == du + 1 {
                    delta[u as usize] +=
                        sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if u != s {
                scores[u as usize] += delta[u as usize];
            }
        }
    }
    BetweennessResult {
        scores,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn path_center_dominates() {
        // Path 0-1-2-3-4: vertex 2 lies on the most shortest paths.
        let r = betweenness(&generators::path(5), None);
        // Raw convention counts ordered pairs: v2 covers (0,3),(0,4),(1,3),
        // (1,4),(3,0)... = 2 * |{(0,3),(0,4),(1,3),(1,4)}| = 8.
        assert_eq!(r.scores[2], 8.0);
        assert_eq!(r.scores[0], 0.0);
        assert_eq!(r.scores[1], 6.0);
        assert_eq!(r.scores, vec![0.0, 6.0, 8.0, 6.0, 0.0]);
    }

    #[test]
    fn star_center_covers_all_pairs() {
        let r = betweenness(&generators::star(6), None);
        // 5 leaves: ordered leaf pairs = 5*4 = 20, all through the center.
        assert_eq!(r.scores[0], 20.0);
        assert!(r.scores[1..].iter().all(|&s| s == 0.0));
    }

    #[test]
    fn cycle_symmetric() {
        let r = betweenness(&generators::cycle(8), None);
        let first = r.scores[0];
        assert!(first > 0.0);
        assert!(r.scores.iter().all(|&s| (s - first).abs() < 1e-9));
    }

    #[test]
    fn complete_graph_zero() {
        let r = betweenness(&generators::complete(6), None);
        assert!(r.scores.iter().all(|&s| s.abs() < 1e-12));
    }

    #[test]
    fn split_shortest_paths() {
        // Two disjoint paths 0-1-3 and 0-2-3: each middle vertex carries
        // half of the (0,3) and (3,0) dependencies.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 3);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        let r = betweenness(&b.build(), None);
        assert!((r.scores[1] - 1.0).abs() < 1e-12);
        assert!((r.scores[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_sources_subset() {
        let g = generators::gnm_connected(40, 90, 3);
        let full = betweenness(&g, None);
        let partial = betweenness(&g, Some(&[0, 1, 2]));
        assert!(partial.work < full.work);
        let sum_partial: f64 = partial.scores.iter().sum();
        let sum_full: f64 = full.scores.iter().sum();
        assert!(sum_partial <= sum_full + 1e-9);
    }

    #[test]
    fn work_scales_with_mn() {
        let w1 = betweenness(&generators::gnm_connected(100, 300, 1), None).work;
        let w2 = betweenness(&generators::gnm_connected(200, 600, 1), None).work;
        let ratio = w2 as f64 / w1 as f64;
        assert!((3.0..5.5).contains(&ratio), "ratio {ratio}");
    }
}
