//! Row 11: minimum cost spanning tree.
//!
//! Substitution (DESIGN.md): the paper's "best known" baseline is
//! Chazelle's `O(m α(m, n))` algorithm, which has never been implemented in
//! practice. We provide Kruskal with union-by-rank + path compression
//! (`O(m log m)` dominated by sorting, `O(m α)` for the union-find part) and
//! Prim with a binary heap (`O((m + n) log n)`); both preserve the paper's
//! comparison shape against the vertex-centric Borůvka (`O(δ m log n)`).

use crate::work::{CountingHeap, Dsu, Work};
use vcgp_graph::{Graph, VertexId};

/// Result of an MST baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MstResult {
    /// Total weight of the tree (forest, if disconnected).
    pub total_weight: f64,
    /// Tree edges as `(u, v, w)` with `u < v`, sorted.
    pub edges: Vec<(VertexId, VertexId, f64)>,
    /// Operation count.
    pub work: u64,
}

fn canonical_edges(mut edges: Vec<(VertexId, VertexId, f64)>) -> Vec<(VertexId, VertexId, f64)> {
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            std::mem::swap(&mut e.0, &mut e.1);
        }
    }
    edges.sort_by_key(|a| (a.0, a.1));
    edges
}

/// Kruskal's algorithm. Ties are broken by endpoint ids, matching the
/// vertex-centric Borůvka's tie-breaking so that MSTs are comparable even
/// with duplicate weights.
pub fn mst_kruskal(g: &Graph) -> MstResult {
    assert!(!g.is_directed(), "mst requires an undirected graph");
    let mut work = Work::new();
    let mut edges: Vec<(VertexId, VertexId, f64)> = g.edges().collect();
    edges.sort_by(|a, b| a.2.total_cmp(&b.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    work.charge(Work::sort_cost(edges.len()));
    let mut dsu = Dsu::new(g.num_vertices());
    let mut picked = Vec::new();
    let mut total = 0.0;
    for (u, v, w) in edges {
        work.charge(1);
        if dsu.union(u, v, &mut work) {
            total += w;
            picked.push((u, v, w));
            if picked.len() + 1 == g.num_vertices() {
                break;
            }
        }
    }
    MstResult {
        total_weight: total,
        edges: canonical_edges(picked),
        work: work.count(),
    }
}

/// Kruskal with the sort *uncharged*: the Chazelle stand-in for row 11's
/// "best known sequential" column. Chazelle's algorithm runs in
/// `O(m α(m, n))` without a comparison sort; since we cannot reasonably
/// implement it, we measure only the linear scan and the union-find work —
/// which is `Θ(m α(m, n))` — and document the substitution in DESIGN.md.
/// The returned MST is identical to [`mst_kruskal`]'s.
pub fn mst_kruskal_presorted(g: &Graph) -> MstResult {
    assert!(!g.is_directed(), "mst requires an undirected graph");
    let mut work = Work::new();
    let mut edges: Vec<(VertexId, VertexId, f64)> = g.edges().collect();
    edges.sort_by(|a, b| a.2.total_cmp(&b.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    let mut dsu = Dsu::new(g.num_vertices());
    let mut picked = Vec::new();
    let mut total = 0.0;
    for (u, v, w) in edges {
        work.charge(1);
        if dsu.union(u, v, &mut work) {
            total += w;
            picked.push((u, v, w));
            if picked.len() + 1 == g.num_vertices() {
                break;
            }
        }
    }
    MstResult {
        total_weight: total,
        edges: canonical_edges(picked),
        work: work.count(),
    }
}

/// Prim's algorithm with a binary heap (lazy deletion), run from every
/// component root, so it also yields a minimum spanning forest.
pub fn mst_prim(g: &Graph) -> MstResult {
    assert!(!g.is_directed(), "mst requires an undirected graph");
    let n = g.num_vertices();
    let mut work = Work::new();
    let mut in_tree = vec![false; n];
    let mut picked = Vec::new();
    let mut total = 0.0;
    let mut heap: CountingHeap<(VertexId, VertexId)> = CountingHeap::new();
    for root in 0..n as VertexId {
        work.charge(1);
        if in_tree[root as usize] {
            continue;
        }
        in_tree[root as usize] = true;
        for (v, w) in g.out_edges(root) {
            heap.push(w, (root, v), &mut work);
        }
        while let Some((w, (from, to))) = heap.pop(&mut work) {
            if in_tree[to as usize] {
                continue;
            }
            in_tree[to as usize] = true;
            total += w;
            picked.push((from, to, w));
            for (v, vw) in g.out_edges(to) {
                work.charge(1);
                if !in_tree[v as usize] {
                    heap.push(vw, (to, v), &mut work);
                }
            }
        }
    }
    MstResult {
        total_weight: total,
        edges: canonical_edges(picked),
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    fn weighted(n: usize, m: usize, seed: u64) -> Graph {
        generators::with_random_weights(&generators::gnm_connected(n, m, seed), 0.0, 1.0, seed, true)
    }

    #[test]
    fn hand_checked_example() {
        // Classic 4-vertex example with unique MST of weight 6.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(1, 2, 2.0);
        b.add_weighted_edge(2, 3, 3.0);
        b.add_weighted_edge(3, 0, 4.0);
        b.add_weighted_edge(0, 2, 5.0);
        let g = b.build();
        let r = mst_kruskal(&g);
        assert_eq!(r.total_weight, 6.0);
        assert_eq!(
            r.edges,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]
        );
    }

    #[test]
    fn kruskal_equals_prim_on_distinct_weights() {
        for seed in 0..6 {
            let g = weighted(80, 200, seed);
            let k = mst_kruskal(&g);
            let p = mst_prim(&g);
            assert!(
                (k.total_weight - p.total_weight).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                k.total_weight,
                p.total_weight
            );
            assert_eq!(k.edges, p.edges, "unique MST must match edge-for-edge");
        }
    }

    #[test]
    fn tree_input_is_its_own_mst() {
        let t = generators::with_random_weights(&generators::random_tree(40, 2), 1.0, 9.0, 2, true);
        let r = mst_kruskal(&t);
        assert_eq!(r.edges.len(), 39);
        let expected: f64 = t.edges().map(|(_, _, w)| w).sum();
        assert!((r.total_weight - expected).abs() < 1e-9);
    }

    #[test]
    fn spanning_forest_on_disconnected() {
        let mut b = GraphBuilder::new(5);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(1, 2, 2.0);
        b.add_weighted_edge(0, 2, 3.0);
        b.add_weighted_edge(3, 4, 4.0);
        let g = b.build();
        let k = mst_kruskal(&g);
        assert_eq!(k.edges.len(), 3);
        assert_eq!(k.total_weight, 7.0);
        let p = mst_prim(&g);
        assert_eq!(p.total_weight, 7.0);
    }

    #[test]
    fn mst_edges_form_spanning_tree() {
        let g = weighted(60, 140, 9);
        let r = mst_kruskal(&g);
        assert_eq!(r.edges.len(), 59);
        let mut b = GraphBuilder::new(60);
        for &(u, v, _) in &r.edges {
            assert!(g.has_edge(u, v), "MST edge must exist in input");
            b.add_edge(u, v);
        }
        assert!(vcgp_graph::traversal::is_tree(&b.build()));
    }

    #[test]
    fn kruskal_work_includes_sort_term() {
        let g = weighted(500, 2000, 1);
        let r = mst_kruskal(&g);
        assert!(r.work >= Work::sort_cost(2000));
    }

    #[test]
    fn presorted_variant_same_tree_less_work() {
        let g = weighted(300, 1200, 4);
        let full = mst_kruskal(&g);
        let pre = mst_kruskal_presorted(&g);
        assert_eq!(full.edges, pre.edges);
        assert!((full.total_weight - pre.total_weight).abs() < 1e-9);
        assert!(pre.work + Work::sort_cost(1200) <= full.work + 8);
        // The uncharged variant is near-linear: work within a small
        // constant of m (the α(m, n) regime).
        assert!(pre.work < 8 * 1200);
    }
}
