//! Rows 8 and 9: Euler tour and pre/post-order traversal of a tree, both
//! `O(n)` sequentially.
//!
//! The Euler tour follows the paper's §3.4.1 definition exactly: the
//! successor of directed arc `(u, v)` is `(v, next_v(u))`, where `next_v`
//! cycles through `v`'s *sorted* adjacency list. Pre/post-order numbers are
//! the ones induced by that tour (equivalently: DFS where the children of
//! `v` are visited in cyclic sorted order starting after `v`'s parent) — the
//! same convention the vertex-centric list-ranking pipeline computes, so the
//! two implementations are comparable element-for-element.

use crate::work::Work;
use std::collections::HashMap;
use vcgp_graph::{Graph, VertexId};

/// Result of the Euler-tour baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EulerTourResult {
    /// The tour as a sequence of `2(n-1)` directed arcs, starting at
    /// `(root, first(root))`.
    pub tour: Vec<(VertexId, VertexId)>,
    /// Operation count.
    pub work: u64,
}

/// Index of `u` within `v`'s sorted adjacency list.
fn position_maps(g: &Graph, work: &mut Work) -> HashMap<(VertexId, VertexId), usize> {
    let mut pos = HashMap::with_capacity(g.num_arcs());
    for v in g.vertices() {
        for (i, &u) in g.out_neighbors(v).iter().enumerate() {
            work.charge(1);
            pos.insert((v, u), i);
        }
    }
    pos
}

/// Euler tour of a tree from `root`. Row 8 baseline.
///
/// # Panics
/// Panics if `g` is not a tree or `root` is isolated (`n >= 2` required).
pub fn euler_tour(g: &Graph, root: VertexId) -> EulerTourResult {
    assert!(
        vcgp_graph::traversal::is_tree(g),
        "euler_tour requires a tree"
    );
    let n = g.num_vertices();
    assert!(n >= 2, "euler tour needs at least one edge");
    let mut work = Work::new();
    let pos = position_maps(g, &mut work);
    let first = g.out_neighbors(root)[0];
    let mut tour = Vec::with_capacity(2 * (n - 1));
    let (mut u, mut v) = (root, first);
    for _ in 0..2 * (n - 1) {
        work.charge(1);
        tour.push((u, v));
        // successor of (u, v) = (v, next_v(u))
        let adj = g.out_neighbors(v);
        let i = pos[&(v, u)];
        let next = adj[(i + 1) % adj.len()];
        u = v;
        v = next;
    }
    debug_assert_eq!((u, v), (root, first), "tour must close its circuit");
    EulerTourResult {
        tour,
        work: work.count(),
    }
}

/// Result of the traversal baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeOrderResult {
    /// Pre-order number of each vertex (root gets 0).
    pub pre: Vec<u32>,
    /// Post-order number of each vertex.
    pub post: Vec<u32>,
    /// Operation count.
    pub work: u64,
}

/// Pre- and post-order numbers induced by the Euler tour from `root`.
/// Row 9 baseline (`O(n)` DFS).
pub fn tree_order(g: &Graph, root: VertexId) -> TreeOrderResult {
    assert!(
        vcgp_graph::traversal::is_tree(g),
        "tree_order requires a tree"
    );
    let n = g.num_vertices();
    let mut work = Work::new();
    let mut pre = vec![u32::MAX; n];
    let mut post = vec![u32::MAX; n];
    if n == 1 {
        pre[root as usize] = 0;
        post[root as usize] = 0;
        return TreeOrderResult {
            pre,
            post,
            work: 1,
        };
    }
    let pos = position_maps(g, &mut work);
    let mut pre_t = 0u32;
    let mut post_t = 0u32;
    // Iterative DFS. Children of v are visited in cyclic sorted order
    // starting after the parent (sorted order at the root), matching the
    // Euler tour.
    struct Frame {
        v: VertexId,
        parent: Option<VertexId>,
        emitted: usize,
    }
    let mut stack = vec![Frame {
        v: root,
        parent: None,
        emitted: 0,
    }];
    pre[root as usize] = pre_t;
    pre_t += 1;
    while let Some(frame) = stack.last_mut() {
        let v = frame.v;
        let adj = g.out_neighbors(v);
        let child_count = adj.len() - usize::from(frame.parent.is_some());
        if frame.emitted < child_count {
            let start = match frame.parent {
                Some(p) => pos[&(v, p)] + 1,
                None => 0,
            };
            let child = adj[(start + frame.emitted) % adj.len()];
            frame.emitted += 1;
            work.charge(1);
            pre[child as usize] = pre_t;
            pre_t += 1;
            stack.push(Frame {
                v: child,
                parent: Some(v),
                emitted: 0,
            });
        } else {
            post[v as usize] = post_t;
            post_t += 1;
            work.charge(1);
            stack.pop();
        }
    }
    TreeOrderResult {
        pre,
        post,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    /// The tree of the paper's Figure 4(a): root 0 with children 1, 5, 6;
    /// 1 has children 2, 3, 4.
    fn figure4_tree() -> Graph {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1);
        b.add_edge(0, 5);
        b.add_edge(0, 6);
        b.add_edge(1, 2);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.build()
    }

    #[test]
    fn tour_visits_every_arc_once() {
        let g = figure4_tree();
        let r = euler_tour(&g, 0);
        assert_eq!(r.tour.len(), 12);
        let mut arcs = r.tour.clone();
        arcs.sort_unstable();
        arcs.dedup();
        assert_eq!(arcs.len(), 12, "an arc repeated");
    }

    #[test]
    fn tour_is_a_circuit() {
        let g = figure4_tree();
        let r = euler_tour(&g, 0);
        for w in r.tour.windows(2) {
            assert_eq!(w[0].1, w[1].0, "tour must chain head-to-tail");
        }
        assert_eq!(r.tour[0].0, 0);
        assert_eq!(r.tour.last().unwrap().1, 0);
    }

    #[test]
    fn figure4_tour_matches_paper_example() {
        // first(0) = 1; next_0(1) = 5, next_0(6) = 1 (paper's example).
        let g = figure4_tree();
        let r = euler_tour(&g, 0);
        assert_eq!(
            r.tour,
            vec![
                (0, 1),
                (1, 2),
                (2, 1),
                (1, 3),
                (3, 1),
                (1, 4),
                (4, 1),
                (1, 0),
                (0, 5),
                (5, 0),
                (0, 6),
                (6, 0),
            ]
        );
    }

    #[test]
    fn tree_order_figure4() {
        let g = figure4_tree();
        let r = tree_order(&g, 0);
        assert_eq!(r.pre, vec![0, 1, 2, 3, 4, 5, 6]);
        // Post-order: 2, 3, 4 close first, then 1, then 5, 6, then 0.
        assert_eq!(r.post, vec![6, 3, 0, 1, 2, 4, 5]);
    }

    #[test]
    fn orders_are_permutations_on_random_trees() {
        for seed in 0..5 {
            let t = generators::random_tree(50, seed);
            let r = tree_order(&t, 0);
            let mut pre = r.pre.clone();
            pre.sort_unstable();
            assert_eq!(pre, (0..50).collect::<Vec<u32>>());
            let mut post = r.post.clone();
            post.sort_unstable();
            assert_eq!(post, (0..50).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn pre_of_parent_below_child() {
        let t = generators::random_tree(80, 9);
        let r = tree_order(&t, 0);
        let parents = vcgp_graph::traversal::bfs_parents(&t, 0);
        for v in 1..80u32 {
            let p = parents[v as usize];
            assert!(
                r.pre[p as usize] < r.pre[v as usize],
                "pre-order must increase along tree paths"
            );
            assert!(
                r.post[p as usize] > r.post[v as usize],
                "post-order of parent is after its subtree"
            );
        }
    }

    #[test]
    fn tour_agrees_with_tree_order_forward_edges() {
        // The k-th distinct vertex first entered by the tour has pre-order k+1.
        let t = generators::random_tree(40, 3);
        let tour = euler_tour(&t, 0).tour;
        let order = tree_order(&t, 0);
        let mut seen = [false; 40];
        seen[0] = true;
        let mut next_pre = 1u32;
        for (_, v) in tour {
            if !seen[v as usize] {
                seen[v as usize] = true;
                assert_eq!(order.pre[v as usize], next_pre);
                next_pre += 1;
            }
        }
    }

    #[test]
    fn single_edge_tree() {
        let r = euler_tour(&generators::path(2), 0);
        assert_eq!(r.tour, vec![(0, 1), (1, 0)]);
        let o = tree_order(&generators::path(2), 0);
        assert_eq!(o.pre, vec![0, 1]);
        assert_eq!(o.post, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "requires a tree")]
    fn non_tree_rejected() {
        euler_tour(&generators::cycle(4), 0);
    }

    #[test]
    fn work_is_linear() {
        let w1 = euler_tour(&generators::random_tree(1000, 1), 0).work;
        let w2 = euler_tour(&generators::random_tree(4000, 1), 0).work;
        let ratio = w2 as f64 / w1 as f64;
        assert!((3.2..4.8).contains(&ratio), "ratio {ratio}");
    }
}
