//! §3.8 demonstrator baseline: ad-hoc s-t reachability by bidirectional
//! BFS with early termination. The paper's first "difficult" category is
//! online ad-hoc queries, where "the vertex-centric model usually operates
//! on the entire graph" while a sequential engine touches only the
//! frontier it needs.

use crate::work::Work;
use std::collections::VecDeque;
use vcgp_graph::{Graph, VertexId};

/// Result of the reachability baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityResult {
    /// Whether `t` is reachable from `s`.
    pub reachable: bool,
    /// Hop distance when reachable.
    pub distance: Option<u32>,
    /// Vertices touched (the locality the vertex-centric model gives up).
    pub visited: usize,
    /// Operation count.
    pub work: u64,
}

/// Bidirectional BFS on an undirected graph, stopping at the first meeting
/// point.
pub fn st_reachability(g: &Graph, s: VertexId, t: VertexId) -> ReachabilityResult {
    assert!(!g.is_directed(), "bidirectional BFS shown for undirected graphs");
    let n = g.num_vertices();
    let mut work = Work::new();
    if s == t {
        return ReachabilityResult {
            reachable: true,
            distance: Some(0),
            visited: 1,
            work: 1,
        };
    }
    // dist_s / dist_t in one array: side 0 from s, side 1 from t.
    let mut dist = vec![[u32::MAX; 2]; n];
    let mut queues = [VecDeque::from([s]), VecDeque::from([t])];
    dist[s as usize][0] = 0;
    dist[t as usize][1] = 0;
    let mut visited = 2usize;
    loop {
        // Expand the smaller frontier one full level.
        let side = usize::from(queues[1].len() < queues[0].len());
        if queues[side].is_empty() {
            return ReachabilityResult {
                reachable: false,
                distance: None,
                visited,
                work: work.count(),
            };
        }
        let level = dist[queues[side][0] as usize][side];
        while queues[side]
            .front()
            .is_some_and(|&v| dist[v as usize][side] == level)
        {
            let u = queues[side].pop_front().expect("checked front");
            work.charge(1);
            for &v in g.out_neighbors(u) {
                work.charge(1);
                if dist[v as usize][1 - side] != u32::MAX {
                    // Frontiers met.
                    return ReachabilityResult {
                        reachable: true,
                        distance: Some(
                            dist[u as usize][side] + 1 + dist[v as usize][1 - side],
                        ),
                        visited,
                        work: work.count(),
                    };
                }
                if dist[v as usize][side] == u32::MAX {
                    dist[v as usize][side] = level + 1;
                    visited += 1;
                    queues[side].push_back(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn path_endpoints() {
        let g = generators::path(50);
        let r = st_reachability(&g, 0, 49);
        assert!(r.reachable);
        assert_eq!(r.distance, Some(49));
    }

    #[test]
    fn same_vertex() {
        let g = generators::path(5);
        let r = st_reachability(&g, 3, 3);
        assert!(r.reachable);
        assert_eq!(r.distance, Some(0));
        assert_eq!(r.visited, 1);
    }

    #[test]
    fn disconnected_pair() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(3, 4);
        let r = st_reachability(&b.build(), 0, 4);
        assert!(!r.reachable);
        assert_eq!(r.distance, None);
    }

    #[test]
    fn distances_match_bfs() {
        for seed in 0..5 {
            let g = generators::gnm_connected(80, 180, seed);
            let levels = vcgp_graph::traversal::bfs_levels(&g, 7);
            for t in [0u32, 19, 55, 79] {
                let r = st_reachability(&g, 7, t);
                assert!(r.reachable);
                assert_eq!(r.distance, Some(levels[t as usize]), "seed {seed}, t {t}");
            }
        }
    }

    #[test]
    fn locality_beats_full_traversal_on_near_queries() {
        // Adjacent endpoints on a long path: bidirectional BFS touches a
        // handful of vertices where a full BFS would touch all n.
        let g = generators::path(10_000);
        let r = st_reachability(&g, 5_000, 5_001);
        assert!(r.reachable);
        assert!(r.visited < 10, "visited {} vertices", r.visited);
    }
}
