//! Row 5: biconnected components by Hopcroft-Tarjan DFS \[8\], `O(m + n)`,
//! implemented iteratively with an explicit edge stack.
//!
//! The result is a partition of the *edges*: two edges share a block id iff
//! they lie on a common simple cycle (bridges form singleton blocks).

use crate::work::Work;
use std::collections::HashMap;
use vcgp_graph::{Graph, VertexId};

/// Result of the BCC baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BccResult {
    /// Block id per logical edge, indexed in `g.edges()` order.
    pub block_of_edge: Vec<u32>,
    /// Number of biconnected components.
    pub count: usize,
    /// Articulation vertices.
    pub articulation: Vec<VertexId>,
    /// Operation count.
    pub work: u64,
}

/// Assigns logical edge ids (in `g.edges()` order) to every CSR arc.
///
/// # Panics
/// Panics on self-loops or parallel edges (the BCC workloads run on simple
/// graphs).
pub(crate) fn arc_edge_ids(g: &Graph) -> (Vec<u32>, usize) {
    let mut id_of: HashMap<(VertexId, VertexId), u32> = HashMap::new();
    for (eid, (u, v, _)) in g.edges().enumerate() {
        assert!(u != v, "self-loops are not supported");
        let prev = id_of.insert((u, v), eid as u32);
        assert!(prev.is_none(), "parallel edges are not supported");
    }
    let mut arc_ids = Vec::with_capacity(g.num_arcs());
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            let key = if u <= v { (u, v) } else { (v, u) };
            arc_ids.push(id_of[&key]);
        }
    }
    (arc_ids, id_of.len())
}

/// Hopcroft-Tarjan biconnected components (iterative).
pub fn bcc(g: &Graph) -> BccResult {
    assert!(!g.is_directed(), "bcc requires an undirected graph");
    let n = g.num_vertices();
    let (arc_ids, m) = arc_edge_ids(g);
    // Per-vertex CSR offsets to index arc_ids alongside neighbors.
    let mut arc_offset = vec![0usize; n + 1];
    for v in 0..n {
        arc_offset[v + 1] = arc_offset[v] + g.out_degree(v as VertexId);
    }

    const UNSET: u32 = u32::MAX;
    const NO_EDGE: u32 = u32::MAX;
    let mut disc = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut block_of_edge = vec![UNSET; m];
    let mut articulation_flag = vec![false; n];
    let mut timer = 0u32;
    let mut blocks = 0u32;
    let mut work = Work::new();
    let mut edge_stack: Vec<u32> = Vec::new();
    // (vertex, parent edge id, next neighbor offset, child block count).
    let mut frames: Vec<(VertexId, u32, usize, u32)> = Vec::new();

    for s in 0..n as VertexId {
        work.charge(1);
        if disc[s as usize] != UNSET {
            continue;
        }
        disc[s as usize] = timer;
        low[s as usize] = timer;
        timer += 1;
        frames.push((s, NO_EDGE, 0, 0));
        while let Some(&mut (v, pe, ref mut ei, ref mut child_blocks)) = frames.last_mut() {
            let neighbors = g.out_neighbors(v);
            if *ei < neighbors.len() {
                let u = neighbors[*ei];
                let eid = arc_ids[arc_offset[v as usize] + *ei];
                *ei += 1;
                work.charge(1);
                if eid == pe {
                    continue; // the tree edge back to the parent
                }
                if disc[u as usize] == UNSET {
                    edge_stack.push(eid);
                    disc[u as usize] = timer;
                    low[u as usize] = timer;
                    timer += 1;
                    frames.push((u, eid, 0, 0));
                } else if disc[u as usize] < disc[v as usize] {
                    // Back edge to an ancestor.
                    edge_stack.push(eid);
                    low[v as usize] = low[v as usize].min(disc[u as usize]);
                }
                // disc[u] > disc[v]: forward view of an edge already handled
                // from the descendant's side — skip.
            } else {
                let completed_children = *child_blocks;
                frames.pop();
                work.charge(1);
                let parent_depth = frames.len();
                if let Some(&mut (p, _, _, ref mut p_children)) = frames.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] >= disc[p as usize] {
                        // p separates v's subtree: close one block.
                        *p_children += 1;
                        let block = blocks;
                        blocks += 1;
                        loop {
                            let e = edge_stack.pop().expect("edge stack underflow");
                            block_of_edge[e as usize] = block;
                            work.charge(1);
                            if e == pe {
                                break;
                            }
                        }
                        // A non-root parent with any separated child is an
                        // articulation point; the root needs >= 2 blocks.
                        let p_is_root = parent_depth == 1;
                        if !p_is_root || *p_children >= 2 {
                            articulation_flag[p as usize] = true;
                        }
                    }
                } else {
                    // v was a DFS root; its edge stack must already be empty
                    // because each child closed its block on the way up.
                    debug_assert!(edge_stack.is_empty());
                    let _ = completed_children;
                }
            }
        }
    }
    debug_assert!(block_of_edge.iter().all(|&b| b != UNSET));
    let articulation = (0..n as VertexId)
        .filter(|&v| articulation_flag[v as usize])
        .collect();
    BccResult {
        block_of_edge,
        count: blocks as usize,
        articulation,
        work: work.count(),
    }
}

/// Canonicalizes an edge partition for comparisons: blocks as sorted edge
/// lists, sorted among themselves.
pub fn canonical_blocks(block_of_edge: &[u32]) -> Vec<Vec<u32>> {
    let mut by_block: HashMap<u32, Vec<u32>> = HashMap::new();
    for (e, &b) in block_of_edge.iter().enumerate() {
        by_block.entry(b).or_default().push(e as u32);
    }
    let mut blocks: Vec<Vec<u32>> = by_block.into_values().collect();
    for b in blocks.iter_mut() {
        b.sort_unstable();
    }
    blocks.sort();
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn cycle_is_one_block() {
        let r = bcc(&generators::cycle(6));
        assert_eq!(r.count, 1);
        assert!(r.articulation.is_empty());
    }

    #[test]
    fn path_is_all_bridges() {
        let r = bcc(&generators::path(5));
        assert_eq!(r.count, 4);
        assert_eq!(r.articulation, vec![1, 2, 3]);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // Triangles 0-1-2 and 2-3-4 share vertex 2.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(2, 4);
        let g = b.build();
        let r = bcc(&g);
        assert_eq!(r.count, 2);
        assert_eq!(r.articulation, vec![2]);
        // Edges of each triangle share a block.
        let blocks = canonical_blocks(&r.block_of_edge);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn bridge_between_cycles() {
        // 0-1-2-0, edge 2-3, 3-4-5-3.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        b.add_edge(5, 3);
        let r = bcc(&b.build());
        assert_eq!(r.count, 3);
        let mut arts = r.articulation.clone();
        arts.sort_unstable();
        assert_eq!(arts, vec![2, 3]);
    }

    #[test]
    fn star_center_is_articulation() {
        let r = bcc(&generators::star(6));
        assert_eq!(r.count, 5);
        assert_eq!(r.articulation, vec![0]);
    }

    #[test]
    fn disconnected_components_handled() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(4, 5);
        let r = bcc(&b.build());
        assert_eq!(r.count, 2);
    }

    #[test]
    fn complete_graph_single_block() {
        let r = bcc(&generators::complete(7));
        assert_eq!(r.count, 1);
        assert!(r.articulation.is_empty());
    }

    #[test]
    fn deep_path_does_not_overflow() {
        let r = bcc(&generators::path(150_000));
        assert_eq!(r.count, 149_999);
    }

    #[test]
    fn blocks_cover_all_edges_exactly_once() {
        let g = generators::gnm_connected(60, 110, 3);
        let r = bcc(&g);
        let blocks = canonical_blocks(&r.block_of_edge);
        let total: usize = blocks.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(blocks.len(), r.count);
    }

    #[test]
    fn work_linear() {
        let w1 = bcc(&generators::gnm_connected(1000, 3000, 2)).work;
        let w2 = bcc(&generators::gnm_connected(2000, 6000, 2)).work;
        let ratio = w2 as f64 / w1 as f64;
        assert!((1.6..2.5).contains(&ratio), "ratio {ratio}");
    }
}
