//! Row 2: PageRank by power iteration, `O(mK)`.
//!
//! The update rule mirrors the Pregel paper's formulation exactly
//! (including the treatment of sinks, whose mass is *not* redistributed, as
//! in the original Pregel pseudo-code): starting from `1/n` everywhere,
//! `pr'(v) = (1 - α)/n + α · Σ_{u -> v} pr(u)/outdeg(u)`.

use crate::work::Work;
use vcgp_graph::Graph;

/// Result of the PageRank baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Final scores per vertex.
    pub scores: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: u32,
    /// Operation count.
    pub work: u64,
}

/// Power iteration for `max_iters` rounds or until the L1 delta drops below
/// `tolerance` (pass `0.0` to always run `max_iters` rounds, matching the
/// fixed-superstep vertex-centric version).
pub fn pagerank(g: &Graph, alpha: f64, max_iters: u32, tolerance: f64) -> PageRankResult {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let n = g.num_vertices();
    let mut work = Work::new();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            work: 0,
        };
    }
    let base = (1.0 - alpha) / n as f64;
    let mut scores = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        next.iter_mut().for_each(|x| *x = base);
        work.charge(n as u64);
        for u in g.vertices() {
            let deg = g.out_degree(u);
            if deg == 0 {
                continue;
            }
            let share = alpha * scores[u as usize] / deg as f64;
            for &v in g.out_neighbors(u) {
                work.charge(1);
                next[v as usize] += share;
            }
        }
        let delta: f64 = scores
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        work.charge(n as u64);
        std::mem::swap(&mut scores, &mut next);
        if tolerance > 0.0 && delta < tolerance {
            break;
        }
    }
    PageRankResult {
        scores,
        iterations,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn uniform_on_cycle() {
        let g = generators::directed_cycle(8);
        let r = pagerank(&g, 0.85, 50, 1e-12);
        for &s in &r.scores {
            assert!((s - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_scores_highest() {
        // Everyone points at vertex 0.
        let mut b = GraphBuilder::directed(5);
        for v in 1..5 {
            b.add_edge(v, 0);
        }
        b.add_edge(0, 1);
        let g = b.build();
        let r = pagerank(&g, 0.85, 60, 0.0);
        let max = r
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max, 0);
    }

    #[test]
    fn tolerance_stops_early() {
        let g = generators::directed_cycle(10);
        let r = pagerank(&g, 0.85, 100, 1e-3);
        assert!(r.iterations < 100);
    }

    #[test]
    fn fixed_iterations_run_exactly() {
        let g = generators::digraph_gnm(30, 90, 1);
        let r = pagerank(&g, 0.85, 30, 0.0);
        assert_eq!(r.iterations, 30);
    }

    #[test]
    fn work_linear_in_mk() {
        let g1 = generators::digraph_gnm(100, 500, 1);
        let g2 = generators::digraph_gnm(100, 1000, 1);
        let w1 = pagerank(&g1, 0.85, 20, 0.0).work;
        let w2 = pagerank(&g2, 0.85, 20, 0.0).work;
        let ratio = w2 as f64 / w1 as f64;
        assert!((1.4..2.1).contains(&ratio), "work should track m; {ratio}");
    }

    #[test]
    fn scores_nonnegative_and_bounded() {
        let g = generators::digraph_gnm(50, 200, 7);
        let r = pagerank(&g, 0.85, 40, 0.0);
        // Without sink redistribution total mass may drop below 1 but each
        // score stays within [base, 1].
        for &s in &r.scores {
            assert!(s >= (1.0 - 0.85) / 50.0 - 1e-12);
            assert!(s <= 1.0);
        }
    }
}
