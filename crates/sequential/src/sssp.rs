//! Row 16: single-source shortest paths by Dijkstra with a binary heap,
//! `O((m + n) log n)`.
//!
//! Substitution note (DESIGN.md): the paper's baseline is Dijkstra with a
//! Fibonacci heap (`O(m + n log n)`); at the sparse sizes we benchmark the
//! binary heap has the same measured growth and smaller constants.

use crate::work::{CountingHeap, Work};
use vcgp_graph::{Graph, VertexId};

/// Result of the SSSP baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspResult {
    /// Distance from the source (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// Operation count.
    pub work: u64,
}

/// Dijkstra from `src`; edge weights must be non-negative.
///
/// # Panics
/// Panics on a negative edge weight.
pub fn sssp(g: &Graph, src: VertexId) -> SsspResult {
    let n = g.num_vertices();
    let mut work = Work::new();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = CountingHeap::new();
    dist[src as usize] = 0.0;
    heap.push(0.0, src, &mut work);
    while let Some((d, u)) = heap.pop(&mut work) {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        for (v, w) in g.out_edges(u) {
            assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            work.charge(1);
            let candidate = d + w;
            if candidate < dist[v as usize] {
                dist[v as usize] = candidate;
                heap.push(candidate, v, &mut work);
            }
        }
    }
    SsspResult {
        dist,
        work: work.count(),
    }
}

/// Bellman-Ford distances, used only as a test oracle for Dijkstra.
#[cfg(test)]
fn bellman_ford(g: &Graph, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    dist[src as usize] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for u in g.vertices() {
            if dist[u as usize].is_infinite() {
                continue;
            }
            for (v, w) in g.out_edges(u) {
                if dist[u as usize] + w < dist[v as usize] {
                    dist[v as usize] = dist[u as usize] + w;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn unweighted_path_distances() {
        let g = generators::path(6);
        let r = sssp(&g, 0);
        assert_eq!(r.dist, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = vcgp_graph::GraphBuilder::new(3);
        b.add_edge(0, 1);
        let r = sssp(&b.build(), 0);
        assert!(r.dist[2].is_infinite());
    }

    #[test]
    fn matches_bellman_ford_on_random_weighted() {
        for seed in 0..5 {
            let g = generators::with_random_weights(
                &generators::gnm_connected(60, 150, seed),
                0.5,
                10.0,
                seed,
                false,
            );
            let r = sssp(&g, 0);
            let oracle = bellman_ford(&g, 0);
            for (v, (&got, &want)) in r.dist.iter().zip(&oracle).enumerate() {
                assert!((got - want).abs() < 1e-9, "vertex {v}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn directed_weights_respected() {
        let mut b = vcgp_graph::GraphBuilder::directed(3);
        b.add_weighted_edge(0, 1, 5.0);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(2, 1, 1.0);
        let r = sssp(&b.build(), 0);
        assert_eq!(r.dist[1], 2.0);
    }

    #[test]
    fn work_superlinear_but_subquadratic() {
        let make = |n: usize| {
            generators::with_random_weights(
                &generators::gnm_connected(n, n * 4, 3),
                0.1,
                1.0,
                3,
                false,
            )
        };
        let w1 = sssp(&make(500), 0).work;
        let w2 = sssp(&make(2000), 0).work;
        let ratio = w2 as f64 / w1 as f64;
        // m grew 4x; (m+n) log n grows ~4.5x; far below the 16x of O(mn).
        assert!((3.0..8.0).contains(&ratio), "ratio {ratio}");
    }
}
