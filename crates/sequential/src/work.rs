//! Operation counting utilities shared by the baselines.

/// A deterministic operation counter. One unit ≈ one elementary step
/// (vertex visit, edge scan, heap sift, pointer hop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Work(u64);

impl Work {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Work(0)
    }

    /// Charges `units` operations.
    #[inline]
    pub fn charge(&mut self, units: u64) {
        self.0 += units;
    }

    /// The accumulated count.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0
    }

    /// The standard charge for comparison-sorting `n` items:
    /// `n * ceil(log2 n)`.
    pub fn sort_cost(n: usize) -> u64 {
        if n <= 1 {
            return n as u64;
        }
        let log = (usize::BITS - (n - 1).leading_zeros()) as u64;
        n as u64 * log
    }
}

/// A binary min-heap keyed by `f64` that charges one work unit per element
/// move during sift operations, capturing the `log n` factor of
/// priority-queue algorithms (Dijkstra, Prim) in the measured work.
#[derive(Debug, Default)]
pub struct CountingHeap<T> {
    items: Vec<(f64, T)>,
}

impl<T> CountingHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        CountingHeap { items: Vec::new() }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pushes `(key, value)`, charging sift-up moves to `work`.
    pub fn push(&mut self, key: f64, value: T, work: &mut Work) {
        self.items.push((key, value));
        let mut i = self.items.len() - 1;
        work.charge(1);
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[parent].0 <= self.items[i].0 {
                break;
            }
            self.items.swap(parent, i);
            work.charge(1);
            i = parent;
        }
    }

    /// Pops the minimum-key item, charging sift-down moves to `work`.
    pub fn pop(&mut self, work: &mut Work) -> Option<(f64, T)> {
        if self.items.is_empty() {
            return None;
        }
        work.charge(1);
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let top = self.items.pop();
        let len = self.items.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < len && self.items[l].0 < self.items[smallest].0 {
                smallest = l;
            }
            if r < len && self.items[r].0 < self.items[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            work.charge(1);
            i = smallest;
        }
        top
    }
}

/// Union-find with union-by-rank and path compression, charging one unit
/// per parent hop — measured work tracks `α(m, n)` amortized behaviour.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `v`'s set, with path compression.
    pub fn find(&mut self, v: u32, work: &mut Work) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            work.charge(1);
            root = self.parent[root as usize];
        }
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        work.charge(1);
        root
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32, work: &mut Work) -> bool {
        let (ra, rb) = (self.find(a, work), self.find(b, work));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        work.charge(1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_cost_values() {
        assert_eq!(Work::sort_cost(0), 0);
        assert_eq!(Work::sort_cost(1), 1);
        assert_eq!(Work::sort_cost(2), 2);
        assert_eq!(Work::sort_cost(8), 24);
        assert_eq!(Work::sort_cost(9), 36);
    }

    #[test]
    fn heap_sorts() {
        let mut h = CountingHeap::new();
        let mut w = Work::new();
        for &k in &[5.0, 1.0, 4.0, 2.0, 3.0] {
            h.push(k, k as u32, &mut w);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = h.pop(&mut w) {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(w.count() >= 10, "heap ops must be charged");
    }

    #[test]
    fn heap_duplicate_keys() {
        let mut h = CountingHeap::new();
        let mut w = Work::new();
        h.push(1.0, 'a', &mut w);
        h.push(1.0, 'b', &mut w);
        assert_eq!(h.len(), 2);
        assert!(h.pop(&mut w).is_some());
        assert!(h.pop(&mut w).is_some());
        assert!(h.pop(&mut w).is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn heap_work_grows_logarithmically() {
        let cost = |n: usize| {
            let mut h = CountingHeap::new();
            let mut w = Work::new();
            for i in 0..n {
                h.push((n - i) as f64, i, &mut w);
            }
            while h.pop(&mut w).is_some() {}
            w.count() as f64 / n as f64
        };
        // Per-item cost should grow with log n but stay well below linear.
        let small = cost(256);
        let large = cost(4096);
        assert!(large > small);
        assert!(large < small * 3.0);
    }

    #[test]
    fn dsu_unions_and_finds() {
        let mut d = Dsu::new(6);
        let mut w = Work::new();
        assert!(d.union(0, 1, &mut w));
        assert!(d.union(2, 3, &mut w));
        assert!(!d.union(1, 0, &mut w));
        assert_ne!(d.find(0, &mut w), d.find(2, &mut w));
        assert!(d.union(1, 3, &mut w));
        assert_eq!(d.find(0, &mut w), d.find(2, &mut w));
        assert!(w.count() > 0);
    }

    #[test]
    fn dsu_path_compression_flattens() {
        let mut d = Dsu::new(8);
        let mut w = Work::new();
        for i in 0..7 {
            d.union(i, i + 1, &mut w);
        }
        let root = d.find(0, &mut w);
        // After compression a second find is a couple of hops at most.
        let before = w.count();
        let again = d.find(0, &mut w);
        assert_eq!(root, again);
        assert!(w.count() - before <= 2);
    }
}
