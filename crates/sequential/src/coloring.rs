//! Row 12: graph coloring via maximal independent sets, `O(Km)`.
//!
//! The baseline peels the **lexicographically-first MIS** (the paper's
//! sequential comparator): in each round, scan the remaining vertices in id
//! order, adding a vertex when none of its already-added neighbors is in
//! the round's MIS; color the MIS, remove it, repeat. Each round costs
//! `O(m + n)` over the residual graph, `K` rounds total.

use crate::work::Work;
use vcgp_graph::Graph;

/// Result of the coloring baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringResult {
    /// Color per vertex (`0..num_colors`).
    pub colors: Vec<u32>,
    /// Number of colors used (`K`, the number of MIS rounds).
    pub num_colors: u32,
    /// Operation count.
    pub work: u64,
}

/// Lexicographically-first-MIS peeling.
pub fn coloring_lf_mis(g: &Graph) -> ColoringResult {
    assert!(!g.is_directed(), "coloring requires an undirected graph");
    let n = g.num_vertices();
    let mut colors = vec![u32::MAX; n];
    let mut work = Work::new();
    let mut remaining = n;
    let mut color = 0u32;
    let mut in_mis = vec![false; n];
    while remaining > 0 {
        in_mis.iter_mut().for_each(|b| *b = false);
        for v in g.vertices() {
            work.charge(1);
            if colors[v as usize] != u32::MAX {
                continue;
            }
            let mut blocked = false;
            for &u in g.out_neighbors(v) {
                work.charge(1);
                // Only smaller-id vertices can already be in this round's
                // MIS, but scanning all neighbors keeps the charge honest.
                if in_mis[u as usize] {
                    blocked = true;
                    break;
                }
            }
            if !blocked {
                in_mis[v as usize] = true;
                colors[v as usize] = color;
                remaining -= 1;
            }
        }
        color += 1;
    }
    ColoringResult {
        colors,
        num_colors: color,
        work: work.count(),
    }
}

/// Checks the defining invariant of MIS-peeling colorings: the coloring is
/// proper, and every class `c` is a *maximal* independent set of the graph
/// induced by vertices with color `>= c`. Shared with the vertex-centric
/// tests.
pub fn is_valid_mis_coloring(g: &Graph, colors: &[u32]) -> bool {
    let n = g.num_vertices();
    if colors.len() != n {
        return false;
    }
    // Proper coloring.
    for (u, v, _) in g.edges() {
        if u != v && colors[u as usize] == colors[v as usize] {
            return false;
        }
    }
    // Maximality: a vertex of color c must have, for every c' < c, a
    // neighbor colored c' (otherwise it could have joined class c').
    for v in g.vertices() {
        let c = colors[v as usize];
        for lower in 0..c {
            let has = g
                .out_neighbors(v)
                .iter()
                .any(|&u| colors[u as usize] == lower);
            if !has {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn path_uses_two_colors() {
        let r = coloring_lf_mis(&generators::path(10));
        assert_eq!(r.num_colors, 2);
        assert!(is_valid_mis_coloring(&generators::path(10), &r.colors));
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = generators::complete(6);
        let r = coloring_lf_mis(&g);
        assert_eq!(r.num_colors, 6);
        assert!(is_valid_mis_coloring(&g, &r.colors));
    }

    #[test]
    fn odd_cycle_needs_three() {
        let g = generators::cycle(7);
        let r = coloring_lf_mis(&g);
        assert_eq!(r.num_colors, 3);
        assert!(is_valid_mis_coloring(&g, &r.colors));
    }

    #[test]
    fn star_needs_two() {
        let g = generators::star(9);
        let r = coloring_lf_mis(&g);
        assert_eq!(r.num_colors, 2);
        // LF: vertex 0 (center) joins the first MIS, leaves the second.
        assert_eq!(r.colors[0], 0);
        assert!(r.colors[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn isolated_vertices_all_first_color() {
        let g = vcgp_graph::GraphBuilder::new(4).build();
        let r = coloring_lf_mis(&g);
        assert_eq!(r.num_colors, 1);
        assert!(r.colors.iter().all(|&c| c == 0));
    }

    #[test]
    fn random_graphs_valid() {
        for seed in 0..5 {
            let g = generators::gnm(60, 150, seed);
            let r = coloring_lf_mis(&g);
            assert!(is_valid_mis_coloring(&g, &r.colors), "seed {seed}");
        }
    }

    #[test]
    fn validator_rejects_improper() {
        let g = generators::path(3);
        assert!(!is_valid_mis_coloring(&g, &[0, 0, 1]));
        // Proper but not maximal: vertex 2 color 2 could have been 0.
        assert!(!is_valid_mis_coloring(&g, &[0, 1, 2]));
        assert!(is_valid_mis_coloring(&g, &[0, 1, 0]));
    }
}
