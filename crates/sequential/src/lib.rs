//! Best-known sequential baselines for the twenty Table 1 workloads.
//!
//! Every algorithm returns its result together with a deterministic
//! **operation count** (`work`), the sequential side of the paper's
//! time-processor-product comparison. Operation counts charge one unit per
//! elementary step actually executed — vertex visits, edge scans, heap
//! sifts, union-find parent hops — so the measured series reproduce each
//! algorithm's asymptotic behaviour without wall-clock noise.
//!
//! Substitutions relative to the paper's "best known" column (documented in
//! DESIGN.md): Chazelle's MST → Kruskal/Prim, Fibonacci-heap Dijkstra →
//! binary-heap Dijkstra, Chan's APSP → BFS-per-source. Each keeps the same
//! comparison shape at our scales.

pub mod bcc;
pub mod betweenness;
pub mod coloring;
pub mod connectivity;
pub mod diameter;
pub mod matching;
pub mod mst;
pub mod pagerank;
pub mod scc;
pub mod simulation;
pub mod sssp;
pub mod reachability;
pub mod tree;
pub mod triangles;
pub mod work;

pub use work::Work;
