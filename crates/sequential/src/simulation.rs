//! Rows 18-20: graph pattern matching by simulation.
//!
//! * **Graph simulation** (row 18): Henzinger-Henzinger-Kopke's
//!   counter-based fixpoint \[7\], `O((m + n)(m_q + n_q))`. The maximal
//!   relation `R ⊆ V_Q × V_G` such that labels match and every query edge
//!   `q -> q'` is witnessed by some data edge `u -> u'` with `(q', u') ∈ R`.
//! * **Dual simulation** (row 19, Ma et al. \[11\]): additionally every query
//!   edge `q'' -> q` must be witnessed by an incoming data edge.
//! * **Strong simulation** (row 20, Ma et al. \[11\]): dual simulation
//!   restricted to balls `B(w, d_Q)`; a center `w` matches when it appears
//!   in the ball-local maximum dual simulation.
//!
//! Convention: if some query vertex ends with an empty match set, the
//! simulation does not exist and the result is the empty relation.

use crate::work::Work;
use std::collections::VecDeque;
use vcgp_graph::{Graph, GraphBuilder, VertexId};

/// Result of a simulation baseline: the match relation, stored per data
/// vertex as the sorted set of query vertices it simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationResult {
    /// `matches[u]` = sorted query vertices matched by data vertex `u`.
    pub matches: Vec<Vec<VertexId>>,
    /// Whether a (non-empty) simulation exists.
    pub exists: bool,
    /// Operation count.
    pub work: u64,
}

/// Internal fixpoint shared by graph simulation (`dual = false`) and dual
/// simulation (`dual = true`), using HHK-style successor/predecessor
/// counters for the efficient `O((m + n)(m_q + n_q))` bound.
fn simulation_fixpoint(query: &Graph, data: &Graph, dual: bool, work: &mut Work) -> Vec<Vec<bool>> {
    assert!(query.is_directed() && data.is_directed(), "simulation runs on digraphs");
    let nq = query.num_vertices();
    let n = data.num_vertices();
    // sim[q][u]: u currently a candidate match of q.
    let mut sim: Vec<Vec<bool>> = (0..nq).map(|_| vec![false; n]).collect();
    for (q, row) in sim.iter_mut().enumerate() {
        for (u, slot) in row.iter_mut().enumerate() {
            work.charge(1);
            *slot = query.label(q as VertexId) == data.label(u as VertexId);
        }
    }
    // succ_cnt[q][u] = |{u' : u -> u', sim[q][u']}|;
    // pred_cnt[q][u] = |{u'' : u'' -> u, sim[q][u'']}| (dual only).
    let mut succ_cnt: Vec<Vec<u32>> = (0..nq).map(|_| vec![0; n]).collect();
    let mut pred_cnt: Vec<Vec<u32>> = if dual {
        (0..nq).map(|_| vec![0; n]).collect()
    } else {
        Vec::new()
    };
    for q in 0..nq {
        for u in 0..n as u32 {
            for &u2 in data.out_neighbors(u) {
                work.charge(1);
                if sim[q][u2 as usize] {
                    succ_cnt[q][u as usize] += 1;
                }
            }
            if dual {
                for &u0 in data.in_neighbors(u) {
                    work.charge(1);
                    if sim[q][u0 as usize] {
                        pred_cnt[q][u as usize] += 1;
                    }
                }
            }
        }
    }
    // Seed the removal queue with every (q, u) violating a condition.
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
    let violates = |sim: &Vec<Vec<bool>>,
                    succ_cnt: &Vec<Vec<u32>>,
                    pred_cnt: &Vec<Vec<u32>>,
                    q: u32,
                    u: u32,
                    work: &mut Work| {
        if !sim[q as usize][u as usize] {
            return false;
        }
        for &q2 in query.out_neighbors(q) {
            work.charge(1);
            if succ_cnt[q2 as usize][u as usize] == 0 {
                return true;
            }
        }
        if dual {
            for &q0 in query.in_neighbors(q) {
                work.charge(1);
                if pred_cnt[q0 as usize][u as usize] == 0 {
                    return true;
                }
            }
        }
        false
    };
    for q in 0..nq as u32 {
        for u in 0..n as u32 {
            if violates(&sim, &succ_cnt, &pred_cnt, q, u, work) {
                queue.push_back((q, u));
            }
        }
    }
    // Process removals to the fixpoint.
    while let Some((q, u)) = queue.pop_front() {
        if !sim[q as usize][u as usize] {
            continue;
        }
        sim[q as usize][u as usize] = false;
        work.charge(1);
        // u no longer simulates q: decrement counters of u's in-neighbors
        // (they lose a q-successor) and, in dual mode, out-neighbors.
        for &u_pred in data.in_neighbors(u) {
            work.charge(1);
            succ_cnt[q as usize][u_pred as usize] -= 1;
            if succ_cnt[q as usize][u_pred as usize] == 0 {
                for &q_pred in query.in_neighbors(q) {
                    work.charge(1);
                    if sim[q_pred as usize][u_pred as usize] {
                        queue.push_back((q_pred, u_pred));
                    }
                }
            }
        }
        if dual {
            for &u_succ in data.out_neighbors(u) {
                work.charge(1);
                pred_cnt[q as usize][u_succ as usize] -= 1;
                if pred_cnt[q as usize][u_succ as usize] == 0 {
                    for &q_succ in query.out_neighbors(q) {
                        work.charge(1);
                        if sim[q_succ as usize][u_succ as usize] {
                            queue.push_back((q_succ, u_succ));
                        }
                    }
                }
            }
        }
    }
    sim
}

fn collect(query: &Graph, data: &Graph, sim: Vec<Vec<bool>>, work: u64) -> SimulationResult {
    let exists = sim.iter().all(|row| row.iter().any(|&b| b));
    let n = data.num_vertices();
    let mut matches: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    if exists {
        for (q, row) in sim.iter().enumerate() {
            for (u, &b) in row.iter().enumerate() {
                if b {
                    matches[u].push(q as VertexId);
                }
            }
        }
    }
    let _ = query;
    SimulationResult {
        matches,
        exists,
        work,
    }
}

/// Graph simulation (HHK). Row 18 baseline.
pub fn graph_simulation(query: &Graph, data: &Graph) -> SimulationResult {
    let mut work = Work::new();
    let sim = simulation_fixpoint(query, data, false, &mut work);
    collect(query, data, sim, work.count())
}

/// Dual simulation (Ma et al.). Row 19 baseline.
pub fn dual_simulation(query: &Graph, data: &Graph) -> SimulationResult {
    let mut work = Work::new();
    let sim = simulation_fixpoint(query, data, true, &mut work);
    collect(query, data, sim, work.count())
}

/// Result of strong simulation: per candidate center, the query vertices it
/// matches inside its ball's maximum dual simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrongSimulationResult {
    /// `centers[w]` = sorted query vertices matched by `w` within
    /// `B(w, d_Q)`; empty when `w` is not a strong-simulation center.
    pub centers: Vec<Vec<VertexId>>,
    /// Operation count.
    pub work: u64,
}

/// Diameter of the query pattern viewed as an undirected graph (balls use
/// undirected distance, per Ma et al.).
pub fn query_radius(query: &Graph) -> u32 {
    let und = query.to_undirected();
    vcgp_graph::properties::exact_diameter(&und)
        .expect("query pattern must be connected")
}

/// Strong simulation (Ma et al.). Row 20 baseline.
pub fn strong_simulation(query: &Graph, data: &Graph) -> StrongSimulationResult {
    let mut work = Work::new();
    let n = data.num_vertices();
    let d_q = query_radius(query);
    // Global dual simulation first: centers must appear in it (Ma et al.'s
    // match-graph pruning).
    let global = simulation_fixpoint(query, data, true, &mut work);
    let mut centers: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let candidate: Vec<bool> = (0..n)
        .map(|u| global.iter().any(|row| row[u]))
        .collect();
    let und = data.to_undirected();
    for w in 0..n as VertexId {
        work.charge(1);
        if !candidate[w as usize] {
            continue;
        }
        // Ball membership by bounded BFS on the undirected view.
        let mut in_ball = vec![u32::MAX; n];
        let mut ball: Vec<VertexId> = Vec::new();
        let mut queue = VecDeque::new();
        in_ball[w as usize] = 0;
        queue.push_back(w);
        ball.push(w);
        while let Some(u) = queue.pop_front() {
            work.charge(1);
            let d = in_ball[u as usize];
            if d == d_q {
                continue;
            }
            for &v in und.out_neighbors(u) {
                work.charge(1);
                if in_ball[v as usize] == u32::MAX {
                    in_ball[v as usize] = d + 1;
                    ball.push(v);
                    queue.push_back(v);
                }
            }
        }
        // Induced labeled sub-digraph on the ball.
        ball.sort_unstable();
        let local_of: std::collections::HashMap<VertexId, u32> = ball
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut b = GraphBuilder::directed(ball.len());
        for &u in &ball {
            for &v in data.out_neighbors(u) {
                work.charge(1);
                if let Some(&lv) = local_of.get(&v) {
                    b.add_edge(local_of[&u], lv);
                }
            }
        }
        b.set_labels(ball.iter().map(|&v| data.label(v)).collect());
        let sub = b.build();
        let local = simulation_fixpoint(query, &sub, true, &mut work);
        let exists = local.iter().all(|row| row.iter().any(|&x| x));
        if !exists {
            continue;
        }
        let lw = local_of[&w];
        for (q, row) in local.iter().enumerate() {
            if row[lw as usize] {
                centers[w as usize].push(q as VertexId);
            }
        }
    }
    StrongSimulationResult {
        centers,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    /// Query: A -> B (labels 0 -> 1).
    fn edge_query() -> Graph {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        b.set_labels(vec![0, 1]);
        b.build()
    }

    /// Data: 0(A) -> 1(B), 2(A) (no outgoing edge), 3(B).
    fn small_data() -> Graph {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1);
        b.set_labels(vec![0, 1, 0, 1]);
        b.build()
    }

    #[test]
    fn graph_sim_requires_witnessed_children() {
        let r = graph_simulation(&edge_query(), &small_data());
        assert!(r.exists);
        assert_eq!(r.matches[0], vec![0]); // A with a B child
        assert_eq!(r.matches[2], Vec::<u32>::new()); // A without children
        // Graph simulation has no parent condition: both Bs match.
        assert_eq!(r.matches[1], vec![1]);
        assert_eq!(r.matches[3], vec![1]);
    }

    #[test]
    fn dual_sim_also_requires_parents() {
        let r = dual_simulation(&edge_query(), &small_data());
        assert!(r.exists);
        assert_eq!(r.matches[1], vec![1]); // B with an A parent
        assert_eq!(r.matches[3], Vec::<u32>::new()); // orphan B pruned
    }

    #[test]
    fn nonexistent_simulation_is_empty() {
        // Query needs label 2; data has none.
        let mut qb = GraphBuilder::directed(1);
        qb.set_labels(vec![2]);
        let q = qb.build();
        let r = graph_simulation(&q, &small_data());
        assert!(!r.exists);
        assert!(r.matches.iter().all(Vec::is_empty));
    }

    #[test]
    fn cycle_query_on_cycle_data() {
        // Query: 2-cycle A <-> B. Data: 4-cycle A-B-A-B.
        let mut qb = GraphBuilder::directed(2);
        qb.add_edge(0, 1);
        qb.add_edge(1, 0);
        qb.set_labels(vec![0, 1]);
        let q = qb.build();
        let mut db = GraphBuilder::directed(4);
        for i in 0..4u32 {
            db.add_edge(i, (i + 1) % 4);
        }
        db.set_labels(vec![0, 1, 0, 1]);
        let d = db.build();
        let r = dual_simulation(&q, &d);
        assert!(r.exists);
        assert_eq!(r.matches[0], vec![0]);
        assert_eq!(r.matches[1], vec![1]);
        assert_eq!(r.matches[2], vec![0]);
        assert_eq!(r.matches[3], vec![1]);
    }

    #[test]
    fn dual_contained_in_graph_sim() {
        for seed in 0..5 {
            let q = generators::query_pattern(4, 2, 3, seed);
            let d = generators::labeled_digraph(60, 240, 3, seed + 100);
            let gs = graph_simulation(&q, &d);
            let ds = dual_simulation(&q, &d);
            if !gs.exists {
                assert!(!ds.exists, "dual cannot exist where graph-sim fails");
                continue;
            }
            for u in 0..60 {
                for qv in &ds.matches[u] {
                    assert!(
                        gs.matches[u].contains(qv),
                        "seed {seed}: dual match ({qv},{u}) missing from graph sim"
                    );
                }
            }
        }
    }

    #[test]
    fn graph_sim_fixpoint_is_maximal() {
        // Every surviving pair must satisfy the child condition; every
        // removed pair with matching label must violate it against the
        // final relation (soundness of the fixpoint).
        let q = generators::query_pattern(4, 2, 2, 3);
        let d = generators::labeled_digraph(40, 160, 2, 7);
        let r = graph_simulation(&q, &d);
        if !r.exists {
            return;
        }
        let matched = |qv: u32, u: u32| r.matches[u as usize].contains(&qv);
        for qv in q.vertices() {
            for u in d.vertices() {
                let sat = q.label(qv) == d.label(u)
                    && q.out_neighbors(qv).iter().all(|&q2| {
                        d.out_neighbors(u).iter().any(|&u2| matched(q2, u2))
                    });
                assert_eq!(
                    matched(qv, u),
                    sat,
                    "pair ({qv},{u}) inconsistent with fixpoint"
                );
            }
        }
    }

    #[test]
    fn strong_sim_centers_subset_of_dual() {
        for seed in 0..4 {
            let q = generators::query_pattern(4, 2, 3, seed);
            let d = generators::labeled_digraph(40, 160, 3, seed + 50);
            let ds = dual_simulation(&q, &d);
            let ss = strong_simulation(&q, &d);
            for u in 0..40usize {
                for qv in &ss.centers[u] {
                    assert!(
                        ds.matches[u].contains(qv),
                        "seed {seed}: strong center ({qv},{u}) not in dual sim"
                    );
                }
            }
        }
    }

    #[test]
    fn strong_sim_ball_restriction_prunes() {
        // A long chain A->B->...; with a 2-vertex query the ball around a
        // far-away A still contains its B child, so it stays a center; but
        // an A at the very end with no B in reach is pruned.
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.set_labels(vec![0, 1, 0]);
        let d = b.build();
        let ss = strong_simulation(&edge_query(), &d);
        assert_eq!(ss.centers[0], vec![0]);
        assert!(ss.centers[2].is_empty(), "isolated A cannot be a center");
    }

    #[test]
    fn query_radius_of_patterns() {
        assert_eq!(query_radius(&edge_query()), 1);
        let q = generators::query_pattern(5, 2, 3, 1);
        assert!(query_radius(&q) >= 1);
    }
}
