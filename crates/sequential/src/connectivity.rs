//! Rows 3, 4, 6, 10: BFS-based connectivity baselines, all `O(m + n)`
//! (Hopcroft & Tarjan \[8\]).

use crate::work::Work;
use std::collections::VecDeque;
use vcgp_graph::{Graph, VertexId, INVALID_VERTEX};

/// Result of the connected-components baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcResult {
    /// The "color" of each vertex: the smallest vertex id in its component
    /// (the paper's convention, §3.3.1).
    pub components: Vec<VertexId>,
    /// Number of components.
    pub count: usize,
    /// Operation count.
    pub work: u64,
}

/// Connected components of an undirected graph by BFS. Row 3/4 baseline.
pub fn cc(g: &Graph) -> CcResult {
    assert!(!g.is_directed(), "cc requires an undirected graph");
    cc_impl(g)
}

fn cc_impl(g: &Graph) -> CcResult {
    let n = g.num_vertices();
    let mut comp = vec![INVALID_VERTEX; n];
    let mut work = Work::new();
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        work.charge(1);
        if comp[s as usize] != INVALID_VERTEX {
            continue;
        }
        count += 1;
        comp[s as usize] = s;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            work.charge(1);
            for &v in g.out_neighbors(u) {
                work.charge(1);
                if comp[v as usize] == INVALID_VERTEX {
                    comp[v as usize] = s;
                    queue.push_back(v);
                }
            }
        }
    }
    CcResult {
        components: comp,
        count,
        work: work.count(),
    }
}

/// Weakly connected components of a digraph: BFS over the underlying
/// undirected graph (edges followed in both directions). Row 6 baseline.
pub fn wcc(g: &Graph) -> CcResult {
    assert!(g.is_directed(), "wcc expects a digraph; use cc otherwise");
    let n = g.num_vertices();
    let mut comp = vec![INVALID_VERTEX; n];
    let mut work = Work::new();
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    // First pass: discover components with arbitrary BFS roots.
    for s in 0..n as VertexId {
        work.charge(1);
        if comp[s as usize] != INVALID_VERTEX {
            continue;
        }
        count += 1;
        let mut members = vec![s];
        let mut min_id = s;
        comp[s as usize] = s;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            work.charge(1);
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                work.charge(1);
                if comp[v as usize] == INVALID_VERTEX {
                    comp[v as usize] = s;
                    min_id = min_id.min(v);
                    members.push(v);
                    queue.push_back(v);
                }
            }
        }
        // Second pass over members normalizes the color to the smallest id.
        for &v in &members {
            work.charge(1);
            comp[v as usize] = min_id;
        }
    }
    CcResult {
        components: comp,
        count,
        work: work.count(),
    }
}

/// Result of the spanning-tree baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTreeResult {
    /// BFS parent of each vertex (`INVALID_VERTEX` for roots).
    pub parent: Vec<VertexId>,
    /// Number of tree edges (`n - #components`).
    pub tree_edges: usize,
    /// Operation count.
    pub work: u64,
}

/// Spanning forest of an undirected graph by BFS, rooted at the smallest
/// vertex of each component. Row 10 baseline.
pub fn spanning_tree(g: &Graph) -> SpanningTreeResult {
    assert!(!g.is_directed(), "spanning_tree requires an undirected graph");
    let n = g.num_vertices();
    let mut parent = vec![INVALID_VERTEX; n];
    let mut seen = vec![false; n];
    let mut work = Work::new();
    let mut tree_edges = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        work.charge(1);
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            work.charge(1);
            for &v in g.out_neighbors(u) {
                work.charge(1);
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    parent[v as usize] = u;
                    tree_edges += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    SpanningTreeResult {
        parent,
        tree_edges,
        work: work.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn cc_matches_traversal_module() {
        for seed in 0..4 {
            let g = generators::gnm(60, 80, seed);
            let result = cc(&g);
            let (expected, count) = vcgp_graph::traversal::connected_components(&g);
            assert_eq!(result.components, expected);
            assert_eq!(result.count, count);
        }
    }

    #[test]
    fn cc_work_is_linear() {
        let small = cc(&generators::gnm_connected(500, 1000, 1)).work;
        let large = cc(&generators::gnm_connected(2000, 4000, 1)).work;
        let ratio = large as f64 / small as f64;
        assert!((3.0..5.5).contains(&ratio), "ratio {ratio} not ~4x");
    }

    #[test]
    fn wcc_ignores_direction() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(1, 0);
        b.add_edge(2, 1);
        let g = b.build();
        let result = wcc(&g);
        assert_eq!(result.components, vec![0, 0, 0, 3]);
        assert_eq!(result.count, 2);
    }

    #[test]
    fn wcc_color_is_min_id_even_with_late_roots() {
        // Component discovered from vertex 2 must still be colored 0.
        let mut b = GraphBuilder::directed(3);
        b.add_edge(2, 0);
        b.add_edge(2, 1);
        let g = b.build();
        assert_eq!(wcc(&g).components, vec![0, 0, 0]);
    }

    #[test]
    fn spanning_tree_covers_connected_graph() {
        let g = generators::gnm_connected(100, 250, 3);
        let st = spanning_tree(&g);
        assert_eq!(st.tree_edges, 99);
        assert_eq!(st.parent[0], INVALID_VERTEX);
        // Every non-root parent edge must be a real edge.
        for v in 1..100u32 {
            let p = st.parent[v as usize];
            assert_ne!(p, INVALID_VERTEX);
            assert!(g.has_edge(p, v));
        }
    }

    #[test]
    fn spanning_forest_on_disconnected() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(3, 4);
        let st = spanning_tree(&b.build());
        assert_eq!(st.tree_edges, 2);
        assert_eq!(st.parent[2], INVALID_VERTEX);
    }
}
