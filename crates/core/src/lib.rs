//! The paper's contribution: the complexity benchmark of Khan (EDBT 2017).
//!
//! * [`cost`] — Valiant's BSP cost model `max(w, g·h, L)` and the
//!   time-processor product `P(n)·T(n)` (§2.1);
//! * [`complexity`] — the complexity classes named in Table 1 and an
//!   empirical growth-fitting procedure over size sweeps;
//! * [`bppa`] — the four BPPA properties of Yan et al. (§2.2), checked
//!   empirically from per-vertex instrumentation;
//! * [`workload`] — the twenty Table 1 rows: metadata, paper verdicts,
//!   deterministic input families, and measurement runners;
//! * [`benchmark`] — the Table 1 driver producing per-row verdicts;
//! * [`report`] — markdown rendering of the regenerated Table 1;
//! * [`service`] — the serving path: precondition checks and bounded-budget
//!   execution of any workload against a resident graph (used by
//!   `vcgp-stress`);
//! * [`fingerprint`] — stable, order-independent 64-bit graph fingerprints,
//!   the graph-identity half of the serving layer's result-cache key.

pub mod benchmark;
pub mod bppa;
pub mod complexity;
pub mod cost;
pub mod fingerprint;
pub mod report;
pub mod service;
pub mod workload;

pub use benchmark::{run_row, run_table1, RowResult, Verdict};
pub use bppa::{BppaReport, PropertyVerdict};
pub use complexity::{ComplexityClass, Fit, GraphParams};
pub use cost::BspCostModel;
pub use fingerprint::{graph_fingerprint, leg_fingerprint};
pub use service::{run_workload, supported, supported_workloads, ServiceRun, Unsupported};
pub use workload::{Measurement, Scale, Workload};
