//! Markdown rendering of the regenerated Table 1 and per-row detail.

use crate::benchmark::RowResult;
use std::fmt::Write;

fn yes_no(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}

/// Renders the regenerated Table 1 with measured fits and verdicts next to
/// the paper's stated complexities and verdicts.
pub fn render_table1(rows: &[RowResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| # | Workload | Paper VC | Measured VC fit | Paper Seq | Measured Seq fit | \
         More work? (paper) | More work? (measured) | BPPA? (paper) | BPPA? (measured) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        let w = r.workload;
        writeln!(
            out,
            "| {} | {} | {} | {} (spread {:.2}) | {} | {} (spread {:.2}) | {} | {} | {} | {} ({}) |",
            w.row(),
            w.name(),
            w.paper_vc(),
            r.vc_fit.class.label(),
            r.vc_fit.spread,
            w.paper_seq(),
            r.seq_fit.class.label(),
            r.seq_fit.spread,
            yes_no(w.expected_more_work()),
            yes_no(r.more_work.yes),
            yes_no(w.expected_bppa()),
            yes_no(r.bppa.is_bppa()),
            r.bppa.summary(),
        )
        .expect("writing to string cannot fail");
    }
    out
}

/// Renders the per-size measurement detail for one row.
pub fn render_row_detail(r: &RowResult) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "### Row {} — {}\n",
        r.workload.row(),
        r.workload.name()
    )
    .unwrap();
    out.push_str("| n | m | δ | K | supersteps | messages | TPP | seq work | TPP/seq |\n");
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for m in &r.measurements {
        writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {:.3e} | {:.3e} | {:.2} |",
            m.params.n,
            m.params.m,
            m.params.delta,
            m.params.k,
            m.supersteps,
            m.messages,
            m.tpp,
            m.seq_work,
            m.tpp / m.seq_work.max(1.0),
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nVerdicts: more work = **{}** (ratio {:.2} → {:.2}); BPPA = **{}** ({}).",
        yes_no(r.more_work.yes),
        r.more_work.first_ratio,
        r.more_work.last_ratio,
        yes_no(r.bppa.is_bppa()),
        r.bppa.summary(),
    )
    .unwrap();
    if let Some(note) = r.bppa_note {
        writeln!(out, "\n> Note: {note}").unwrap();
    }
    writeln!(
        out,
        "\nBPPA evidence (normalized, smallest → largest size): storage {:.1} → {:.1}; \
         compute {:.1} → {:.1}; messages {:.1} → {:.1}; supersteps/log₂n {:.1} → {:.1}.",
        r.bppa.storage.first,
        r.bppa.storage.last,
        r.bppa.compute.first,
        r.bppa.compute.last,
        r.bppa.messages.first,
        r.bppa.messages.last,
        r.bppa.supersteps.first,
        r.bppa.supersteps.last,
    )
    .unwrap();
    out
}

/// Renders a CSV of all sweep measurements (one line per row × size).
pub fn render_csv(rows: &[RowResult]) -> String {
    let mut out = String::from(
        "row,workload,n,m,delta,k,nq,mq,supersteps,messages,tpp,seq_work,ratio\n",
    );
    for r in rows {
        for m in &r.measurements {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.workload.row(),
                r.workload.name().replace(',', ";"),
                m.params.n,
                m.params.m,
                m.params.delta,
                m.params.k,
                m.params.nq,
                m.params.mq,
                m.supersteps,
                m.messages,
                m.tpp,
                m.seq_work,
                m.tpp / m.seq_work.max(1.0),
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::run_row;
    use crate::workload::{Scale, Workload};
    use vcgp_pregel::PregelConfig;

    #[test]
    fn table_renders_all_columns() {
        let cfg = PregelConfig::default().with_workers(2);
        let rows = vec![run_row(Workload::EulerTour, Scale::Quick, &cfg)];
        let table = render_table1(&rows);
        assert!(table.contains("Euler Tour"));
        assert!(table.contains("O(n)"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn detail_contains_measurements() {
        let cfg = PregelConfig::default().with_workers(2);
        let r = run_row(Workload::EulerTour, Scale::Quick, &cfg);
        let detail = render_row_detail(&r);
        assert!(detail.contains("supersteps"));
        assert!(detail.contains("Verdicts"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cfg = PregelConfig::default().with_workers(2);
        let rows = vec![run_row(Workload::EulerTour, Scale::Quick, &cfg)];
        let csv = render_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("row,workload"));
        assert_eq!(lines.len(), 1 + rows[0].measurements.len());
    }
}
