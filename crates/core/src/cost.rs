//! Valiant's BSP cost model (§2.1 of the paper).
//!
//! With per-superstep observables `w_i` (local work), `s_i`/`r_i`
//! (messages sent/received by worker `i`), the model charges
//! `max(w, g·h, L)` per superstep, where `w = max_i w_i`,
//! `h = max_i max(s_i, r_i)`, `g` is the network permeability, and `L` the
//! synchronization periodicity. The total over supersteps is the running
//! time `T(n)`; the **time-processor product** is `p · T(n)`, the quantity
//! Table 1 compares against the best sequential algorithm's work.

use vcgp_pregel::{RunStats, SuperstepStats};

/// The BSP cost model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspCostModel {
    /// Bandwidth parameter `g`: time per unit of `h`-relation. The paper
    /// analyzes `g = O(1)` ("for higher values of g, the time-processor
    /// product would be even higher").
    pub g: f64,
    /// Synchronization periodicity `L`: the floor cost of a superstep.
    pub l: f64,
}

impl Default for BspCostModel {
    fn default() -> Self {
        BspCostModel { g: 1.0, l: 1.0 }
    }
}

impl BspCostModel {
    /// A model with explicit parameters.
    pub fn new(g: f64, l: f64) -> Self {
        assert!(g > 0.0 && l >= 0.0, "g must be positive, L non-negative");
        BspCostModel { g, l }
    }

    /// The charged time of one superstep: `max(w, g·h, L)`.
    pub fn superstep_time(&self, s: &SuperstepStats) -> f64 {
        let w = s.max_work() as f64;
        let h = s.max_h() as f64;
        w.max(self.g * h).max(self.l)
    }

    /// `T(n)`: the sum of superstep times over the run.
    pub fn total_time(&self, stats: &RunStats) -> f64 {
        stats
            .superstep_stats
            .iter()
            .map(|s| self.superstep_time(s))
            .sum()
    }

    /// The time-processor product `p · T(n)`.
    pub fn time_processor_product(&self, stats: &RunStats) -> f64 {
        stats.num_workers as f64 * self.total_time(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use vcgp_pregel::{HaltReason, WorkerStats};

    fn superstep(workers: Vec<(u64, u64, u64)>) -> SuperstepStats {
        SuperstepStats {
            workers: workers
                .into_iter()
                .map(|(work, sent, received)| WorkerStats {
                    work,
                    sent,
                    received,
                    wall: Duration::ZERO,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn superstep_time_takes_max_of_terms() {
        let model = BspCostModel::default();
        // Compute-bound: w = 100 dominates h = 10.
        assert_eq!(model.superstep_time(&superstep(vec![(100, 10, 5)])), 100.0);
        // Communication-bound.
        assert_eq!(model.superstep_time(&superstep(vec![(3, 50, 80)])), 80.0);
        // Latency floor.
        let lofty = BspCostModel::new(1.0, 42.0);
        assert_eq!(lofty.superstep_time(&superstep(vec![(1, 1, 1)])), 42.0);
    }

    #[test]
    fn g_scales_communication() {
        let model = BspCostModel::new(4.0, 1.0);
        assert_eq!(model.superstep_time(&superstep(vec![(10, 9, 2)])), 36.0);
    }

    #[test]
    fn h_is_max_over_workers_of_max_sent_recv() {
        let model = BspCostModel::default();
        let s = superstep(vec![(1, 7, 2), (1, 3, 9)]);
        assert_eq!(model.superstep_time(&s), 9.0);
    }

    #[test]
    fn tpp_multiplies_by_processors() {
        let mut stats = RunStats::empty(4);
        stats.superstep_stats.push(superstep(vec![(10, 0, 0)]));
        stats.superstep_stats.push(superstep(vec![(20, 0, 0)]));
        stats.halt_reason = HaltReason::Converged;
        let model = BspCostModel::default();
        assert_eq!(model.total_time(&stats), 30.0);
        assert_eq!(model.time_processor_product(&stats), 120.0);
    }

    #[test]
    #[should_panic(expected = "g must be positive")]
    fn invalid_model_rejected() {
        BspCostModel::new(0.0, 1.0);
    }
}
