//! The serving path: run any Table 1 workload against a *resident* graph.
//!
//! The sweep runners in [`crate::workload`] build each row's adversarial
//! input family themselves; a service, by contrast, loads one graph and must
//! answer whatever workload a request names. This module is that mapping:
//! [`supported`] checks a workload's structural preconditions against the
//! resident graph (cheaply — each check is at most one traversal), and
//! [`run_workload`] executes the workload with a bounded superstep budget so
//! a single request can never wedge an executor on a non-converging input.
//!
//! Requests carry a `seed`; source-parameterized workloads (SSSP,
//! betweenness, the simulation family) derive their source vertex or query
//! pattern deterministically from it, so the same request is exactly
//! reproducible.

use crate::workload::Workload;
use vcgp_graph::{traversal, Graph, GraphBuilder, SplitMix64, VertexId, INVALID_VERTEX};
use vcgp_pregel::{PregelConfig, RunStats};

/// PageRank iterations used on the serving path (convergence-grade runs use
/// the sweep's `K = 30`; a service answer trades a little precision for
/// bounded latency).
pub const SERVICE_PAGERANK_ITERS: u32 = 10;

/// Hard superstep budget per service request. Every in-tree workload
/// converges far below this on sane inputs; the cap bounds the damage of an
/// adversarial input (e.g. a matching on massive-tie weights).
pub const SERVICE_MAX_SUPERSTEPS: u64 = 10_000;

/// Why a workload cannot run against the resident graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported {
    /// The workload that was requested.
    pub workload: Workload,
    /// Human-readable precondition that failed.
    pub reason: &'static str,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} unsupported on this graph: {}", self.workload, self.reason)
    }
}

impl std::error::Error for Unsupported {}

/// Result of one serving-path workload execution.
#[derive(Debug, Clone)]
pub struct ServiceRun {
    /// Engine instrumentation of the run (merged across stages for
    /// multi-stage pipelines).
    pub stats: RunStats,
    /// A small workload-specific scalar (component count, colors, diameter,
    /// matched edges, …) so responses carry a semantically meaningful
    /// answer, not just costs.
    pub answer: u64,
}

/// Returns `Ok(nl)` if the graph is "layered bipartite": some split point
/// `nl` has every edge crossing `[0, nl) × [nl, n)` — the layout the
/// bipartite-matching program requires.
fn bipartite_split(g: &Graph) -> Option<usize> {
    let mut max_min = 0u32;
    let mut min_max = u32::MAX;
    let mut any = false;
    for v in g.vertices() {
        for &u in g.out_neighbors(v) {
            if v < u {
                any = true;
                max_min = max_min.max(v);
                min_max = min_max.min(u);
            }
        }
    }
    if any && max_min < min_max {
        Some(max_min as usize + 1)
    } else {
        None
    }
}

/// Whether the graph is an undirected tree (connected, `m = n - 1`).
fn is_tree(g: &Graph) -> bool {
    if g.is_directed() || g.num_vertices() < 2 || g.num_edges() != g.num_vertices() - 1 {
        return false;
    }
    traversal::connected_components(g).1 == 1
}

/// Checks the structural preconditions of `workload` against `graph`.
///
/// The checks are deliberately at most one `O(n + m)` pass, so a service can
/// evaluate all twenty at load time to publish its capability set.
pub fn supported(workload: Workload, graph: &Graph) -> Result<(), Unsupported> {
    let fail = |reason: &'static str| Err(Unsupported { workload, reason });
    if graph.num_vertices() < 2 {
        return fail("graph has fewer than two vertices");
    }
    match workload {
        Workload::Wcc | Workload::Scc if !graph.is_directed() => {
            fail("requires a directed graph")
        }
        Workload::GraphSim | Workload::DualSim | Workload::StrongSim
            if !graph.is_directed() =>
        {
            fail("simulation requires a directed data graph")
        }
        Workload::Mst | Workload::Matching if !graph.is_weighted() => {
            fail("requires edge weights")
        }
        Workload::EulerTour | Workload::TreeOrder if !is_tree(graph) => {
            fail("requires an undirected tree")
        }
        Workload::BipartiteMatching
            if graph.is_directed() || bipartite_split(graph).is_none() =>
        {
            fail("requires a layered bipartite graph")
        }
        Workload::Diameter | Workload::Apsp | Workload::Bcc | Workload::SpanningTree
        | Workload::CcHashMin | Workload::CcSv | Workload::Coloring
            if graph.is_directed() =>
        {
            fail("requires an undirected graph")
        }
        _ => Ok(()),
    }
}

/// The workloads [`supported`] admits on `graph`, in Table 1 order.
pub fn supported_workloads(graph: &Graph) -> Vec<Workload> {
    Workload::ALL
        .into_iter()
        .filter(|&w| supported(w, graph).is_ok())
        .collect()
}

/// How a workload's scalar answer decomposes across a sharded service's
/// vertex slices.
///
/// A sharded deployment partitions vertex *ownership*; the structural graph
/// is replicated to every shard (the single-process stand-in for the
/// partitioned-plus-replicated storage real vertex-centric systems use).
/// For a scattered analytics request every shard runs the same
/// deterministic algorithm and extracts the contribution of its owned
/// slice; the gather side folds those partials back into the global answer.
/// The modes are exact — not approximations — because the engine is
/// deterministic for a fixed `(config, seed)`, so every shard observes the
/// identical per-vertex output vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherMode {
    /// Owned-slice partials add up to the global answer (counts: reached
    /// vertices, component representatives, matched edges, …).
    Sum,
    /// Owned-slice partials are slice maxima; the global answer is their
    /// maximum (eccentricities, color counts).
    Max,
    /// The partial is the owned argmax `(score, vertex)`; the gather keeps
    /// the best score, breaking exact ties toward the higher vertex id —
    /// the same winner as a full-vector `max_by` scan.
    ArgMax,
    /// Not gather-mergeable: the request must run whole on one designated
    /// shard (the sharded service's primary-shard fall-back path).
    Whole,
}

/// The gather mode of `workload` — the capability table's
/// "gather-mergeable" bit ([`GatherMode::Whole`] means *not* mergeable).
pub fn gather_mode(workload: Workload) -> GatherMode {
    match workload {
        // Block ids carry no canonical per-vertex representative we can
        // count from one slice, so BCC rides the primary-shard fall-back.
        Workload::Bcc => GatherMode::Whole,
        Workload::Diameter | Workload::Apsp | Workload::Coloring => GatherMode::Max,
        Workload::PageRank | Workload::Betweenness => GatherMode::ArgMax,
        _ => GatherMode::Sum,
    }
}

/// One row of the serving capability table: whether the workload runs on
/// the resident graph at all, and how it gathers when sharded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capability {
    /// The workload.
    pub workload: Workload,
    /// `Ok` precondition check against the resident graph.
    pub supported: bool,
    /// The workload's gather mode (meaningful whether or not supported).
    pub gather: GatherMode,
}

/// The full 20-row capability table for `graph`, in Table 1 order.
pub fn capabilities(graph: &Graph) -> Vec<Capability> {
    Workload::ALL
        .into_iter()
        .map(|w| Capability {
            workload: w,
            supported: supported(w, graph).is_ok(),
            gather: gather_mode(w),
        })
        .collect()
}

/// A shard's partial contribution to a scattered workload answer.
///
/// Variants mirror [`GatherMode`]; merging is only defined between
/// partials of the same variant (a scattered request always produces
/// same-variant legs, since every shard computes the same workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partial {
    /// A summable count.
    Sum(u64),
    /// A slice maximum.
    Max(u64),
    /// The owned argmax; `score` is `NEG_INFINITY` for an empty slice.
    ArgMax {
        /// Best score in the owned slice.
        score: f64,
        /// Vertex achieving it (ties resolved toward the higher id).
        vertex: u64,
    },
}

impl Partial {
    /// Folds another shard's partial into this one.
    ///
    /// # Panics
    /// Panics if the variants differ — that is a router bug, not a data
    /// condition.
    pub fn merge(self, other: Partial) -> Partial {
        match (self, other) {
            (Partial::Sum(a), Partial::Sum(b)) => Partial::Sum(a + b),
            (Partial::Max(a), Partial::Max(b)) => Partial::Max(a.max(b)),
            (
                Partial::ArgMax { score: sa, vertex: va },
                Partial::ArgMax { score: sb, vertex: vb },
            ) => {
                // Higher score wins; an exact tie goes to the higher vertex
                // id, matching the last-maximum convention of the
                // single-instance `max_by` scan over ascending ids.
                if sb > sa || (sb == sa && vb > va) {
                    Partial::ArgMax { score: sb, vertex: vb }
                } else {
                    Partial::ArgMax { score: sa, vertex: va }
                }
            }
            (a, b) => panic!("cannot merge mismatched partials {a:?} and {b:?}"),
        }
    }

    /// The merged global scalar answer.
    pub fn finish(self) -> u64 {
        match self {
            Partial::Sum(x) | Partial::Max(x) => x,
            Partial::ArgMax { vertex, .. } => vertex,
        }
    }
}

/// Result of one shard-partial workload execution.
#[derive(Debug, Clone)]
pub struct PartialRun {
    /// Engine instrumentation of this shard's (full, replicated) run.
    pub stats: RunStats,
    /// The owned slice's contribution to the answer.
    pub partial: Partial,
}

/// Runs `workload`'s scattered leg on one shard: executes the same
/// deterministic algorithm [`run_workload`] would (same seed derivation,
/// same superstep clamp) and reduces the per-vertex output over the vertices
/// `owns` claims, producing this shard's [`Partial`].
///
/// The caller (the shard router) guarantees the ownership predicates of the
/// fanned-out legs partition the vertex set; under that contract, merging
/// every leg's partial reproduces [`run_workload`]'s answer exactly.
///
/// Returns the failed precondition for unsupported workloads, and a
/// not-gather-mergeable error for [`GatherMode::Whole`] workloads — those
/// must be routed whole to a single shard instead.
pub fn run_workload_partial(
    workload: Workload,
    graph: &Graph,
    config: &PregelConfig,
    seed: u64,
    owns: &dyn Fn(VertexId) -> bool,
) -> Result<PartialRun, Unsupported> {
    supported(workload, graph)?;
    if gather_mode(workload) == GatherMode::Whole {
        return Err(Unsupported {
            workload,
            reason: "not gather-mergeable: route the request whole to one shard",
        });
    }
    let cfg = config
        .clone()
        .with_max_supersteps(config.max_supersteps.min(SERVICE_MAX_SUPERSTEPS));
    let mut rng = SplitMix64::new(seed);
    let source = rng.next_index(graph.num_vertices()) as u32;
    // Count owned component representatives: labels are normalized to the
    // smallest member id, so each component is counted exactly once, by
    // whichever shard owns its representative.
    let owned_reps = |components: &[VertexId]| -> Partial {
        Partial::Sum(
            components
                .iter()
                .enumerate()
                .filter(|&(v, &c)| c == v as VertexId && owns(v as VertexId))
                .count() as u64,
        )
    };
    // Count matched edges at their lower endpoint so each edge is owned by
    // exactly one shard.
    let owned_mates = |mate: &[VertexId]| -> Partial {
        Partial::Sum(
            mate.iter()
                .enumerate()
                .filter(|&(v, &m)| m != INVALID_VERTEX && (v as VertexId) < m && owns(v as VertexId))
                .count() as u64,
        )
    };
    let owned_argmax = |scores: &[f64]| -> Partial {
        let mut best = Partial::ArgMax { score: f64::NEG_INFINITY, vertex: 0 };
        for (v, &s) in scores.iter().enumerate() {
            if owns(v as VertexId) {
                best = best.merge(Partial::ArgMax { score: s, vertex: v as u64 });
            }
        }
        best
    };
    let run = match workload {
        Workload::Diameter | Workload::Apsp => {
            let r = vcgp_algorithms::diameter::run(graph, &cfg);
            let ecc = r
                .eccentricities
                .iter()
                .enumerate()
                .filter(|&(v, _)| owns(v as VertexId))
                .map(|(_, &e)| u64::from(e))
                .max()
                .unwrap_or(0);
            PartialRun { partial: Partial::Max(ecc), stats: r.stats }
        }
        Workload::PageRank => {
            let r = vcgp_algorithms::pagerank::run(graph, 0.85, SERVICE_PAGERANK_ITERS, &cfg);
            PartialRun { partial: owned_argmax(&r.scores), stats: r.stats }
        }
        Workload::CcHashMin => {
            let r = vcgp_algorithms::cc_hashmin::run(graph, &cfg);
            PartialRun { partial: owned_reps(&r.components), stats: r.stats }
        }
        Workload::CcSv => {
            let r = vcgp_algorithms::cc_sv::run(graph, &cfg);
            PartialRun { partial: owned_reps(&r.components), stats: r.stats }
        }
        Workload::Wcc => {
            let r = vcgp_algorithms::wcc::run(graph, &cfg);
            PartialRun { partial: owned_reps(&r.components), stats: r.stats }
        }
        Workload::Scc => {
            let r = vcgp_algorithms::scc::run(graph, &cfg);
            PartialRun { partial: owned_reps(&r.components), stats: r.stats }
        }
        Workload::EulerTour => {
            // The tour length: each arc is attributed to its source vertex.
            let r = vcgp_algorithms::euler_tour::run(graph, 0, &cfg);
            let arcs = r.tour.iter().filter(|&&(u, _)| owns(u)).count() as u64;
            PartialRun { partial: Partial::Sum(arcs), stats: r.stats }
        }
        Workload::TreeOrder => {
            // The answer is the numbered-vertex count; each shard reports
            // its owned vertices.
            let r = vcgp_algorithms::tree_order::run(graph, 0, &cfg);
            let owned = (0..r.pre.len()).filter(|&v| owns(v as VertexId)).count() as u64;
            PartialRun { partial: Partial::Sum(owned), stats: r.stats }
        }
        Workload::SpanningTree => {
            // Canonical (min, max) edges are attributed to their min
            // endpoint's owner.
            let r = vcgp_algorithms::spanning_tree::run(graph, &cfg);
            let edges = r.tree_edges.iter().filter(|&&(a, _)| owns(a)).count() as u64;
            PartialRun { partial: Partial::Sum(edges), stats: r.stats }
        }
        Workload::Mst => {
            let r = vcgp_algorithms::mst_boruvka::run(graph, &cfg);
            let edges = r.edges.iter().filter(|&&(u, _, _)| owns(u)).count() as u64;
            PartialRun { partial: Partial::Sum(edges), stats: r.stats }
        }
        Workload::Coloring => {
            // `num_colors` = max color + 1 and MIS rounds never skip a
            // color, so slice maxima of `color + 1` merge exactly.
            let r = vcgp_algorithms::coloring_mis::run(graph, &cfg);
            let k = r
                .colors
                .iter()
                .enumerate()
                .filter(|&(v, _)| owns(v as VertexId))
                .map(|(_, &c)| u64::from(c) + 1)
                .max()
                .unwrap_or(0);
            PartialRun { partial: Partial::Max(k), stats: r.stats }
        }
        Workload::Matching => {
            let r = vcgp_algorithms::matching_preis::run(graph, &cfg);
            PartialRun { partial: owned_mates(&r.mate), stats: r.stats }
        }
        Workload::BipartiteMatching => {
            let nl = bipartite_split(graph).expect("checked by supported()");
            let r = vcgp_algorithms::bipartite_matching::run(graph, nl, &cfg);
            PartialRun { partial: owned_mates(&r.mate), stats: r.stats }
        }
        Workload::Betweenness => {
            let r = vcgp_algorithms::betweenness::run(graph, Some(&[source]), &cfg);
            PartialRun { partial: owned_argmax(&r.scores), stats: r.stats }
        }
        Workload::Sssp => {
            let r = vcgp_algorithms::sssp::run(graph, source, &cfg);
            let reached = r
                .dist
                .iter()
                .enumerate()
                .filter(|&(v, &d)| d.is_finite() && owns(v as VertexId))
                .count() as u64;
            PartialRun { partial: Partial::Sum(reached), stats: r.stats }
        }
        Workload::GraphSim => {
            let q = seeded_query(graph, seed);
            let r = vcgp_algorithms::graph_simulation::run(&q, graph, &cfg);
            PartialRun { partial: owned_match_count(&r.matches, owns), stats: r.stats }
        }
        Workload::DualSim => {
            let q = seeded_query(graph, seed);
            let r = vcgp_algorithms::dual_simulation::run(&q, graph, &cfg);
            PartialRun { partial: owned_match_count(&r.matches, owns), stats: r.stats }
        }
        Workload::StrongSim => {
            let q = seeded_query(graph, seed);
            let r = vcgp_algorithms::strong_simulation::run(&q, graph, &cfg);
            let centers = r
                .centers
                .iter()
                .enumerate()
                .filter(|&(w, c)| !c.is_empty() && owns(w as VertexId))
                .count() as u64;
            PartialRun { partial: Partial::Sum(centers), stats: r.stats }
        }
        Workload::Bcc => unreachable!("Whole workloads rejected above"),
    };
    Ok(run)
}

/// Match pairs `(q, v)` attributed to the data vertex `v`'s owner.
fn owned_match_count(matches: &[Vec<u32>], owns: &dyn Fn(VertexId) -> bool) -> Partial {
    Partial::Sum(
        matches
            .iter()
            .map(|m| m.iter().filter(|&&v| owns(v)).count() as u64)
            .sum(),
    )
}

/// A deterministic 2-cycle query pattern over the label of a seeded data
/// vertex — the cheapest query that still drives every simulation variant's
/// refinement loop.
fn seeded_query(graph: &Graph, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let v = rng.next_index(graph.num_vertices()) as u32;
    let label = graph.label(v);
    let mut qb = GraphBuilder::directed(2);
    qb.add_edge(0, 1);
    qb.add_edge(1, 0);
    qb.set_labels(vec![label, label]);
    qb.build()
}

/// Runs `workload` against the resident `graph`.
///
/// `seed` parameterizes source-dependent workloads; `config` supplies the
/// engine settings (its superstep cap is clamped to
/// [`SERVICE_MAX_SUPERSTEPS`]). Returns the merged run statistics plus a
/// workload-specific scalar answer, or the failed precondition.
pub fn run_workload(
    workload: Workload,
    graph: &Graph,
    config: &PregelConfig,
    seed: u64,
) -> Result<ServiceRun, Unsupported> {
    supported(workload, graph)?;
    let cfg = config
        .clone()
        .with_max_supersteps(config.max_supersteps.min(SERVICE_MAX_SUPERSTEPS));
    let mut rng = SplitMix64::new(seed);
    let source = rng.next_index(graph.num_vertices()) as u32;
    let run = match workload {
        Workload::Diameter | Workload::Apsp => {
            let r = vcgp_algorithms::diameter::run(graph, &cfg);
            ServiceRun { answer: u64::from(r.diameter), stats: r.stats }
        }
        Workload::PageRank => {
            let r = vcgp_algorithms::pagerank::run(graph, 0.85, SERVICE_PAGERANK_ITERS, &cfg);
            // Index of the top-ranked vertex.
            let top = r
                .scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i);
            ServiceRun { answer: top as u64, stats: r.stats }
        }
        Workload::CcHashMin => {
            let r = vcgp_algorithms::cc_hashmin::run(graph, &cfg);
            ServiceRun { answer: distinct(&r.components), stats: r.stats }
        }
        Workload::CcSv => {
            let r = vcgp_algorithms::cc_sv::run(graph, &cfg);
            ServiceRun { answer: distinct(&r.components), stats: r.stats }
        }
        Workload::Bcc => {
            let r = vcgp_algorithms::bcc::run(graph, &cfg);
            ServiceRun { answer: r.count as u64, stats: r.stats }
        }
        Workload::Wcc => {
            let r = vcgp_algorithms::wcc::run(graph, &cfg);
            ServiceRun { answer: distinct(&r.components), stats: r.stats }
        }
        Workload::Scc => {
            let r = vcgp_algorithms::scc::run(graph, &cfg);
            ServiceRun { answer: r.count as u64, stats: r.stats }
        }
        Workload::EulerTour => {
            let r = vcgp_algorithms::euler_tour::run(graph, 0, &cfg);
            ServiceRun { answer: r.tour.len() as u64, stats: r.stats }
        }
        Workload::TreeOrder => {
            let r = vcgp_algorithms::tree_order::run(graph, 0, &cfg);
            ServiceRun { answer: r.pre.len() as u64, stats: r.stats }
        }
        Workload::SpanningTree => {
            let r = vcgp_algorithms::spanning_tree::run(graph, &cfg);
            ServiceRun { answer: r.tree_edges.len() as u64, stats: r.stats }
        }
        Workload::Mst => {
            let r = vcgp_algorithms::mst_boruvka::run(graph, &cfg);
            ServiceRun { answer: r.edges.len() as u64, stats: r.stats }
        }
        Workload::Coloring => {
            let r = vcgp_algorithms::coloring_mis::run(graph, &cfg);
            ServiceRun { answer: r.num_colors as u64, stats: r.stats }
        }
        Workload::Matching => {
            let r = vcgp_algorithms::matching_preis::run(graph, &cfg);
            ServiceRun { answer: r.size as u64, stats: r.stats }
        }
        Workload::BipartiteMatching => {
            let nl = bipartite_split(graph).expect("checked by supported()");
            let r = vcgp_algorithms::bipartite_matching::run(graph, nl, &cfg);
            ServiceRun { answer: r.size as u64, stats: r.stats }
        }
        Workload::Betweenness => {
            // Single seeded source: full Brandes is Θ(nm) and belongs in the
            // batch harness, not a per-request path.
            let r = vcgp_algorithms::betweenness::run(graph, Some(&[source]), &cfg);
            let top = r
                .scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i);
            ServiceRun { answer: top as u64, stats: r.stats }
        }
        Workload::Sssp => {
            let r = vcgp_algorithms::sssp::run(graph, source, &cfg);
            let reached = r.dist.iter().filter(|d| d.is_finite()).count();
            ServiceRun { answer: reached as u64, stats: r.stats }
        }
        Workload::GraphSim => {
            let q = seeded_query(graph, seed);
            let r = vcgp_algorithms::graph_simulation::run(&q, graph, &cfg);
            ServiceRun { answer: match_count(&r.matches), stats: r.stats }
        }
        Workload::DualSim => {
            let q = seeded_query(graph, seed);
            let r = vcgp_algorithms::dual_simulation::run(&q, graph, &cfg);
            ServiceRun { answer: match_count(&r.matches), stats: r.stats }
        }
        Workload::StrongSim => {
            let q = seeded_query(graph, seed);
            let r = vcgp_algorithms::strong_simulation::run(&q, graph, &cfg);
            let centers = r.centers.iter().filter(|c| !c.is_empty()).count();
            ServiceRun { answer: centers as u64, stats: r.stats }
        }
    };
    Ok(run)
}

/// Number of distinct component labels.
fn distinct(components: &[u32]) -> u64 {
    let mut seen: Vec<u32> = components.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u64
}

/// Total match-set size across query vertices.
fn match_count(matches: &[Vec<u32>]) -> u64 {
    matches.iter().map(|m| m.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn capability_set_on_plain_undirected_graph() {
        let g = generators::gnm_connected(64, 128, 5);
        let caps = supported_workloads(&g);
        // Unweighted undirected graph: no MST/matching (weights), no
        // WCC/SCC (direction), no tree rows, no bipartite layout.
        for w in [
            Workload::Mst,
            Workload::Matching,
            Workload::Wcc,
            Workload::Scc,
            Workload::EulerTour,
            Workload::TreeOrder,
            Workload::BipartiteMatching,
        ] {
            assert!(!caps.contains(&w), "{w:?} should be unsupported");
            assert!(supported(w, &g).is_err());
        }
        for w in [Workload::Diameter, Workload::PageRank, Workload::CcHashMin, Workload::Sssp] {
            assert!(caps.contains(&w), "{w:?} should be supported");
        }
    }

    #[test]
    fn capability_set_widens_with_structure() {
        let tree = generators::random_tree(32, 9);
        assert!(supported(Workload::EulerTour, &tree).is_ok());
        assert!(supported(Workload::TreeOrder, &tree).is_ok());

        let bip = generators::complete_bipartite(8, 4);
        assert!(supported(Workload::BipartiteMatching, &bip).is_ok());
        assert_eq!(bipartite_split(&bip), Some(8));

        let weighted =
            generators::with_random_weights(&generators::gnm_connected(24, 48, 3), 0.0, 1.0, 3, true);
        assert!(supported(Workload::Mst, &weighted).is_ok());
        assert!(supported(Workload::Matching, &weighted).is_ok());

        let digraph = generators::digraph_gnm(24, 60, 4);
        assert!(supported(Workload::Wcc, &digraph).is_ok());
        assert!(supported(Workload::Scc, &digraph).is_ok());
        assert!(supported(Workload::CcHashMin, &digraph).is_err());
    }

    #[test]
    fn tiny_graph_rejected() {
        let g = generators::path(1);
        for w in Workload::ALL {
            assert!(supported(w, &g).is_err(), "{w:?}");
        }
    }

    #[test]
    fn run_workload_answers_are_sane() {
        let g = generators::gnm_connected(48, 96, 7);
        let cfg = PregelConfig::single_worker();
        let cc = run_workload(Workload::CcHashMin, &g, &cfg, 1).unwrap();
        assert_eq!(cc.answer, 1, "connected input has one component");
        assert!(cc.stats.supersteps() > 0);

        let sssp = run_workload(Workload::Sssp, &g, &cfg, 1).unwrap();
        assert_eq!(sssp.answer, 48, "connected: every vertex reached");

        let span = run_workload(Workload::SpanningTree, &g, &cfg, 1).unwrap();
        assert_eq!(span.answer, 47, "spanning tree has n - 1 edges");

        let err = run_workload(Workload::Mst, &g, &cfg, 1).unwrap_err();
        assert_eq!(err.workload, Workload::Mst);
    }

    #[test]
    fn run_workload_is_deterministic_per_seed() {
        let g = generators::labeled_digraph(40, 120, 3, 11);
        let cfg = PregelConfig::single_worker();
        let a = run_workload(Workload::GraphSim, &g, &cfg, 42).unwrap();
        let b = run_workload(Workload::GraphSim, &g, &cfg, 42).unwrap();
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.stats.supersteps(), b.stats.supersteps());
        assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    }

    #[test]
    fn superstep_budget_is_clamped() {
        let g = generators::path(16);
        let cfg = PregelConfig::single_worker().with_max_supersteps(u64::MAX);
        // The clamp happens inside run_workload; the run converges long
        // before the budget, so this just must not wedge or panic.
        let r = run_workload(Workload::CcHashMin, &g, &cfg, 0).unwrap();
        assert!(r.stats.supersteps() <= SERVICE_MAX_SUPERSTEPS);
    }
}
