//! Stable 64-bit graph fingerprints for result caching.
//!
//! A serving-path answer is a pure function of `(workload, graph, seed)`
//! (see [`crate::service::run_workload`]), so memoizing it needs a compact,
//! stable identity for the graph. The fingerprint hashes the vertex/edge
//! *structure* — arc set with weights, vertex labels, directedness, and the
//! `(n, m)` shape — into one `u64`:
//!
//! * **Order-independent over arcs.** Per-arc hashes are combined with
//!   wrapping addition, so the fingerprint does not depend on the order a
//!   builder inserted edges or the CSR happens to iterate them. Two graphs
//!   with the same arc multiset fingerprint identically.
//! * **Stable across runs and platforms.** Built on the workspace's own
//!   [`mix3`] / SplitMix64 mixing — no `std::hash::Hasher` whose output can
//!   change between toolchain releases. A fingerprint persisted in a report
//!   stays comparable forever.
//! * **Cheap.** One `O(n + m)` pass, intended to run once at graph load
//!   (and once per shard slice), never per request.
//!
//! This is a cache key, not a cryptographic commitment: collisions are
//! possible in principle (it is 64 bits) but need adversarial construction;
//! the serving layer only ever compares fingerprints of graphs it loaded
//! itself.

use vcgp_graph::rng::mix3;
use vcgp_graph::Graph;

/// Domain separator for arc hashes.
const ARC_STREAM: u64 = 0x4647_5052_4152_4321; // "FGPRARC!"
/// Domain separator for label hashes.
const LABEL_STREAM: u64 = 0x4647_5052_4C41_4221; // "FGPRLAB!"
/// Domain separator for the final shape fold.
const SHAPE_STREAM: u64 = 0x4647_5052_5348_5021; // "FGPRSHP!"

/// The order-independent structural fingerprint of `graph`.
///
/// Equal graphs (same directedness, arc multiset with weights, and labels)
/// always fingerprint equally; changing any edge, weight, or label changes
/// the fingerprint with overwhelming probability.
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    let mut acc: u64 = 0;
    for v in graph.vertices() {
        for (t, w) in graph.out_edges(v) {
            // Weight bits participate so re-weighting invalidates cached
            // MST/matching answers; `to_bits` keeps the hash exact (no
            // float comparison semantics involved).
            acc = acc.wrapping_add(mix3(
                u64::from(v) << 32 | u64::from(t),
                w.to_bits(),
                ARC_STREAM,
            ));
        }
    }
    if let Some(labels) = graph.labels() {
        for (v, &l) in labels.iter().enumerate() {
            acc = acc.wrapping_add(mix3(v as u64, u64::from(l), LABEL_STREAM));
        }
    }
    let shape = (graph.num_vertices() as u64) << 32
        | (graph.num_edges() as u64 & 0xFFFF_FFFF)
        | u64::from(graph.is_directed()) << 63;
    mix3(acc, shape, SHAPE_STREAM)
}

/// The fingerprint of one shard's *leg* of a scattered workload: the full
/// graph's fingerprint mixed with the shard slice's.
///
/// A scattered partial depends on both the full structural graph (the
/// deterministic algorithm runs on it) and the shard's owned slice (the
/// reduction domain), so neither fingerprint alone identifies the answer.
/// The slice — the owned out-adjacency over the full vertex-id space —
/// pins down the ownership predicate exactly: any re-shard (different `S`,
/// strategy, or placement) changes the slice and therefore the leg
/// fingerprint, which is what makes cached partials safe across
/// re-sharding without explicit versioning.
pub fn leg_fingerprint(full: u64, slice: u64) -> u64 {
    mix3(full, slice, 0x4647_5052_4C45_4721) // "FGPRLEG!"
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::{generators, GraphBuilder};

    #[test]
    fn equal_graphs_fingerprint_equally() {
        let a = generators::gnm_connected(64, 128, 7);
        let b = generators::gnm_connected(64, 128, 7);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)];
        let mut fwd = GraphBuilder::new(4);
        for &(u, v) in &edges {
            fwd.add_edge(u, v);
        }
        let mut rev = GraphBuilder::new(4);
        for &(u, v) in edges.iter().rev() {
            rev.add_edge(u, v);
        }
        assert_eq!(graph_fingerprint(&fwd.build()), graph_fingerprint(&rev.build()));
    }

    #[test]
    fn structure_changes_change_the_fingerprint() {
        let base = generators::gnm_connected(48, 96, 3);
        let other_edges = generators::gnm_connected(48, 97, 3);
        let other_seed = generators::gnm_connected(48, 96, 4);
        let weighted = generators::with_random_weights(&base, 0.0, 1.0, 9, true);
        let fp = graph_fingerprint(&base);
        assert_ne!(fp, graph_fingerprint(&other_edges), "edge count");
        assert_ne!(fp, graph_fingerprint(&other_seed), "edge set");
        assert_ne!(fp, graph_fingerprint(&weighted), "weights");
    }

    #[test]
    fn direction_and_labels_matter() {
        let undirected = generators::gnm_connected(32, 60, 5);
        let directed = generators::digraph_gnm(32, 60, 5);
        assert_ne!(graph_fingerprint(&undirected), graph_fingerprint(&directed));

        let plain = generators::digraph_gnm(40, 100, 6);
        let labeled = generators::labeled_digraph(40, 100, 3, 6);
        assert_ne!(graph_fingerprint(&plain), graph_fingerprint(&labeled));
    }

    #[test]
    fn leg_fingerprint_separates_full_and_slice() {
        let full = 0xAAAA_BBBB_CCCC_DDDD;
        let s1 = 0x1111_2222_3333_4444;
        let s2 = 0x5555_6666_7777_8888;
        assert_ne!(leg_fingerprint(full, s1), leg_fingerprint(full, s2));
        assert_ne!(leg_fingerprint(full, s1), full);
        assert_ne!(leg_fingerprint(full, s1), leg_fingerprint(s1, full));
    }
}
