//! The twenty Table 1 workloads: metadata, deterministic input families,
//! and measurement runners.
//!
//! Every row defines a seeded input family chosen to *expose* the
//! behaviour the paper analyzes (paths for diameter-bound superstep
//! counts, complete graphs for the coloring phase count `K`, monotone
//! weights for the matching round count, a hub-and-chain cascade for the
//! simulation rows), a vertex-centric run with per-vertex tracking, and
//! the instrumented sequential baseline.

use crate::bppa::BppaSample;
use crate::complexity::{ComplexityClass, GraphParams};
use crate::cost::BspCostModel;
use vcgp_graph::{generators, Graph, GraphBuilder};
use vcgp_pregel::{PregelConfig, RunStats};

/// Sweep scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for CI / the in-tree timing benches.
    Quick,
    /// The sizes used to regenerate Table 1 in EXPERIMENTS.md.
    Full,
}

/// One sweep point's measurements.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Input parameters.
    pub params: GraphParams,
    /// Time-processor product of the vertex-centric run (BSP model,
    /// `g = L = 1`).
    pub tpp: f64,
    /// Operation count of the sequential baseline.
    pub seq_work: f64,
    /// Supersteps of the vertex-centric run.
    pub supersteps: u64,
    /// Total algorithm-level messages.
    pub messages: u64,
    /// Normalized BPPA observables.
    pub bppa: BppaSample,
    /// Per-superstep `(w, h)` maxima (worker-local work and traffic), kept
    /// so the TPP can be re-derived under any `(g, L)` — used by the
    /// cost-model sensitivity ablation.
    pub superstep_profile: Vec<(u64, u64)>,
    /// Worker count `p` used for the run.
    pub workers: usize,
}

impl Measurement {
    /// Recomputes the time-processor product under a different cost model.
    pub fn tpp_under(&self, model: &BspCostModel) -> f64 {
        let t: f64 = self
            .superstep_profile
            .iter()
            .map(|&(w, h)| (w as f64).max(model.g * h as f64).max(model.l))
            .sum();
        self.workers as f64 * t
    }
}

/// The twenty rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Workload {
    Diameter,
    PageRank,
    CcHashMin,
    CcSv,
    Bcc,
    Wcc,
    Scc,
    EulerTour,
    TreeOrder,
    SpanningTree,
    Mst,
    Coloring,
    Matching,
    BipartiteMatching,
    Betweenness,
    Sssp,
    Apsp,
    GraphSim,
    DualSim,
    StrongSim,
}

impl Workload {
    /// All rows in Table 1 order.
    pub const ALL: [Workload; 20] = [
        Workload::Diameter,
        Workload::PageRank,
        Workload::CcHashMin,
        Workload::CcSv,
        Workload::Bcc,
        Workload::Wcc,
        Workload::Scc,
        Workload::EulerTour,
        Workload::TreeOrder,
        Workload::SpanningTree,
        Workload::Mst,
        Workload::Coloring,
        Workload::Matching,
        Workload::BipartiteMatching,
        Workload::Betweenness,
        Workload::Sssp,
        Workload::Apsp,
        Workload::GraphSim,
        Workload::DualSim,
        Workload::StrongSim,
    ];

    /// Table 1 row number.
    pub fn row(self) -> u8 {
        match self {
            Workload::Diameter => 1,
            Workload::PageRank => 2,
            Workload::CcHashMin => 3,
            Workload::CcSv => 4,
            Workload::Bcc => 5,
            Workload::Wcc => 6,
            Workload::Scc => 7,
            Workload::EulerTour => 8,
            Workload::TreeOrder => 9,
            Workload::SpanningTree => 10,
            Workload::Mst => 11,
            Workload::Coloring => 12,
            Workload::Matching => 13,
            Workload::BipartiteMatching => 14,
            Workload::Betweenness => 15,
            Workload::Sssp => 16,
            Workload::Apsp => 17,
            Workload::GraphSim => 18,
            Workload::DualSim => 19,
            Workload::StrongSim => 20,
        }
    }

    /// Workload name (Table 1 wording).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Diameter => "Diameter (Unweighted)",
            Workload::PageRank => "PageRank",
            Workload::CcHashMin => "Connected Component (Hash-Min)",
            Workload::CcSv => "Connected Component (S-V)",
            Workload::Bcc => "Bi-Connected Component",
            Workload::Wcc => "Weakly Connected Component",
            Workload::Scc => "Strongly Connected Component",
            Workload::EulerTour => "Euler Tour of Tree",
            Workload::TreeOrder => "Pre- & Post-order Tree Traversal",
            Workload::SpanningTree => "Spanning Tree",
            Workload::Mst => "Minimum Cost Spanning Tree",
            Workload::Coloring => "Graph Coloring with Maximal Independent Set",
            Workload::Matching => "Maximum Weight Matching (Preis)",
            Workload::BipartiteMatching => "Bipartite Maximal Matching (Unweighted)",
            Workload::Betweenness => "Betweenness Centrality (Unweighted)",
            Workload::Sssp => "Single-Source Shortest Path",
            Workload::Apsp => "All-pair Shortest Paths (Unweighted)",
            Workload::GraphSim => "Graph Simulation",
            Workload::DualSim => "Dual Simulation",
            Workload::StrongSim => "Strong Simulation",
        }
    }

    /// Paper's stated vertex-centric complexity (Table 1 column 3).
    pub fn paper_vc(self) -> &'static str {
        match self {
            Workload::Diameter | Workload::Apsp => "O(mn)",
            Workload::PageRank => "O(mK)",
            Workload::CcHashMin => "O(mδ)",
            Workload::CcSv | Workload::Bcc | Workload::Wcc | Workload::Scc
            | Workload::SpanningTree => "O((m+n) log n)",
            Workload::EulerTour => "O(n)",
            Workload::TreeOrder => "O(n log n)",
            Workload::Mst => "O(δm log n)",
            Workload::Coloring => "O(Km log n)",
            Workload::Matching => "O(Km)",
            Workload::BipartiteMatching => "O(m log n)",
            Workload::Betweenness | Workload::Sssp => "O(mn)",
            Workload::GraphSim | Workload::DualSim => "O(m²(n_q+m_q))",
            Workload::StrongSim => "O(m²n(n_q+m_q))",
        }
    }

    /// Paper's stated best-sequential complexity (Table 1 column 5).
    pub fn paper_seq(self) -> &'static str {
        match self {
            Workload::Diameter | Workload::Apsp | Workload::Betweenness => "O(mn)",
            Workload::PageRank => "O(mK)",
            Workload::CcHashMin | Workload::CcSv | Workload::Bcc | Workload::Wcc
            | Workload::Scc | Workload::SpanningTree | Workload::BipartiteMatching => "O(m+n)",
            Workload::EulerTour | Workload::TreeOrder => "O(n)",
            Workload::Mst => "O(m α(m,n))",
            Workload::Coloring => "O(Km)",
            Workload::Matching => "O(m)",
            Workload::Sssp => "O(m + n log n)",
            Workload::GraphSim | Workload::DualSim => "O((m+n)(m_q+n_q))",
            Workload::StrongSim => "O(n(m+n)(m_q+n_q))",
        }
    }

    /// Paper's "More Work?" verdict.
    pub fn expected_more_work(self) -> bool {
        !matches!(
            self,
            Workload::Diameter
                | Workload::PageRank
                | Workload::EulerTour
                | Workload::Betweenness
                | Workload::Apsp
        )
    }

    /// Paper's "BPPA?" verdict.
    pub fn expected_bppa(self) -> bool {
        matches!(
            self,
            Workload::EulerTour | Workload::TreeOrder | Workload::BipartiteMatching
        )
    }

    /// Paper-grounded override for BPPA property 4 where the empirical
    /// sweep cannot expose the violation: PageRank's iteration count `K`
    /// is data-bounded (≈30 in \[12\]), not `O(log n)`-bounded, so a fixed-K
    /// sweep looks flat while the property still fails asymptotically.
    pub fn p4_override(self) -> Option<&'static str> {
        match self {
            Workload::PageRank => Some(
                "K (≈30 supersteps to convergence, per [12]) is independent of n and \
                 exceeds O(log n) — property 4 fails analytically (§3.2)",
            ),
            _ => None,
        }
    }

    /// Candidate classes for fitting the measured TPP.
    pub fn vc_candidates(self) -> Vec<ComplexityClass> {
        use ComplexityClass::*;
        match self {
            Workload::Diameter | Workload::Apsp => vec![M, MDelta, MN, NSquared],
            Workload::PageRank => vec![M, MK, MN],
            Workload::CcHashMin | Workload::Wcc => vec![NPlusM, MPlusNLogN, MDelta, MN],
            Workload::CcSv | Workload::SpanningTree | Workload::Bcc | Workload::Scc => {
                vec![NPlusM, MPlusNLogN, MDelta, MN]
            }
            Workload::EulerTour => vec![N, NLogN, NSquared],
            Workload::TreeOrder => vec![N, NLogN, NSquared],
            Workload::Mst => vec![MLogN, MDeltaLogN, MDelta, MN],
            Workload::Coloring => vec![MK, KMLogN, MN],
            Workload::Matching => vec![M, MK, MN],
            Workload::BipartiteMatching => vec![M, MLogN, MN],
            Workload::Betweenness | Workload::Sssp => {
                vec![MPlusNLogN, MDelta, MN]
            }
            Workload::GraphSim | Workload::DualSim => vec![MNQLinear, M2Q, NSquared],
            Workload::StrongSim => vec![MNQLinear, NMNQ, M2NQ],
        }
    }

    /// Candidate classes for fitting the sequential work.
    pub fn seq_candidates(self) -> Vec<ComplexityClass> {
        use ComplexityClass::*;
        match self {
            Workload::Diameter | Workload::Apsp | Workload::Betweenness => {
                vec![NPlusM, MN, NSquared]
            }
            Workload::PageRank => vec![M, MK, MN],
            Workload::CcHashMin
            | Workload::CcSv
            | Workload::Bcc
            | Workload::Wcc
            | Workload::Scc
            | Workload::SpanningTree
            | Workload::BipartiteMatching => vec![NPlusM, MPlusNLogN, MDelta],
            Workload::EulerTour | Workload::TreeOrder => vec![N, NLogN],
            Workload::Mst => vec![NPlusM, MLogN, MDelta],
            Workload::Coloring => vec![M, MK, KMLogN],
            Workload::Matching => vec![NPlusM, MLogN, MK],
            Workload::Sssp => vec![NPlusM, MPlusNLogNDijkstra, MDelta],
            Workload::GraphSim | Workload::DualSim => vec![MNQLinear, M2Q],
            Workload::StrongSim => vec![MNQLinear, NMNQ, M2NQ],
        }
    }

    /// Sweep sizes (the family-specific size parameter).
    pub fn sizes(self, scale: Scale) -> Vec<usize> {
        let full: &[usize] = match self {
            Workload::Diameter => &[144, 256, 576, 1024],
            Workload::PageRank => &[512, 1024, 2048, 4096],
            Workload::CcHashMin | Workload::CcSv | Workload::Wcc
            | Workload::SpanningTree => &[512, 1024, 2048, 4096],
            Workload::Sssp => &[24, 48, 96, 192],
            Workload::Bcc => &[128, 256, 512, 1024],
            Workload::Scc => &[128, 256, 512, 1024],
            Workload::EulerTour => &[2048, 4096, 8192, 16384],
            Workload::TreeOrder => &[1024, 2048, 4096, 8192],
            Workload::Mst => &[128, 256, 512, 1024],
            Workload::Coloring => &[256, 512, 1024, 2048],
            Workload::Matching => &[128, 256, 512, 1024],
            Workload::BipartiteMatching => &[32, 64, 128, 256],
            Workload::Betweenness => &[64, 96, 128, 192],
            Workload::Apsp => &[96, 144, 192, 288],
            Workload::GraphSim | Workload::DualSim => &[128, 256, 512, 1024],
            Workload::StrongSim => &[64, 128, 256, 512],
        };
        match scale {
            Scale::Full => full.to_vec(),
            Scale::Quick => full.iter().take(2).map(|&s| s.div_euclid(2).max(8)).collect(),
        }
    }

    /// Sizes for a dedicated BPPA sweep, when the BPPA-adversarial family
    /// differs from the more-work family. Asymptotic verdicts are
    /// worst-case over inputs, so different violations may need different
    /// witnesses: graph coloring does its extra *work* on sparse random
    /// graphs (the Luby `log n` factor) but violates the *superstep* bound
    /// on complete graphs, where `K = n` (§3.6).
    pub fn bppa_sizes(self, scale: Scale) -> Option<Vec<usize>> {
        match self {
            Workload::Coloring => {
                let full = &[16usize, 32, 64, 128];
                Some(match scale {
                    Scale::Full => full.to_vec(),
                    Scale::Quick => full.iter().take(2).copied().collect(),
                })
            }
            _ => None,
        }
    }

    /// Measurement on the BPPA-adversarial family (used only for rows where
    /// [`Workload::bppa_sizes`] is `Some`).
    pub fn measure_bppa(self, size: usize, config: &PregelConfig) -> Measurement {
        match self {
            Workload::Coloring => {
                let cfg = config.clone().with_per_vertex_tracking();
                let g = generators::complete(size);
                let vc = vcgp_algorithms::coloring_mis::run(&g, &cfg);
                let sq = vcgp_sequential::coloring::coloring_lf_mis(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges())
                        .with_k(vc.num_colors as u64),
                    &vc.stats,
                    sq.work,
                    &BspCostModel::default(),
                )
            }
            _ => self.measure(size, config),
        }
    }

    /// Runs one sweep point: builds the family input of the given size,
    /// executes the instrumented vertex-centric algorithm and the
    /// sequential baseline, and assembles the measurement.
    pub fn measure(self, size: usize, config: &PregelConfig) -> Measurement {
        let seed = 0xC0FFEE + self.row() as u64;
        let cfg = config.clone().with_per_vertex_tracking();
        let model = BspCostModel::default();
        match self {
            Workload::Diameter => {
                let side = (size as f64).sqrt().round() as usize;
                let g = generators::grid(side, side);
                let delta = 2 * (side as u32 - 1);
                let vc = vcgp_algorithms::diameter::run(&g, &cfg);
                let sq = vcgp_sequential::diameter::diameter(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()).with_delta(delta),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::PageRank => {
                let g = generators::digraph_gnm(size, 8 * size, seed);
                const K: u32 = 30;
                let vc = vcgp_algorithms::pagerank::run(&g, 0.85, K, &cfg);
                let sq = vcgp_sequential::pagerank::pagerank(&g, 0.85, K, 0.0);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()).with_k(K as u64),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::CcHashMin => {
                let g = generators::path(size);
                let vc = vcgp_algorithms::cc_hashmin::run(&g, &cfg);
                let sq = vcgp_sequential::connectivity::cc(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges())
                        .with_delta(size as u32 - 1),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::CcSv => {
                let g = generators::path(size);
                let vc = vcgp_algorithms::cc_sv::run(&g, &cfg);
                let sq = vcgp_sequential::connectivity::cc(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges())
                        .with_delta(size as u32 - 1),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Bcc => {
                let g = generators::gnm_connected(size, 2 * size, seed);
                let vc = vcgp_algorithms::bcc::run(&g, &cfg);
                let sq = vcgp_sequential::bcc::bcc(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Wcc => {
                let g = generators::directed_path(size);
                let vc = vcgp_algorithms::wcc::run(&g, &cfg);
                let sq = vcgp_sequential::connectivity::wcc(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges())
                        .with_delta(size as u32 - 1),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Scc => {
                let g = generators::cyclic_digraph(size, 4, size / 4, seed);
                let delta = (size / 4) as u32;
                let vc = vcgp_algorithms::scc::run(&g, &cfg);
                let sq = vcgp_sequential::scc::scc(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()).with_delta(delta),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::EulerTour => {
                let g = generators::random_tree(size, seed);
                let vc = vcgp_algorithms::euler_tour::run(&g, 0, &cfg);
                let sq = vcgp_sequential::tree::euler_tour(&g, 0);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::TreeOrder => {
                let g = generators::random_tree(size, seed);
                let vc = vcgp_algorithms::tree_order::run(&g, 0, &cfg);
                let sq = vcgp_sequential::tree::tree_order(&g, 0);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::SpanningTree => {
                let g = generators::gnm(size, 2 * size, seed);
                let vc = vcgp_algorithms::spanning_tree::run(&g, &cfg);
                let sq = vcgp_sequential::connectivity::spanning_tree(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Mst => {
                // Density m ≈ n^1.5 keeps the contracted graph at Θ(m)
                // edges for ~log n Borůvka iterations, realizing the
                // paper's extra log factor over the (near-linear) Chazelle
                // stand-in baseline.
                let m = ((size as f64).powf(1.5) as usize).max(2 * size);
                let g = generators::with_random_weights(
                    &generators::gnm_connected(size, m, seed),
                    0.0,
                    1.0,
                    seed,
                    true,
                );
                let delta = vcgp_graph::properties::double_sweep_diameter(&g, 0).unwrap_or(1);
                let vc = vcgp_algorithms::mst_boruvka::run(&g, &cfg);
                // Chazelle stand-in: sort uncharged, O(m α) union-find work
                // measured (DESIGN.md substitutions).
                let sq = vcgp_sequential::mst::mst_kruskal_presorted(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()).with_delta(delta),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Coloring => {
                let g = generators::gnm(size, 6 * size, seed);
                let vc = vcgp_algorithms::coloring_mis::run(&g, &cfg);
                let sq = vcgp_sequential::coloring::coloring_lf_mis(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges())
                        .with_k(vc.num_colors as u64),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Matching => {
                // Monotone weights along a path: K = Θ(n) rounds.
                let mut b = GraphBuilder::new(size);
                for v in 0..size as u32 - 1 {
                    b.add_weighted_edge(v, v + 1, (v + 1) as f64);
                }
                let g = b.build();
                let vc = vcgp_algorithms::matching_preis::run(&g, &cfg);
                let sq = vcgp_sequential::matching::mwm_greedy(&g);
                let rounds = vc.stats.supersteps().div_euclid(3).max(1);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()).with_k(rounds),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::BipartiteMatching => {
                // Lopsided complete bipartite K_{k, k/8}: the k left
                // vertices keep requesting all rights for every one of the
                // Θ(log n) rounds, so the per-round traffic stays Θ(m) —
                // the paper's m log n versus the greedy O(m + n).
                let nl = size;
                let nr = (size / 8).max(2);
                let g = generators::complete_bipartite(nl, nr);
                let vc = vcgp_algorithms::bipartite_matching::run(&g, nl, &cfg);
                let sq = vcgp_sequential::matching::bipartite_greedy(&g, nl);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Betweenness => {
                let g = generators::gnm_connected(size, 3 * size, seed);
                let vc = vcgp_algorithms::betweenness::run(&g, None, &cfg);
                let sq = vcgp_sequential::betweenness::betweenness(&g, None);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Sssp => {
                // The Bellman-Ford staircase: edges i -> j (i < j) with
                // w = 3(j-i) - 1, so a path with more hops is always
                // cheaper and vertex j's distance improves j times —
                // Θ(mn) vertex-centric messages versus Dijkstra.
                let mut b = GraphBuilder::directed(size);
                for i in 0..size as u32 {
                    for j in (i + 1)..size as u32 {
                        b.add_weighted_edge(i, j, 3.0 * f64::from(j - i) - 1.0);
                    }
                }
                let g = b.build();
                let vc = vcgp_algorithms::sssp::run(&g, 0, &cfg);
                let sq = vcgp_sequential::sssp::sssp(&g, 0);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges())
                        .with_delta(size as u32 - 1),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::Apsp => {
                let g = generators::gnm_connected(size, 3 * size, seed);
                let delta = vcgp_graph::properties::double_sweep_diameter(&g, 0).unwrap_or(1);
                let vc = vcgp_algorithms::diameter::run(&g, &cfg);
                let sq = vcgp_sequential::diameter::apsp(&g);
                assemble(
                    &g,
                    GraphParams::simple(g.num_vertices(), g.num_edges()).with_delta(delta),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::GraphSim => {
                let (q, d) = simulation_cascade(size);
                let vc = vcgp_algorithms::graph_simulation::run(&q, &d, &cfg);
                let sq = vcgp_sequential::simulation::graph_simulation(&q, &d);
                assemble(
                    &d,
                    GraphParams::simple(d.num_vertices(), d.num_edges())
                        .with_query(q.num_vertices(), q.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::DualSim => {
                let (q, d) = simulation_cascade(size);
                let vc = vcgp_algorithms::dual_simulation::run(&q, &d, &cfg);
                let sq = vcgp_sequential::simulation::dual_simulation(&q, &d);
                assemble(
                    &d,
                    GraphParams::simple(d.num_vertices(), d.num_edges())
                        .with_query(q.num_vertices(), q.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
            Workload::StrongSim => {
                // Same cascade family: the distributed pipeline pays the
                // quadratic dual-simulation stage while the sequential Ma
                // et al. algorithm resolves it in linear time and only
                // builds the surviving hub's ball.
                let (q, d) = simulation_cascade(size);
                let vc = vcgp_algorithms::strong_simulation::run(&q, &d, &cfg);
                let sq = vcgp_sequential::simulation::strong_simulation(&q, &d);
                assemble(
                    &d,
                    GraphParams::simple(d.num_vertices(), d.num_edges())
                        .with_query(q.num_vertices(), q.num_edges()),
                    &vc.stats,
                    sq.work,
                    &model,
                )
            }
        }
    }
}

/// The hub-and-chain cascade family for the simulation rows: a directed
/// chain of `size - 1` vertices labeled 0, plus a self-looped hub with an
/// edge to every chain vertex. The query is a 2-cycle of label-0 vertices,
/// so every match needs a matching child *and* (for dual/strong) a matching
/// parent: the chain unravels one vertex per refinement round while the hub
/// — kept alive forever by its self-loop — re-evaluates its whole child map
/// on every round. `Θ(n)` supersteps and `Θ(n²)` vertex-centric work
/// against the HHK/Ma counter-based fixpoint's `Θ(n)`.
pub fn simulation_cascade(size: usize) -> (Graph, Graph) {
    assert!(size >= 3);
    let chain = size - 1;
    let mut qb = GraphBuilder::directed(2);
    qb.add_edge(0, 1);
    qb.add_edge(1, 0);
    qb.set_labels(vec![0, 0]);
    let query = qb.build();
    let mut db = GraphBuilder::directed(size);
    for v in 0..chain as u32 - 1 {
        db.add_edge(v, v + 1);
    }
    let hub = chain as u32;
    db.add_edge(hub, hub);
    for v in 0..chain as u32 {
        db.add_edge(hub, v);
    }
    db.set_labels(vec![0; size]);
    (query, db.build())
}

/// Assembles a [`Measurement`] from a run on `graph`.
fn assemble(
    graph: &Graph,
    params: GraphParams,
    stats: &RunStats,
    seq_work: u64,
    model: &BspCostModel,
) -> Measurement {
    let pv = stats
        .per_vertex
        .as_ref()
        .expect("measure() always enables per-vertex tracking");
    let mut storage = 0f64;
    let mut compute = 0f64;
    let mut messages = 0f64;
    for v in graph.vertices() {
        let i = v as usize;
        if i >= pv.max_sent.len() {
            break;
        }
        let d = graph.bppa_degree(v) as f64 + 1.0;
        storage = storage.max(pv.max_state_bytes[i] as f64 / d);
        compute = compute.max(pv.max_work[i] as f64 / d);
        messages = messages.max(pv.max_sent[i].max(pv.max_received[i]) as f64 / d);
    }
    let n = graph.num_vertices() as f64;
    let bppa = BppaSample {
        n,
        storage,
        compute,
        messages,
        supersteps: stats.supersteps() as f64 / n.max(2.0).log2(),
    };
    Measurement {
        params,
        tpp: model.time_processor_product(stats),
        seq_work: seq_work as f64,
        supersteps: stats.supersteps(),
        messages: stats.total_messages(),
        bppa,
        superstep_profile: stats
            .superstep_stats
            .iter()
            .map(|s| (s.max_work(), s.max_h()))
            .collect(),
        workers: stats.num_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        assert_eq!(Workload::ALL.len(), 20);
        for (i, w) in Workload::ALL.iter().enumerate() {
            assert_eq!(w.row() as usize, i + 1);
            assert!(!w.name().is_empty());
            assert!(!w.paper_vc().is_empty());
            assert!(!w.paper_seq().is_empty());
            assert!(!w.vc_candidates().is_empty());
            assert!(!w.seq_candidates().is_empty());
            assert!(w.sizes(Scale::Full).len() >= 3);
            assert!(!w.sizes(Scale::Quick).is_empty());
        }
    }

    #[test]
    fn expected_verdicts_match_paper() {
        // Rows 1, 2, 8, 15, 17 are "more work: no"; rows 8, 9, 14 are BPPA.
        let no_more_work: Vec<u8> = Workload::ALL
            .iter()
            .filter(|w| !w.expected_more_work())
            .map(|w| w.row())
            .collect();
        assert_eq!(no_more_work, vec![1, 2, 8, 15, 17]);
        let bppa: Vec<u8> = Workload::ALL
            .iter()
            .filter(|w| w.expected_bppa())
            .map(|w| w.row())
            .collect();
        assert_eq!(bppa, vec![8, 9, 14]);
    }

    #[test]
    fn cascade_family_shape() {
        let (q, d) = simulation_cascade(10);
        assert_eq!(q.num_vertices(), 2);
        assert!(q.has_edge(0, 1) && q.has_edge(1, 0));
        assert_eq!(d.num_vertices(), 10);
        // Hub points at itself and at every chain vertex.
        assert!(d.has_edge(9, 9));
        assert_eq!(d.out_degree(9), 10);
    }

    #[test]
    fn measure_smoke_each_row_quick() {
        let cfg = PregelConfig::single_worker();
        for w in Workload::ALL {
            let size = w.sizes(Scale::Quick)[0];
            let m = w.measure(size, &cfg);
            assert!(m.tpp > 0.0, "{:?}: zero TPP", w);
            assert!(m.seq_work > 0.0, "{:?}: zero sequential work", w);
            assert!(m.supersteps > 0, "{:?}", w);
            assert!(m.bppa.n > 0.0);
        }
    }
}
