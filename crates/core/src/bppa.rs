//! Empirical checking of the four BPPA properties (§2.2).
//!
//! A Pregel algorithm is a *balanced practical Pregel algorithm* when
//! (P1) each vertex stores `O(d(v))`, (P2) each `compute` costs `O(d(v))`,
//! (P3) each vertex sends/receives `O(d(v))` messages per superstep, and
//! (P4) the run takes `O(log n)` supersteps.
//!
//! The checker consumes, for every size in a sweep, the per-vertex maxima
//! recorded by the engine normalized by `d(v) + 1`, and the superstep count
//! normalized by `log₂ n`. A property holds when its normalized series
//! stays bounded as `n` grows (growth below [`GROWTH_LIMIT`] while the
//! sweep spans at least one order of magnitude); it is violated when the
//! normalized quantity keeps growing.

/// Normalized growth above this factor (largest size vs. smallest) marks a
/// property as violated. Sweeps span ≥8× in `n`, so genuinely bounded
/// ratios stay well below it while any polynomial growth sails past.
pub const GROWTH_LIMIT: f64 = 2.5;

/// One sweep point's normalized BPPA observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BppaSample {
    /// Number of vertices (the sweep axis).
    pub n: f64,
    /// `max_v state_bytes(v) / (d(v) + 1)`.
    pub storage: f64,
    /// `max_v work(v) / (d(v) + 1)` (max over supersteps).
    pub compute: f64,
    /// `max_v max(sent(v), received(v)) / (d(v) + 1)` (max over supersteps).
    pub messages: f64,
    /// `supersteps / log₂ n`.
    pub supersteps: f64,
}

/// Verdict for one property.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropertyVerdict {
    /// Whether the property holds (normalized series bounded).
    pub satisfied: bool,
    /// Normalized value at the smallest size.
    pub first: f64,
    /// Normalized value at the largest size.
    pub last: f64,
}

impl PropertyVerdict {
    fn from_series(series: &[f64]) -> Self {
        let first = series.first().copied().unwrap_or(0.0).max(1e-9);
        let last = series.last().copied().unwrap_or(0.0).max(1e-9);
        PropertyVerdict {
            satisfied: last / first <= GROWTH_LIMIT,
            first,
            last,
        }
    }
}

/// The full BPPA report for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BppaReport {
    /// P1: per-vertex storage is `O(d(v))`.
    pub storage: PropertyVerdict,
    /// P2: per-superstep compute is `O(d(v))`.
    pub compute: PropertyVerdict,
    /// P3: per-superstep messages are `O(d(v))`.
    pub messages: PropertyVerdict,
    /// P4: `O(log n)` supersteps.
    pub supersteps: PropertyVerdict,
}

impl BppaReport {
    /// Whether all four properties hold.
    pub fn is_bppa(&self) -> bool {
        self.storage.satisfied
            && self.compute.satisfied
            && self.messages.satisfied
            && self.supersteps.satisfied
    }

    /// Short evidence string, e.g. `"P1✗ P4✗"` listing violated properties
    /// (or `"P1-P4✓"` when all hold).
    pub fn summary(&self) -> String {
        if self.is_bppa() {
            return "P1-P4 ok".to_string();
        }
        let mut out = String::new();
        for (name, v) in [
            ("P1", self.storage),
            ("P2", self.compute),
            ("P3", self.messages),
            ("P4", self.supersteps),
        ] {
            if !v.satisfied {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(name);
                out.push('*');
            }
        }
        out
    }
}

/// Checks the four properties over a sweep (samples ordered by `n`).
///
/// # Panics
/// Panics on fewer than two samples (growth needs a sweep).
pub fn check(samples: &[BppaSample]) -> BppaReport {
    assert!(samples.len() >= 2, "BPPA check needs a size sweep");
    debug_assert!(
        samples.windows(2).all(|w| w[0].n <= w[1].n),
        "samples must be ordered by n"
    );
    let collect = |f: fn(&BppaSample) -> f64| -> Vec<f64> { samples.iter().map(f).collect() };
    BppaReport {
        storage: PropertyVerdict::from_series(&collect(|s| s.storage)),
        compute: PropertyVerdict::from_series(&collect(|s| s.compute)),
        messages: PropertyVerdict::from_series(&collect(|s| s.messages)),
        supersteps: PropertyVerdict::from_series(&collect(|s| s.supersteps)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: f64, storage: f64, compute: f64, messages: f64, supersteps: f64) -> BppaSample {
        BppaSample {
            n,
            storage,
            compute,
            messages,
            supersteps,
        }
    }

    #[test]
    fn bounded_series_satisfies() {
        let samples = vec![
            sample(256.0, 40.0, 3.0, 1.0, 1.5),
            sample(1024.0, 42.0, 3.1, 1.0, 1.4),
            sample(4096.0, 45.0, 2.9, 1.0, 1.6),
        ];
        let report = check(&samples);
        assert!(report.is_bppa());
        assert_eq!(report.summary(), "P1-P4 ok");
    }

    #[test]
    fn growing_storage_violates_p1() {
        let samples = vec![
            sample(256.0, 256.0, 1.0, 1.0, 1.0),
            sample(1024.0, 1024.0, 1.0, 1.0, 1.0),
            sample(4096.0, 4096.0, 1.0, 1.0, 1.0),
        ];
        let report = check(&samples);
        assert!(!report.storage.satisfied);
        assert!(report.compute.satisfied);
        assert!(!report.is_bppa());
        assert_eq!(report.summary(), "P1*");
    }

    #[test]
    fn linear_supersteps_violate_p4() {
        // supersteps = n ⇒ normalized n / log n grows.
        let samples = vec![
            sample(256.0, 1.0, 1.0, 1.0, 256.0 / 8.0),
            sample(4096.0, 1.0, 1.0, 1.0, 4096.0 / 12.0),
        ];
        let report = check(&samples);
        assert!(!report.supersteps.satisfied);
        assert_eq!(report.summary(), "P4*");
    }

    #[test]
    fn multiple_violations_listed() {
        let samples = vec![
            sample(100.0, 1.0, 1.0, 10.0, 10.0),
            sample(1000.0, 1.0, 1.0, 100.0, 100.0),
        ];
        assert_eq!(check(&samples).summary(), "P3* P4*");
    }

    #[test]
    #[should_panic(expected = "size sweep")]
    fn single_sample_rejected() {
        check(&[sample(10.0, 1.0, 1.0, 1.0, 1.0)]);
    }
}
