//! The Table 1 driver: sweeps each workload's family, fits complexity
//! classes, and produces the "More Work?" and "BPPA?" verdicts.

use crate::bppa::{self, BppaReport, BppaSample, PropertyVerdict};
use crate::complexity::{class_growth, fit, Fit, GraphParams};
use crate::workload::{Measurement, Scale, Workload};
use vcgp_pregel::PregelConfig;

/// Measured ratio growth above this factor ⇒ the vertex-centric algorithm
/// performs asymptotically more work.
pub const RATIO_GROWTH_LIMIT: f64 = 1.25;
/// A fitted vertex-centric class growing this much faster than the fitted
/// sequential class over the sweep also yields a "more work" verdict.
pub const CLASS_GROWTH_MARGIN: f64 = 1.15;

/// A binary verdict plus the evidence behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// The verdict.
    pub yes: bool,
    /// `TPP/sequential` at the smallest size.
    pub first_ratio: f64,
    /// `TPP/sequential` at the largest size.
    pub last_ratio: f64,
}

/// One regenerated Table 1 row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// The workload.
    pub workload: Workload,
    /// The sweep measurements (ascending sizes).
    pub measurements: Vec<Measurement>,
    /// Best-fitting class for the vertex-centric TPP.
    pub vc_fit: Fit,
    /// Best-fitting class for the sequential work.
    pub seq_fit: Fit,
    /// "More Work?" verdict.
    pub more_work: Verdict,
    /// "BPPA?" verdicts per property.
    pub bppa: BppaReport,
    /// Analytical note attached to the BPPA verdict, if any.
    pub bppa_note: Option<&'static str>,
}

impl RowResult {
    /// Whether both verdicts agree with the paper's Table 1.
    pub fn matches_paper(&self) -> bool {
        self.more_work.yes == self.workload.expected_more_work()
            && self.bppa.is_bppa() == self.workload.expected_bppa()
    }
}

/// Runs one row's sweep (plus a dedicated BPPA sweep when the workload
/// declares a separate BPPA-adversarial family) and derives its verdicts.
pub fn run_row(workload: Workload, scale: Scale, config: &PregelConfig) -> RowResult {
    let sizes = workload.sizes(scale);
    let measurements: Vec<Measurement> = sizes
        .iter()
        .map(|&s| workload.measure(s, config))
        .collect();
    let bppa_measurements = workload.bppa_sizes(scale).map(|sizes| {
        sizes
            .iter()
            .map(|&s| workload.measure_bppa(s, config))
            .collect::<Vec<_>>()
    });
    analyze_with_bppa(workload, measurements, bppa_measurements)
}

/// Derives verdicts from an existing sweep (exposed for tests and the
/// harness binaries).
pub fn analyze(workload: Workload, measurements: Vec<Measurement>) -> RowResult {
    analyze_with_bppa(workload, measurements, None)
}

/// [`analyze`] with an optional separate sweep for the BPPA verdict.
pub fn analyze_with_bppa(
    workload: Workload,
    measurements: Vec<Measurement>,
    bppa_measurements: Option<Vec<Measurement>>,
) -> RowResult {
    assert!(measurements.len() >= 2, "verdicts need a sweep");
    let vc_series: Vec<(GraphParams, f64)> =
        measurements.iter().map(|m| (m.params, m.tpp)).collect();
    let seq_series: Vec<(GraphParams, f64)> =
        measurements.iter().map(|m| (m.params, m.seq_work)).collect();
    let vc_fit = fit(&vc_series, &workload.vc_candidates());
    let seq_fit = fit(&seq_series, &workload.seq_candidates());

    let first_ratio = measurements[0].tpp / measurements[0].seq_work.max(1.0);
    let last = measurements.last().expect("non-empty");
    let last_ratio = last.tpp / last.seq_work.max(1.0);
    let ratio_growth = last_ratio / first_ratio.max(1e-12);
    let class_gap = class_growth(vc_fit.class, &vc_series)
        / class_growth(seq_fit.class, &seq_series).max(1e-12);
    let more_work = Verdict {
        yes: ratio_growth > RATIO_GROWTH_LIMIT || class_gap > CLASS_GROWTH_MARGIN,
        first_ratio,
        last_ratio,
    };

    let samples: Vec<BppaSample> = bppa_measurements
        .as_ref()
        .unwrap_or(&measurements)
        .iter()
        .map(|m| m.bppa)
        .collect();
    let mut bppa = bppa::check(&samples);
    let bppa_note = workload.p4_override();
    if bppa_note.is_some() {
        bppa.supersteps = PropertyVerdict {
            satisfied: false,
            ..bppa.supersteps
        };
    }
    RowResult {
        workload,
        measurements,
        vc_fit,
        seq_fit,
        more_work,
        bppa,
        bppa_note,
    }
}

/// Runs the entire Table 1 benchmark.
pub fn run_table1(scale: Scale, config: &PregelConfig) -> Vec<RowResult> {
    Workload::ALL
        .iter()
        .map(|&w| run_row(w, scale, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PregelConfig {
        PregelConfig::default().with_workers(2)
    }

    #[test]
    fn euler_tour_is_workoptimal_and_bppa() {
        let r = run_row(Workload::EulerTour, Scale::Full, &quick_cfg());
        assert!(!r.more_work.yes, "row 8 must not do more work");
        assert!(r.bppa.is_bppa(), "row 8 must be BPPA: {:?}", r.bppa);
        assert!(r.matches_paper());
    }

    #[test]
    fn hashmin_does_more_work_not_bppa() {
        let r = run_row(Workload::CcHashMin, Scale::Full, &quick_cfg());
        assert!(r.more_work.yes, "ratios: {:?}", r.more_work);
        assert!(!r.bppa.is_bppa());
        assert!(!r.bppa.supersteps.satisfied, "δ supersteps on a path");
        assert!(r.matches_paper());
    }

    #[test]
    fn diameter_matches_sequential_but_fails_bppa() {
        let r = run_row(Workload::Diameter, Scale::Full, &quick_cfg());
        assert!(!r.more_work.yes, "both sides are Θ(mn): {:?}", r.more_work);
        assert!(!r.bppa.storage.satisfied, "history sets are Θ(n)");
        assert!(r.matches_paper());
    }

    #[test]
    fn pagerank_balanced_with_analytic_p4() {
        let r = run_row(Workload::PageRank, Scale::Full, &quick_cfg());
        assert!(!r.more_work.yes);
        assert!(r.bppa.storage.satisfied && r.bppa.messages.satisfied);
        assert!(!r.bppa.supersteps.satisfied, "overridden by the paper's K argument");
        assert!(r.bppa_note.is_some());
        assert!(r.matches_paper());
    }

    #[test]
    fn tree_order_more_work_but_bppa() {
        let r = run_row(Workload::TreeOrder, Scale::Full, &quick_cfg());
        assert!(r.more_work.yes, "n log n vs n: {:?}", r.more_work);
        assert!(r.bppa.is_bppa(), "{:?}", r.bppa);
        assert!(r.matches_paper());
    }
}
