//! The complexity classes of Table 1 and empirical growth fitting.
//!
//! Every workload row states an asymptotic class for its vertex-centric and
//! sequential algorithms in terms of `n`, `m`, the diameter `δ`, an
//! iteration count `K`, and query sizes `n_q`, `m_q`. The fitter takes a
//! measured cost series over a size sweep and selects the candidate class
//! whose implied constant is most stable — the closest empirical analogue
//! of "the measurement is Θ(f)".

/// The measured parameters of one benchmark input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphParams {
    /// Vertices.
    pub n: f64,
    /// Edges.
    pub m: f64,
    /// Diameter `δ` (1.0 when not meaningful for the family).
    pub delta: f64,
    /// Iteration/phase count `K` (1.0 when not applicable).
    pub k: f64,
    /// Query vertices `n_q` (1.0 for non-pattern workloads).
    pub nq: f64,
    /// Query edges `m_q` (1.0 for non-pattern workloads).
    pub mq: f64,
}

impl GraphParams {
    /// Parameters for a plain graph workload.
    pub fn simple(n: usize, m: usize) -> Self {
        GraphParams {
            n: n as f64,
            m: m.max(1) as f64,
            delta: 1.0,
            k: 1.0,
            nq: 1.0,
            mq: 1.0,
        }
    }

    /// Sets the diameter.
    pub fn with_delta(mut self, delta: u32) -> Self {
        self.delta = delta.max(1) as f64;
        self
    }

    /// Sets the iteration count `K`.
    pub fn with_k(mut self, k: u64) -> Self {
        self.k = k.max(1) as f64;
        self
    }

    /// Sets the query size.
    pub fn with_query(mut self, nq: usize, mq: usize) -> Self {
        self.nq = nq.max(1) as f64;
        self.mq = mq.max(1) as f64;
        self
    }
}

/// The asymptotic classes named in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ComplexityClass {
    /// `Θ(n)`
    N,
    /// `Θ(m)`
    M,
    /// `Θ(m + n)`
    NPlusM,
    /// `Θ(n log n)`
    NLogN,
    /// `Θ((m + n) log n)`
    MPlusNLogN,
    /// `Θ(m log n)` — also stands in for `m log m` (equal up to constants).
    MLogN,
    /// `Θ(m δ)`
    MDelta,
    /// `Θ(m n)`
    MN,
    /// `Θ(n²)`
    NSquared,
    /// `Θ(m K)`
    MK,
    /// `Θ(K m log n)`
    KMLogN,
    /// `Θ(m δ log n)`
    MDeltaLogN,
    /// `Θ(m + n log n)`
    MPlusNLogNDijkstra,
    /// `Θ((m + n)(n_q + m_q))`
    MNQLinear,
    /// `Θ(m² (n_q + m_q))` — measured as total, see row 18 notes.
    M2Q,
    /// `Θ(n (m + n)(n_q + m_q))`
    NMNQ,
    /// `Θ(m² n (n_q + m_q))`
    M2NQ,
}

impl ComplexityClass {
    /// Evaluates the class at the given parameters.
    pub fn eval(self, p: &GraphParams) -> f64 {
        let log_n = p.n.max(2.0).log2();
        let q = p.nq + p.mq;
        match self {
            ComplexityClass::N => p.n,
            ComplexityClass::M => p.m,
            ComplexityClass::NPlusM => p.n + p.m,
            ComplexityClass::NLogN => p.n * log_n,
            ComplexityClass::MPlusNLogN => (p.m + p.n) * log_n,
            ComplexityClass::MLogN => p.m * log_n,
            ComplexityClass::MDelta => p.m * p.delta,
            ComplexityClass::MN => p.m * p.n,
            ComplexityClass::NSquared => p.n * p.n,
            ComplexityClass::MK => p.m * p.k,
            ComplexityClass::KMLogN => p.k * p.m * log_n,
            ComplexityClass::MDeltaLogN => p.m * p.delta * log_n,
            ComplexityClass::MPlusNLogNDijkstra => p.m + p.n * log_n,
            ComplexityClass::MNQLinear => (p.m + p.n) * q,
            ComplexityClass::M2Q => p.m * p.m * q,
            ComplexityClass::NMNQ => p.n * (p.m + p.n) * q,
            ComplexityClass::M2NQ => p.m * p.m * p.n * q,
        }
    }

    /// Human-readable label (Table 1 notation).
    pub fn label(self) -> &'static str {
        match self {
            ComplexityClass::N => "O(n)",
            ComplexityClass::M => "O(m)",
            ComplexityClass::NPlusM => "O(m+n)",
            ComplexityClass::NLogN => "O(n log n)",
            ComplexityClass::MPlusNLogN => "O((m+n) log n)",
            ComplexityClass::MLogN => "O(m log n)",
            ComplexityClass::MDelta => "O(m δ)",
            ComplexityClass::MN => "O(mn)",
            ComplexityClass::NSquared => "O(n²)",
            ComplexityClass::MK => "O(mK)",
            ComplexityClass::KMLogN => "O(Km log n)",
            ComplexityClass::MDeltaLogN => "O(mδ log n)",
            ComplexityClass::MPlusNLogNDijkstra => "O(m + n log n)",
            ComplexityClass::MNQLinear => "O((m+n)(n_q+m_q))",
            ComplexityClass::M2Q => "O(m²(n_q+m_q))",
            ComplexityClass::NMNQ => "O(n(m+n)(n_q+m_q))",
            ComplexityClass::M2NQ => "O(m²n(n_q+m_q))",
        }
    }
}

/// Result of fitting a measured series against a candidate class.
#[derive(Debug, Clone, Copy)]
pub struct Fit {
    /// The best-fitting class.
    pub class: ComplexityClass,
    /// Geometric-mean implied constant `measured / f(params)`.
    pub constant: f64,
    /// Stability of that constant: `max ratio / min ratio` over the sweep
    /// (1.0 = perfect Θ-fit).
    pub spread: f64,
}

/// Picks the candidate class whose implied constant is most stable across
/// the sweep.
///
/// # Panics
/// Panics on an empty series or empty candidate list.
pub fn fit(series: &[(GraphParams, f64)], candidates: &[ComplexityClass]) -> Fit {
    assert!(!series.is_empty(), "cannot fit an empty series");
    assert!(!candidates.is_empty(), "need at least one candidate class");
    let mut best: Option<Fit> = None;
    for &class in candidates {
        let ratios: Vec<f64> = series
            .iter()
            .map(|(p, measured)| measured / class.eval(p).max(1e-12))
            .collect();
        let max = ratios.iter().copied().fold(f64::MIN, f64::max);
        let min = ratios.iter().copied().fold(f64::MAX, f64::min);
        let spread = if min > 0.0 { max / min } else { f64::INFINITY };
        let log_mean =
            ratios.iter().map(|r| r.max(1e-300).ln()).sum::<f64>() / ratios.len() as f64;
        let candidate = Fit {
            class,
            constant: log_mean.exp(),
            spread,
        };
        best = Some(match best {
            None => candidate,
            Some(cur) if candidate.spread < cur.spread => candidate,
            Some(cur) => cur,
        });
    }
    best.expect("non-empty candidates")
}

/// Growth factor of a class over a sweep: `f(last) / f(first)`. Used to
/// compare how fast two fitted classes grow on the same inputs.
pub fn class_growth(class: ComplexityClass, series: &[(GraphParams, f64)]) -> f64 {
    let first = class.eval(&series[0].0).max(1e-12);
    let last = class.eval(&series[series.len() - 1].0).max(1e-12);
    last / first
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, m: usize, delta: u32) -> GraphParams {
        GraphParams::simple(n, m).with_delta(delta)
    }

    #[test]
    fn eval_known_values() {
        let p = params(1024, 4096, 10);
        assert_eq!(ComplexityClass::N.eval(&p), 1024.0);
        assert_eq!(ComplexityClass::M.eval(&p), 4096.0);
        assert_eq!(ComplexityClass::MDelta.eval(&p), 40960.0);
        assert_eq!(ComplexityClass::MLogN.eval(&p), 4096.0 * 10.0);
        assert_eq!(ComplexityClass::MN.eval(&p), 4096.0 * 1024.0);
    }

    #[test]
    fn fit_recovers_generating_class() {
        // Synthesize measurements that are exactly 3·mδ and check the
        // fitter picks MDelta over the alternatives.
        let series: Vec<(GraphParams, f64)> = [(256usize, 512usize, 40u32), (512, 1024, 80),
            (1024, 2048, 160), (2048, 4096, 320)]
            .into_iter()
            .map(|(n, m, d)| {
                let p = params(n, m, d);
                (p, 3.0 * ComplexityClass::MDelta.eval(&p))
            })
            .collect();
        let fit = fit(
            &series,
            &[
                ComplexityClass::M,
                ComplexityClass::MLogN,
                ComplexityClass::MDelta,
                ComplexityClass::MN,
            ],
        );
        assert_eq!(fit.class, ComplexityClass::MDelta);
        assert!((fit.constant - 3.0).abs() < 1e-9);
        assert!(fit.spread < 1.0 + 1e-9);
    }

    #[test]
    fn fit_tolerates_noise() {
        let series: Vec<(GraphParams, f64)> = (8..12u32)
            .map(|i| {
                let n = 1usize << i;
                let p = params(n, 4 * n, 8);
                let noise = if i % 2 == 0 { 1.1 } else { 0.95 };
                (p, noise * ComplexityClass::NLogN.eval(&p))
            })
            .collect();
        let fit = fit(
            &series,
            &[
                ComplexityClass::N,
                ComplexityClass::NLogN,
                ComplexityClass::NSquared,
            ],
        );
        assert_eq!(fit.class, ComplexityClass::NLogN);
    }

    #[test]
    fn class_growth_ordering() {
        let series: Vec<(GraphParams, f64)> = [(256usize, 1024usize), (4096, 16384)]
            .into_iter()
            .map(|(n, m)| (GraphParams::simple(n, m), 0.0))
            .collect();
        let linear = class_growth(ComplexityClass::M, &series);
        let quadratic = class_growth(ComplexityClass::MN, &series);
        assert!(quadratic > linear * 10.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ComplexityClass::MDeltaLogN.label(), "O(mδ log n)");
        assert_eq!(ComplexityClass::M2NQ.label(), "O(m²n(n_q+m_q))");
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_rejected() {
        fit(&[], &[ComplexityClass::N]);
    }
}
