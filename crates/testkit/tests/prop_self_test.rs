//! Self-tests for the property harness: a deliberately-failing property must
//! shrink to a small counterexample and report a seed that reproduces it,
//! and a passing property must be deterministic across runs with the same
//! seed.

use std::cell::RefCell;
use vcgp_testkit::prop::{any_u64, check_result, Config, Strategy};
use vcgp_testkit::{prop_assert, prop_assert_eq, vcgp_props};

/// The property under test: fails for every n >= 17 out of [0, 100000).
fn gte_17(input: (u64,)) -> Result<(), String> {
    let (n,) = input;
    if n < 17 {
        Ok(())
    } else {
        Err(format!("{n} >= 17"))
    }
}

#[test]
fn failing_property_shrinks_to_minimal_counterexample() {
    let config = Config::default().with_cases(64);
    let failure = check_result("gte_17", &config, &(0u64..100_000,), gte_17).unwrap_err();
    // Greedy raw-stream shrinking must land exactly on the smallest failing
    // input, not just somewhere small.
    assert_eq!(failure.minimized, "(17,)");
    assert!(failure.shrink_steps > 0, "shrinking must have happened");
    assert!(failure.message.contains(">= 17"));
}

#[test]
fn failure_report_prints_replayable_seed() {
    let config = Config::default().with_cases(64);
    let failure = check_result("gte_17", &config, &(0u64..100_000,), gte_17).unwrap_err();
    let report = failure.report();
    assert!(
        report.contains(&format!("VCGP_PROP_SEED={:#018x}", failure.case_seed)),
        "report must name the replay seed: {report}"
    );
    assert!(report.contains("minimized counterexample: (17,)"));

    // Re-running with the reported seed (what VCGP_PROP_SEED does) must
    // reproduce the failure and shrink to the same counterexample.
    let replay = Config::default().with_replay_seed(failure.case_seed);
    let again = check_result("gte_17", &replay, &(0u64..100_000,), gte_17).unwrap_err();
    assert_eq!(again.case_seed, failure.case_seed);
    assert_eq!(again.minimized, "(17,)");
}

#[test]
fn shrinking_works_through_prop_map() {
    // The Vec is built by a mapped strategy; shrinking the entropy stream
    // must shrink the *derived* structure to the smallest failing one.
    let config = Config::default().with_cases(64);
    let strat = ((0usize..64).prop_map(|n| vec![7u8; n]),);
    let failure = check_result("long_vec", &config, &strat, |(v,): (Vec<u8>,)| {
        if v.len() < 5 {
            Ok(())
        } else {
            Err(format!("len {} >= 5", v.len()))
        }
    })
    .unwrap_err();
    assert_eq!(failure.minimized, format!("{:?}", (vec![7u8; 5],)));
}

#[test]
fn passing_property_is_deterministic_across_runs() {
    let collect = || {
        let seen = RefCell::new(Vec::new());
        let config = Config::default().with_cases(40);
        let cases = check_result(
            "det",
            &config,
            &(1usize..500, any_u64()),
            |(n, s): (usize, u64)| {
                seen.borrow_mut().push((n, s));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(cases, 40);
        seen.into_inner()
    };
    let first = collect();
    assert_eq!(first, collect(), "same seed must draw the same cases");
    assert!(
        first.windows(2).any(|w| w[0] != w[1]),
        "cases must actually vary"
    );
}

#[test]
fn distinct_properties_draw_distinct_streams() {
    let draw = |name: &str| {
        let seen = RefCell::new(Vec::new());
        check_result(name, &Config::default(), &(any_u64(),), |(x,): (u64,)| {
            seen.borrow_mut().push(x);
            Ok(())
        })
        .unwrap();
        seen.into_inner()
    };
    assert_ne!(draw("alpha"), draw("beta"));
}

// The macro surface itself: bindings, tuple patterns, per-test case count,
// and the early-return assertion macros.
vcgp_props! {
    #![cases(48)]

    fn macro_smoke_addition_commutes(a in 0u64..1000, b in 0u64..1000) {
        prop_assert_eq!(a + b, b + a);
    }

    #[cases(33)]
    fn macro_supports_tuple_patterns_and_map((lo, hi) in (0usize..10, 10usize..20)) {
        prop_assert!(lo < hi, "lo {lo} must stay below hi {hi}");
    }
}
