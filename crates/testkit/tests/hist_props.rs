//! Property tests for the log-bucketed latency histogram: quantile
//! monotonicity, bounded relative error, and lossless merging — the
//! invariants the `vcgp-stress` driver's cross-thread latency reports
//! depend on.

use vcgp_testkit::hist::LogHistogram;
use vcgp_testkit::prop::Source;
use vcgp_testkit::{prop_assert, prop_assert_eq, vcgp_props};

/// Draws `count` values spread across magnitudes: small linear-region
/// values, mid-range, and huge, so every bucket regime is exercised.
fn draw_values(src_seed: u64, count: usize) -> Vec<u64> {
    let mut src = Source::new(src_seed);
    (0..count)
        .map(|_| {
            let shift = src.next_below(64) as u32;
            src.next_u64() >> shift
        })
        .collect()
}

/// Exact reference quantile matching the histogram's rank convention
/// (`⌈q·n⌉`-th smallest, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

vcgp_props! {
    #![cases(48)]

    fn quantiles_are_monotone_in_q(seed in 0u64..1_000_000, n in 1usize..400) {
        let mut h = LogHistogram::new();
        for v in draw_values(seed, n) {
            h.record(v);
        }
        let mut prev = h.quantile(0.0);
        for i in 1..=40 {
            let cur = h.quantile(i as f64 / 40.0);
            prop_assert!(cur >= prev, "quantile not monotone at q={}", i as f64 / 40.0);
            prev = cur;
        }
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    fn quantile_relative_error_is_bounded(seed in 0u64..1_000_000, n in 1usize..300) {
        let values = draw_values(seed, n);
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let approx = h.quantile(q);
            let exact = exact_quantile(&sorted, q);
            // Upper-edge reporting: never below the exact value, and at most
            // one sub-bucket (1/128 relative, +1 for integer rounding) above.
            prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            let bound = exact.saturating_add(exact / 128).saturating_add(1);
            prop_assert!(approx <= bound, "q={q}: approx {approx} > bound {bound}");
        }
    }

    fn merge_loses_no_sample_and_preserves_quantiles(
        seed in 0u64..1_000_000,
        n in 0usize..500,
        parts in 1usize..8,
    ) {
        let values = draw_values(seed, n);
        let mut whole = LogHistogram::new();
        let mut shards: Vec<LogHistogram> = (0..parts).map(|_| LogHistogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            shards[i % parts].record(v);
        }
        let mut merged = LogHistogram::new();
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
        let bucket_total: u64 = merged.nonzero_buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_total, merged.count());
    }

    // Merging is commutative: a⊕b and b⊕a agree on every observable —
    // count, extrema, the full quantile curve, and the raw buckets.
    fn merge_is_commutative(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        n_a in 0usize..200,
        n_b in 0usize..200,
    ) {
        let mut a = LogHistogram::new();
        for v in draw_values(seed_a, n_a) {
            a.record(v);
        }
        let mut b = LogHistogram::new();
        for v in draw_values(seed_b ^ 0x4D52_4745, n_b) {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.mean().to_bits(), ba.mean().to_bits());
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            prop_assert_eq!(ab.quantile(q), ba.quantile(q));
        }
        let buckets_ab: Vec<_> = ab.nonzero_buckets().collect();
        let buckets_ba: Vec<_> = ba.nonzero_buckets().collect();
        prop_assert_eq!(buckets_ab, buckets_ba);
    }

    // An empty histogram is the merge identity from either side.
    fn merging_empty_is_identity(seed in 0u64..1_000_000, n in 1usize..200) {
        let mut h = LogHistogram::new();
        for v in draw_values(seed, n) {
            h.record(v);
        }
        let empty = LogHistogram::new();
        let mut left = LogHistogram::new();
        left.merge(&h); // empty ⊕ nonempty
        let mut right = h.clone();
        right.merge(&empty); // nonempty ⊕ empty
        for merged in [&left, &right] {
            prop_assert_eq!(merged.count(), h.count());
            prop_assert_eq!(merged.min(), h.min());
            prop_assert_eq!(merged.max(), h.max());
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                prop_assert_eq!(merged.quantile(q), h.quantile(q));
            }
        }
    }

    fn record_n_equals_repeated_record(v_seed in 0u64..1_000_000, n in 1u64..50) {
        let v = vcgp_graph::SplitMix64::new(v_seed).next_u64() >> (v_seed % 40);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(v, n);
        for _ in 0..n {
            b.record(v);
        }
        prop_assert_eq!(a.count(), b.count());
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            prop_assert_eq!(a.quantile(q), b.quantile(q));
        }
    }
}

#[test]
fn merging_two_empty_histograms_stays_empty() {
    let mut a = LogHistogram::new();
    let b = LogHistogram::new();
    a.merge(&b);
    assert_eq!(a.count(), 0);
    assert_eq!(a.nonzero_buckets().count(), 0);
    // Empty-histogram observables are unchanged by the empty merge.
    let fresh = LogHistogram::new();
    assert_eq!(a.min(), fresh.min());
    assert_eq!(a.max(), fresh.max());
    assert_eq!(a.quantile(0.5), fresh.quantile(0.5));
}
