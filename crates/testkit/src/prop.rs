//! Minimal property-based testing over the workspace's deterministic RNG.
//!
//! A [`Strategy`] describes how to draw a random value from a [`Source`] of
//! entropy. The runner ([`check`] / [`check_result`]) draws `cases` values,
//! applies the property, and on the first failure shrinks the *recorded
//! entropy stream* greedily: every bounded draw maps monotonically from its
//! raw 64-bit word, so zeroing a word or binary-searching it toward zero
//! shrinks the drawn value toward the low end of its range. Shrinking the
//! stream instead of the value means `prop_map` composes for free — a mapped
//! `Graph` shrinks because the `(n, m, seed)` tuple underneath it shrinks.
//!
//! Every failure report carries the per-case seed; setting
//! `VCGP_PROP_SEED=<seed>` re-runs exactly that case (and its deterministic
//! shrink), so any counterexample is replayable. `VCGP_PROP_CASES=<n>`
//! overrides the case count.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use vcgp_graph::SplitMix64;

/// Result of one application of a property: `Err` carries the failure text.
pub type TestResult = Result<(), String>;

/// Default number of cases per property (the count the seed's proptest
/// config used).
pub const DEFAULT_CASES: u32 = 32;

/// Fixed default base seed: property runs are deterministic unless the
/// caller (or `VCGP_PROP_SEED`) says otherwise.
const DEFAULT_BASE_SEED: u64 = 0x5EED_CA5E_1337_BEEF;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; each case derives its own seed from this, the case index,
    /// and the property name.
    pub base_seed: u64,
    /// When set, run exactly one case with this seed (replay mode).
    pub replay_seed: Option<u64>,
    /// Budget of property evaluations the shrinker may spend.
    pub max_shrink_evals: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            base_seed: DEFAULT_BASE_SEED,
            replay_seed: None,
            max_shrink_evals: 4096,
        }
    }
}

impl Config {
    /// Sets the number of cases.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Replays a single case seed (as printed by a failure report).
    pub fn with_replay_seed(mut self, seed: u64) -> Self {
        self.replay_seed = Some(seed);
        self
    }

    /// Applies `VCGP_PROP_CASES` and `VCGP_PROP_SEED` environment overrides.
    pub fn from_env(mut self) -> Self {
        if let Ok(v) = std::env::var("VCGP_PROP_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                self.cases = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("VCGP_PROP_SEED") {
            if let Some(s) = parse_seed(&v) {
                self.replay_seed = Some(s);
            }
        }
        self
    }
}

/// Parses a seed in decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

/// Entropy source: a SplitMix64 stream whose draws are recorded so the
/// shrinker can replay a modified prefix. When the replay prefix is
/// exhausted mid-generation (a shrunk word changed control flow), draws fall
/// back to the live RNG so rejection loops in generators still terminate.
pub struct Source {
    rng: SplitMix64,
    replay: Vec<u64>,
    pos: usize,
    record: Vec<u64>,
}

impl Source {
    /// A fresh source for one case.
    pub fn new(seed: u64) -> Self {
        Source {
            rng: SplitMix64::new(seed),
            replay: Vec::new(),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// A source that replays `prefix` before falling back to the RNG.
    fn with_replay(seed: u64, prefix: Vec<u64>) -> Self {
        Source {
            rng: SplitMix64::new(seed),
            replay: prefix,
            pos: 0,
            record: Vec::new(),
        }
    }

    /// Draws 64 raw bits (recorded).
    pub fn next_u64(&mut self) -> u64 {
        let x = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            self.rng.next_u64()
        };
        self.pos += 1;
        self.record.push(x);
        x
    }

    /// Draws a value in `[0, bound)` via the monotone multiply-shift map:
    /// smaller raw words yield smaller values, which is what makes raw-stream
    /// shrinking shrink the drawn value.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Source::next_below bound must be positive");
        let x = self.next_u64();
        (((x as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A recipe for drawing random values of one type.
///
/// Implemented for integer ranges (`2usize..40`), [`any_u64`], and tuples of
/// strategies; arbitrary derived inputs come from [`Strategy::prop_map`].
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value from the source.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Maps the generated value through `f` (shrinking still happens on this
    /// strategy's entropy, so mapped values shrink too).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// Uniform draw over the full `u64` range.
pub struct AnyU64;

/// Strategy for an arbitrary `u64` (the `any::<u64>()` of this framework).
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Strategy for AnyU64 {
    type Value = u64;
    fn generate(&self, src: &mut Source) -> u64 {
        src.next_u64()
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + src.next_below(span) as $t
            }
        }
    )+};
}
range_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Everything known about one property failure, after shrinking.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Property name.
    pub name: String,
    /// Seed that reproduces this case (pass as `VCGP_PROP_SEED`).
    pub case_seed: u64,
    /// Index of the failing case within the run.
    pub case_index: u32,
    /// Failure message of the *minimized* counterexample.
    pub message: String,
    /// `Debug` rendering of the first (unshrunk) counterexample.
    pub original: String,
    /// `Debug` rendering of the minimized counterexample.
    pub minimized: String,
    /// Number of accepted shrink steps.
    pub shrink_steps: u32,
}

impl Failure {
    /// Human-readable report, including the replay instructions.
    pub fn report(&self) -> String {
        format!(
            "property '{name}' failed (case {case} — {steps} shrink steps)\n\
             minimized counterexample: {min}\n\
             original counterexample:  {orig}\n\
             error: {msg}\n\
             replay: VCGP_PROP_SEED={seed:#018x} cargo test -q {name}",
            name = self.name,
            case = self.case_index,
            steps = self.shrink_steps,
            min = truncate(&self.minimized, 2000),
            orig = truncate(&self.original, 800),
            msg = self.message,
            seed = self.case_seed,
        )
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}… ({} bytes total)", &s[..cut], s.len())
    }
}

/// FNV-1a, used to mix the property name into per-case seeds so distinct
/// properties see distinct streams.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn case_seed(config: &Config, name: &str, index: u32) -> u64 {
    vcgp_graph::rng::mix3(config.base_seed, name_hash(name), index as u64)
}

fn run_one<V, F>(test: &F, value: V) -> TestResult
where
    F: Fn(V) -> TestResult,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs the property and panics with a [`Failure::report`] on failure — the
/// entry point the [`vcgp_props!`](crate::vcgp_props) macro expands to.
pub fn check<S, F>(name: &str, config: &Config, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    if let Err(failure) = check_result(name, config, strategy, test) {
        panic!("{}", failure.report());
    }
}

/// Runs the property, returning the number of cases executed or the shrunk
/// [`Failure`].
pub fn check_result<S, F>(
    name: &str,
    config: &Config,
    strategy: &S,
    test: F,
) -> Result<u32, Failure>
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let seeds: Vec<(u32, u64)> = match config.replay_seed {
        Some(s) => vec![(0, s)],
        None => (0..config.cases)
            .map(|i| (i, case_seed(config, name, i)))
            .collect(),
    };
    for &(index, seed) in &seeds {
        let mut src = Source::new(seed);
        let value = strategy.generate(&mut src);
        let original = format!("{value:?}");
        let raw = std::mem::take(&mut src.record);
        if let Err(message) = run_one(&test, value) {
            return Err(shrink(
                name, config, strategy, &test, seed, index, raw, original, message,
            ));
        }
    }
    Ok(seeds.len() as u32)
}

/// Greedy raw-stream shrinking: for each recorded word, first try zero, then
/// binary-search the smallest still-failing word (the bounded-draw map is
/// monotone, so this minimizes the drawn value along that coordinate).
/// Passes repeat until a full sweep accepts nothing or the eval budget runs
/// out.
#[allow(clippy::too_many_arguments)]
fn shrink<S, F>(
    name: &str,
    config: &Config,
    strategy: &S,
    test: &F,
    seed: u64,
    case_index: u32,
    mut raw: Vec<u64>,
    original: String,
    mut message: String,
) -> Failure
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let mut evals: u32 = 0;
    let mut steps: u32 = 0;

    // Shrink attempts routinely panic inside the code under test; silence
    // the default hook while probing so the report stays readable.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Re-generates from a candidate stream; Some((record, msg)) iff it still
    // fails. The accepted record replaces `raw` because changed words can
    // change how many draws generation makes.
    let attempt = |candidate: &[u64], evals: &mut u32| -> Option<(Vec<u64>, String)> {
        *evals += 1;
        let mut src = Source::with_replay(seed, candidate.to_vec());
        let value = strategy.generate(&mut src);
        match run_one(test, value) {
            Err(msg) => Some((src.record, msg)),
            Ok(()) => None,
        }
    };

    let mut improved = true;
    while improved && evals < config.max_shrink_evals {
        improved = false;
        let mut i = 0;
        while i < raw.len() && evals < config.max_shrink_evals {
            if raw[i] == 0 {
                i += 1;
                continue;
            }
            let mut candidate = raw.clone();
            candidate[i] = 0;
            if let Some((rec, msg)) = attempt(&candidate, &mut evals) {
                raw = rec;
                message = msg;
                steps += 1;
                improved = true;
                i += 1;
                continue;
            }
            // 0 passes, raw[i] fails: binary-search the boundary.
            let (mut lo, mut hi) = (0u64, raw[i]);
            let mut best: Option<(Vec<u64>, String)> = None;
            while hi - lo > 1 && evals < config.max_shrink_evals {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = raw.clone();
                candidate[i] = mid;
                match attempt(&candidate, &mut evals) {
                    Some(found) => {
                        hi = mid;
                        best = Some(found);
                    }
                    None => lo = mid,
                }
            }
            if let Some((rec, msg)) = best {
                raw = rec;
                message = msg;
                steps += 1;
                improved = true;
            }
            i += 1;
        }
    }

    let minimized = {
        let mut src = Source::with_replay(seed, raw);
        format!("{:?}", strategy.generate(&mut src))
    };
    std::panic::set_hook(saved_hook);

    Failure {
        name: name.to_string(),
        case_seed: seed,
        case_index,
        message,
        original,
        minimized,
        shrink_steps: steps,
    }
}

/// Property-test assertion: evaluates to an early `Err` return instead of a
/// panic, so the runner can shrink.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion for properties; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` — {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Inequality assertion for properties; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` that runs the body over random draws, shrinking
/// and reporting a replayable seed on failure.
///
/// ```
/// vcgp_testkit::vcgp_props! {
///     #![cases(32)]                       // optional default for the block
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         vcgp_testkit::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! vcgp_props {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::__vcgp_props_inner! { ($cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__vcgp_props_inner! { ($crate::prop::DEFAULT_CASES) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __vcgp_props_inner {
    (($default:expr)) => {};
    (($default:expr)
        $(#[cases($cases:expr)])?
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __cases: u32 = $default;
            $(let __cases: u32 = $cases;)?
            let __config = $crate::prop::Config::default()
                .with_cases(__cases)
                .from_env();
            let __strategy = ($($strat,)+);
            $crate::prop::check(
                stringify!($name),
                &__config,
                &__strategy,
                |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__vcgp_props_inner! { ($default) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_below_is_monotone_in_raw_word() {
        // The shrinker depends on this: smaller raw word → smaller value.
        let bound = 1000u64;
        let value = |raw: u64| (((raw as u128) * (bound as u128)) >> 64) as u64;
        let mut prev = 0;
        for raw in (0..64).map(|i| 1u64 << i) {
            let v = value(raw);
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(value(0), 0);
        assert_eq!(value(u64::MAX), bound - 1);
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut src = Source::new(99);
        for _ in 0..1000 {
            let v = (5usize..17).generate(&mut src);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (2usize..10).prop_map(|n| vec![0u8; n]);
        let mut src = Source::new(3);
        let v = strat.generate(&mut src);
        assert!((2..10).contains(&v.len()));
    }

    #[test]
    fn replay_prefix_reproduces_draws() {
        let mut a = Source::new(7);
        let first: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let mut b = Source::with_replay(7, first.clone());
        let again: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert_eq!(parse_seed(" 0X2a "), Some(42));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn passing_property_reports_case_count() {
        let config = Config::default().with_cases(17);
        let n = check_result("always_ok", &config, &(0u64..10,), |_| Ok(())).unwrap();
        assert_eq!(n, 17);
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let config = Config::default().with_cases(64);
        let failure = check_result("panics", &config, &(0usize..1000,), |(n,)| {
            assert!(n < 100, "too big: {n}");
            Ok(())
        })
        .unwrap_err();
        assert!(failure.message.contains("panic"));
        assert_eq!(failure.minimized, "(100,)");
    }
}
