//! Criterion-style wall-clock timing without the criterion dependency.
//!
//! A [`Harness`] owns named groups of benchmarks. Each benchmark is warmed
//! up for a configured duration, then timed as `sample_size` samples of a
//! fixed iteration count chosen so one sample costs roughly
//! `measurement_time / sample_size`. Per-iteration statistics (mean, median,
//! stddev, min, max) are printed as they complete, and
//! [`Harness::finish`] emits `BENCH_<name>.json` and `BENCH_<name>.md` into
//! `target/vcgp-bench/` (override with `VCGP_BENCH_DIR`) so successive runs
//! leave a machine-readable trajectory.
//!
//! The API intentionally mirrors the criterion subset the workspace used
//! (`benchmark_group`, `sample_size`, `warm_up_time`, `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`), so
//! benches are plain `fn main()` binaries with `harness = false`.

use std::fmt::Display;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export so benches can defeat constant folding without naming `std`.
pub use std::hint::black_box;

/// Two-part benchmark identifier, `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("flood_workers", 4)` → `flood_workers/4`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units processed per iteration, for derived throughput labels.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (vertices, edges…) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
    /// BSP supersteps per iteration — engine benches measure superstep
    /// *rate*, not element counts, and labeling steps as "elem/s" misstated
    /// what was measured.
    Supersteps(u64),
    /// Algorithm-level messages per iteration (the paper's message
    /// complexity): the honest unit for message-bound engine workloads.
    Messages(u64),
}

impl Throughput {
    /// `(count, json_unit, rate_suffix)` for this annotation.
    fn parts(self) -> (u64, &'static str, &'static str) {
        match self {
            Throughput::Elements(n) => (n, "elements", " elem/s"),
            Throughput::Bytes(n) => (n, "bytes", "B/s"),
            Throughput::Supersteps(n) => (n, "supersteps", " steps/s"),
            Throughput::Messages(n) => (n, "messages", " msg/s"),
        }
    }
}

/// Per-iteration timing statistics over the collected samples.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Population standard deviation, nanoseconds.
    pub stddev_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
}

impl Stats {
    /// Computes statistics from per-iteration sample times.
    pub fn from_samples(mut per_iter_ns: Vec<f64>, iters_per_sample: u64) -> Stats {
        assert!(!per_iter_ns.is_empty(), "no samples collected");
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter_ns.len();
        let mean = per_iter_ns.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        let var = if n < 2 {
            0.0
        } else {
            per_iter_ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64
        };
        Stats {
            mean_ns: mean,
            median_ns: median,
            stddev_ns: var.sqrt(),
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[n - 1],
            samples: n,
            iters_per_sample,
        }
    }
}

/// One completed benchmark.
pub struct BenchResult {
    /// Benchmark id within its group.
    pub id: String,
    /// Timing statistics.
    pub stats: Stats,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// One completed group.
pub struct GroupResult {
    /// Group name.
    pub name: String,
    /// Benchmarks in completion order.
    pub benches: Vec<BenchResult>,
}

/// Top-level bench collector; one per bench binary.
pub struct Harness {
    name: String,
    out_dir: PathBuf,
    groups: Vec<GroupResult>,
}

impl Harness {
    /// Creates a harness named after the bench binary (drives the
    /// `BENCH_<name>.*` output file names).
    ///
    /// Reports default to `<workspace>/target/vcgp-bench/` regardless of the
    /// invoking package's CWD (cargo runs bench binaries from the package
    /// directory, not the workspace root); `VCGP_BENCH_DIR` overrides.
    pub fn new(name: &str) -> Self {
        Harness {
            name: name.to_string(),
            out_dir: report_dir(),
            groups: Vec::new(),
        }
    }

    /// Opens a benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            result: GroupResult {
                name: name.to_string(),
                benches: Vec::new(),
            },
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Writes `BENCH_<name>.json` and `BENCH_<name>.md` and prints the
    /// markdown table; returns the JSON path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let json_path = self.out_dir.join(format!("BENCH_{}.json", self.name));
        let md_path = self.out_dir.join(format!("BENCH_{}.md", self.name));
        let md = self.to_markdown();
        std::fs::write(&json_path, self.to_json())?;
        std::fs::write(&md_path, &md)?;
        println!("\n{md}");
        println!("wrote {} and {}", json_path.display(), md_path.display());
        Ok(json_path)
    }

    /// Renders all groups as one JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\n  \"harness\": \"{}\",\n  \"groups\": [", json_escape(&self.name));
        for (gi, g) in self.groups.iter().enumerate() {
            if gi > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\n      \"name\": \"{}\",\n      \"benches\": [",
                json_escape(&g.name)
            );
            for (bi, b) in g.benches.iter().enumerate() {
                if bi > 0 {
                    s.push(',');
                }
                let st = &b.stats;
                let _ = write!(
                    s,
                    "\n        {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                     \"stddev_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                     \"samples\": {}, \"iters_per_sample\": {}",
                    json_escape(&b.id),
                    st.mean_ns,
                    st.median_ns,
                    st.stddev_ns,
                    st.min_ns,
                    st.max_ns,
                    st.samples,
                    st.iters_per_sample
                );
                if let Some(tp) = b.throughput {
                    let (count, unit, _) = tp.parts();
                    let per_sec = count as f64 / (st.mean_ns / 1e9);
                    let _ = write!(
                        s,
                        ", \"throughput\": {{\"per_second\": {per_sec:.1}, \"unit\": \"{unit}\"}}"
                    );
                }
                s.push('}');
            }
            s.push_str("\n      ]\n    }");
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Renders all groups as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# BENCH_{}", self.name);
        for g in &self.groups {
            let _ = writeln!(s, "\n## {}\n", g.name);
            let _ = writeln!(s, "| bench | mean | median | stddev | min | max | throughput |");
            let _ = writeln!(s, "|---|---|---|---|---|---|---|");
            for b in &g.benches {
                let st = &b.stats;
                let tp = match b.throughput {
                    Some(t) => {
                        let (count, _, suffix) = t.parts();
                        format!("{}{}", fmt_rate(count as f64 / (st.mean_ns / 1e9)), suffix)
                    }
                    None => "—".to_string(),
                };
                let _ = writeln!(
                    s,
                    "| {} | {} | {} | {} | {} | {} | {} |",
                    b.id,
                    fmt_ns(st.mean_ns),
                    fmt_ns(st.median_ns),
                    fmt_ns(st.stddev_ns),
                    fmt_ns(st.min_ns),
                    fmt_ns(st.max_ns),
                    tp
                );
            }
        }
        s
    }
}

/// In-progress benchmark group; configure, run benches, then [`Group::finish`].
pub struct Group<'a> {
    harness: &'a mut Harness,
    result: GroupResult,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup wall-clock budget per benchmark (default 300 ms).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement wall-clock budget per benchmark (default 1 s).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benches with units-per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into().id;
        let stats = self.run(&mut f);
        let line_tp = match self.throughput {
            Some(t) => {
                let (count, _, suffix) = t.parts();
                format!(
                    " [{}{}]",
                    fmt_rate(count as f64 / (stats.mean_ns / 1e9)),
                    suffix
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{}: mean {} ± {} ({} samples × {} iters){}",
            self.result.name,
            id,
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.stddev_ns),
            stats.samples,
            stats.iters_per_sample,
            line_tp
        );
        self.result.benches.push(BenchResult {
            id,
            stats,
            throughput: self.throughput,
        });
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    fn run(&self, f: &mut impl FnMut(&mut Bencher)) -> Stats {
        // Warmup: double the iteration count until the budget is spent,
        // keeping the latest per-iteration estimate.
        let mut iters: u64 = 1;
        let mut spent = Duration::ZERO;
        let per_iter_ns = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            spent += b.elapsed;
            if spent >= self.warm_up {
                break b.elapsed.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(2);
        };

        let sample_budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / per_iter_ns.max(1.0)) as u64).max(1);
        // One discarded sample at the *final* iteration count before the
        // timed window: the calibration loop above runs mostly-short bursts,
        // so the first full-length sample otherwise still pays cold caches,
        // lazy allocations, and frequency ramp-up — measured as ~27% stddev
        // on the engine benches before this existed.
        {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        Stats::from_samples(samples, iters_per_sample)
    }

    /// Seals the group into its harness.
    pub fn finish(self) {
        self.harness.groups.push(self.result);
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`; results are passed through
    /// [`black_box`].
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `1234.5` ns → `"1.23 µs"` etc.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// `1234567.0` → `"1.23 M"` etc. (for throughput labels).
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec < 1e3 {
        format!("{per_sec:.1} ")
    } else if per_sec < 1e6 {
        format!("{:.2} K", per_sec / 1e3)
    } else if per_sec < 1e9 {
        format!("{:.2} M", per_sec / 1e6)
    } else {
        format!("{:.2} G", per_sec / 1e9)
    }
}

/// Resolves the report output directory: `$VCGP_BENCH_DIR`, or
/// `<workspace>/target/vcgp-bench/` (this crate's manifest lives at
/// `<workspace>/crates/testkit`, so the workspace root is two levels up).
pub fn report_dir() -> PathBuf {
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_default();
    std::env::var_os("VCGP_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace.join("target/vcgp-bench"))
}

/// Writes an already-rendered report pair to the standard bench output
/// location as `BENCH_<name>.json` and `BENCH_<name>.md`, creating the
/// directory if needed. Returns `(json_path, md_path)`. This is the emitter
/// [`Harness::finish`] uses, exposed so non-timing report producers (the
/// stress driver's latency reports, sweep summaries, …) land their artifacts
/// beside the timing benches with the same naming convention.
pub fn write_report(name: &str, json: &str, md: &str) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = report_dir();
    std::fs::create_dir_all(&dir)?;
    let json_path = dir.join(format!("BENCH_{name}.json"));
    let md_path = dir.join(format!("BENCH_{name}.md"));
    std::fs::write(&json_path, json)?;
    std::fs::write(&md_path, md)?;
    Ok((json_path, md_path))
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = Stats::from_samples(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0], 3);
        assert!((s.mean_ns - 5.0).abs() < 1e-9);
        assert!((s.median_ns - 4.5).abs() < 1e-9);
        assert!((s.stddev_ns - 2.0).abs() < 1e-9); // classic σ=2 dataset
        assert_eq!(s.min_ns, 2.0);
        assert_eq!(s.max_ns, 9.0);
        assert_eq!(s.samples, 8);
        assert_eq!(s.iters_per_sample, 3);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = Stats::from_samples(vec![42.0], 1);
        assert_eq!(s.stddev_ns, 0.0);
        assert_eq!(s.median_ns, 42.0);
    }

    #[test]
    fn harness_runs_and_emits_json_and_markdown() {
        let mut h = Harness::new("selftest");
        let mut g = h.group("unit");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(100));
        g.bench_function("count_to_1k", |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("count_to", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();

        let json = h.to_json();
        assert!(json.contains("\"harness\": \"selftest\""));
        assert!(json.contains("\"id\": \"count_to_1k\""));
        assert!(json.contains("\"id\": \"count_to/500\""));
        assert!(json.contains("\"throughput\""));
        let md = h.to_markdown();
        assert!(md.contains("| bench | mean |"));
        assert!(md.contains("count_to/500"));
    }

    #[test]
    fn throughput_units_are_honest() {
        // Each variant carries its own unit through JSON and markdown; a
        // superstep-rate bench must never be rendered as "elem/s".
        let mut h = Harness::new("units");
        for (name, tp) in [
            ("steps", Throughput::Supersteps(12)),
            ("msgs", Throughput::Messages(340)),
            ("elems", Throughput::Elements(7)),
        ] {
            let mut g = h.group(name);
            g.sample_size(2)
                .warm_up_time(Duration::from_micros(100))
                .measurement_time(Duration::from_millis(2))
                .throughput(tp);
            g.bench_function("noop", |b| b.iter(|| 1u64));
            g.finish();
        }
        let json = h.to_json();
        assert!(json.contains("\"unit\": \"supersteps\""), "{json}");
        assert!(json.contains("\"unit\": \"messages\""), "{json}");
        assert!(json.contains("\"unit\": \"elements\""), "{json}");
        let md = h.to_markdown();
        assert!(md.contains("steps/s"), "{md}");
        assert!(md.contains("msg/s"), "{md}");
        assert!(md.contains("elem/s"), "{md}");
    }

    #[test]
    fn warmup_discard_runs_before_timed_samples() {
        // The group runs: calibration (≥1 call) + 1 discard at the final
        // iteration count + sample_size timed samples. Verify the discard
        // exists by counting bencher invocations at the final iteration
        // count: sample_size timed + 1 discard.
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let mut h = Harness::new("warmup");
        let mut g = h.group("g");
        // Zero warmup budget: the calibration loop always stops after its
        // first burst, making the total call count deterministic.
        g.sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::from_micros(10));
        g.bench_function("probe", |b| {
            calls.set(calls.get() + 1);
            b.iter(|| 1u64);
        });
        g.finish();
        // 1 calibration burst + 1 discard + 3 timed.
        assert_eq!(calls.get(), 5);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_rate(2_000_000.0), "2.00 M");
    }
}
