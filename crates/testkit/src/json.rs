//! A minimal JSON reader — just enough for report producers (the stress
//! driver, the engine bench) to validate the documents they emit
//! (well-formedness plus field lookups) without an external parser crate.
//!
//! Supports the full JSON grammar except `\u` surrogate pairs are decoded
//! permissively (lone surrogates become U+FFFD). Numbers are read as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                            .map_err(|_| "non-ascii \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise by finding the char boundary).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = r#"{"name":"smoke","ops":120,"errors":0,
                      "latency_ns":{"p50":1200,"p99":9000.5},
                      "tags":["a","b"],"ok":true,"note":null,
                      "text":"he said \"hi\"\n"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("ops").and_then(Value::as_f64), Some(120.0));
        assert_eq!(v.get("errors").and_then(Value::as_f64), Some(0.0));
        let lat = v.get("latency_ns").unwrap();
        assert_eq!(lat.get("p99").and_then(Value::as_f64), Some(9000.5));
        assert_eq!(v.get("text").and_then(Value::as_str), Some("he said \"hi\"\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        let v = parse("[-1.5e3, 0, 42]").unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Number(-1500.0),
                Value::Number(0.0),
                Value::Number(42.0)
            ])
        );
    }
}
