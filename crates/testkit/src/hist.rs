//! A log-bucketed (HDR-style) histogram for latency recording.
//!
//! Values (nanoseconds, operation counts, …) are binned log-linearly: each
//! power-of-two octave is split into `2^SUB_BITS = 128` equal sub-buckets,
//! so any recorded value is represented with at most `1/128 ≈ 0.8 %`
//! relative error while the whole `u64` range fits in a fixed ~58 KiB count
//! array. Recording is O(1) with no allocation, and two histograms recorded
//! on different threads [`merge`](LogHistogram::merge) exactly — the bucket
//! boundaries are value-determined, so merging is element-wise addition and
//! loses no sample. Quantiles walk the cumulative counts and return the
//! *upper edge* of the selected bucket, which makes `quantile` monotone in
//! `q` by construction and never under-reports a tail.

/// Sub-bucket precision: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 7;
/// Buckets per octave (also the width of the initial linear region).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count: the linear region plus one block of `SUB_COUNT`
/// buckets per octave `e ∈ [SUB_BITS, 63]`.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// A mergeable log-linear histogram over `u64` values.
///
/// ```
/// use vcgp_testkit::hist::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [10, 20, 30, 40, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.quantile(0.5), 30);
/// assert!(h.quantile(1.0) >= 1_000_000);
/// ```
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Bucket index for a value: identity in the linear region, log-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // e >= SUB_BITS
        let sub = ((v >> (e - SUB_BITS)) - SUB_COUNT) as usize;
        (((e - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// The largest value mapping to `index` (the bucket's upper edge).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_COUNT as usize {
        index as u64
    } else {
        let e = (index >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (index & (SUB_COUNT as usize - 1)) as u64;
        let width = 1u64 << (e - SUB_BITS);
        (SUB_COUNT + sub) * width + (width - 1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128 * n as u128;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact, not bucketed; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper edge of the first
    /// bucket whose cumulative count reaches `⌈q · count⌉` (clamped to at
    /// least the first sample). Returns 0 for an empty histogram; `q` is
    /// clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the true extremes.
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`. Bucket boundaries are
    /// value-determined, so the merge is exact: the result is identical to
    /// having recorded both sample streams into one histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Forgets every recorded sample, keeping the bucket allocation — the
    /// reset long-lived recorders (e.g. the stress service's per-executor
    /// interval logs) use to scope themselves to one run without
    /// reallocating ~58 KiB of counts per reset.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }

    /// Iterates non-empty buckets as `(upper_edge, count)` in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        for v in 0..SUB_COUNT {
            let q = (v + 1) as f64 / SUB_COUNT as f64;
            assert_eq!(h.quantile(q), v, "quantile({q})");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_COUNT - 1);
    }

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every probed value must land in a bucket whose upper edge is >= it
        // and within the relative error bound.
        for shift in 0..63 {
            for delta in [0u64, 1, 3] {
                let v = (1u64 << shift) + delta;
                let i = bucket_index(v);
                let upper = bucket_upper(i);
                assert!(upper >= v, "v={v} i={i} upper={upper}");
                // Relative error at most 1/SUB_COUNT.
                assert!(
                    (upper - v) as f64 <= (v as f64 / SUB_COUNT as f64) + 1.0,
                    "v={v} upper={upper}"
                );
            }
        }
    }

    #[test]
    fn bucket_upper_is_strictly_monotone() {
        let mut prev = bucket_upper(0);
        for i in 1..NUM_BUCKETS {
            let u = bucket_upper(i);
            assert!(u > prev, "index {i}: {u} <= {prev}");
            prev = u;
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 11).collect();
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn clear_resets_to_the_empty_state() {
        let mut h = LogHistogram::new();
        for v in [3u64, 900, 1 << 40] {
            h.record(v);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        // And it keeps working after the reset.
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 42);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
    }
}
