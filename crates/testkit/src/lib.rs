//! `vcgp-testkit` — in-tree property testing and bench timing.
//!
//! The workspace has a zero-external-dependency policy: benchmark inputs and
//! test streams must be reproducible across platforms and toolchains, and the
//! build must succeed offline from an empty cargo registry (see
//! `crates/graph/src/rng.rs` for the original rationale). This crate extends
//! that policy to the correctness tooling itself:
//!
//! * [`prop`] — a minimal property-testing framework: [`prop::Strategy`]
//!   driven by the workspace's own `SplitMix64`, combinators (`prop_map`,
//!   tuples, integer ranges, [`prop::any_u64`]), a configurable case count,
//!   greedy input shrinking on failure, and the [`vcgp_props!`] macro whose
//!   failure reports include a seed that replays the counterexample.
//! * [`bench`] — a criterion-style timing harness: warmup, fixed-iteration
//!   sampling, mean/median/stddev, throughput labels, and JSON + markdown
//!   emitters (`BENCH_<name>.json` / `BENCH_<name>.md`) that other report
//!   producers reuse via [`bench::write_report`].
//! * [`hist`] — a log-bucketed (HDR-style) mergeable histogram for latency
//!   recording, used by the `vcgp-stress` workload driver.
//! * [`json`] — a minimal JSON reader, so bench binaries and the stress
//!   driver can validate the reports they emit without an external parser.
//!
//! All modules use only `std` plus `vcgp-graph`'s deterministic RNG.

pub mod bench;
pub mod hist;
pub mod json;
pub mod prop;

pub use hist::LogHistogram;
pub use prop::{any_u64, Config, Strategy};
