//! Integration + property tests for the result cache: memoized answers are
//! bit-identical to cold computation (the ISSUE's acceptance property),
//! replays actually hit, eviction respects the configured capacity, and
//! invalidation restores miss behavior.

use std::sync::Arc;
use std::time::Duration;
use vcgp_core::service::{gather_mode, run_workload, GatherMode};
use vcgp_core::Workload;
use vcgp_graph::{generators, Graph};
use vcgp_pregel::partition::Partitioning;
use vcgp_pregel::PregelConfig;
use vcgp_stress::request::{QueryKind, QueryOutput, QueryRequest};
use vcgp_stress::service::{GraphService, ServiceConfig};
use vcgp_stress::shard::ShardedGraphService;
use vcgp_testkit::prop::Source;
use vcgp_testkit::{prop_assert, vcgp_props};

fn config_for(strategy: Partitioning, cache_capacity: usize) -> ServiceConfig {
    let mut engine = PregelConfig::single_worker();
    engine.partitioning = strategy;
    ServiceConfig {
        executors: 2,
        engine,
        cache_capacity,
        ..ServiceConfig::default()
    }
}

/// Every Table 1 workload this graph supports that is gather-mergeable
/// (scatters when sharded), i.e. everything the cache memoizes as legs.
fn mergeable_workloads(graph: &Graph) -> Vec<Workload> {
    Workload::ALL
        .into_iter()
        .filter(|&w| vcgp_core::service::supported(w, graph).is_ok())
        .filter(|&w| gather_mode(w) != GatherMode::Whole)
        .collect()
}

vcgp_props! {
    #![cases(6)]

    // The acceptance property: for every gather-mergeable workload, both
    // partitioning strategies, and S ∈ {1, 2, 4}, submitting the same
    // request twice yields the cold `run_workload` answer both times —
    // bit-identical answer AND superstep count — and the second submission
    // is served from the cache (hit counters advance; the fresh/cached
    // merge is invisible in the payload).
    fn cached_answers_bit_identical_to_uncached(
        graph_seed in 0u64..1_000,
        req_seed in 0u64..1_000_000,
        directed in 0u64..2,
    ) {
        let mut src = Source::new(graph_seed ^ 0x4341_4348); // "CACH"
        let n = 8 + src.next_below(17) as usize;
        let m = n + src.next_below(2 * n as u64) as usize;
        let graph = Arc::new(if directed == 0 {
            generators::gnm_connected(n, m, graph_seed)
        } else {
            generators::labeled_digraph(n, m, 3, graph_seed)
        });
        let workloads = mergeable_workloads(&graph);
        prop_assert!(!workloads.is_empty(), "graph supports no mergeable workloads");

        for strategy in [Partitioning::Hash, Partitioning::Range] {
            let config = config_for(strategy, 256);
            for shards in [1usize, 2, 4] {
                let service =
                    ShardedGraphService::start(Arc::clone(&graph), config.clone(), shards);
                for (i, &w) in workloads.iter().enumerate() {
                    let expected = run_workload(w, &graph, &config.engine, req_seed)
                        .expect("workload passed the supported() filter");
                    let cold_hits = service.stats().cache_hits;
                    for round in 0..2 {
                        let req = QueryRequest::new(
                            (i as u64) * 2 + round,
                            QueryKind::Workload(w),
                        )
                        .with_seed(req_seed);
                        let resp = service.submit(req).expect("service open").wait();
                        match resp.result {
                            Ok(QueryOutput::Workload { answer, supersteps, .. }) => {
                                prop_assert!(
                                    answer == expected.answer,
                                    "{w:?} S={shards} {strategy:?} round {round}: \
                                     answer {answer} != {}",
                                    expected.answer
                                );
                                prop_assert!(
                                    supersteps == expected.stats.supersteps(),
                                    "{w:?} S={shards} {strategy:?} round {round}: \
                                     supersteps {supersteps} != {}",
                                    expected.stats.supersteps()
                                );
                            }
                            ref other => {
                                prop_assert!(
                                    false,
                                    "{w:?} S={shards} {strategy:?} round {round}: \
                                     unexpected {other:?}"
                                );
                            }
                        }
                    }
                    // The replay hit on every shard leg it scattered to
                    // (or on the whole answer when S = 1).
                    let hits = service.stats().cache_hits - cold_hits;
                    prop_assert!(
                        hits >= 1,
                        "{w:?} S={shards} {strategy:?}: replay did not hit the cache"
                    );
                }
                service.shutdown();
            }
        }
    }
}

#[test]
fn single_instance_replay_hits_without_executing() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 3));
    let config = config_for(Partitioning::Hash, 64);
    let service = GraphService::start(Arc::clone(&graph), config);
    let req = |id: u64| {
        QueryRequest::new(id, QueryKind::Workload(Workload::CcHashMin)).with_seed(42)
    };
    let cold = service.submit(req(1)).unwrap().wait();
    let warm = service.submit(req(2)).unwrap().wait();
    assert_eq!(cold.result, warm.result, "memoized answer differs");
    assert!(cold.attempts >= 1, "cold run executed");
    assert_eq!(warm.attempts, 0, "warm run never touched an executor");
    assert_eq!(warm.service_time, Duration::ZERO);
    let stats = service.shutdown();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_insertions, 1);
    assert!(stats.cache_bytes > 0, "resident gauge reflects the entry");
}

#[test]
fn distinct_seeds_are_distinct_entries() {
    // The key includes the request seed: seed-parameterized workloads must
    // not alias (and seed-independent ones simply occupy more entries —
    // correctness over cleverness).
    let graph = Arc::new(generators::gnm_connected(24, 60, 5));
    let service = GraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash, 64));
    for (id, seed) in [(1u64, 7u64), (2, 8), (3, 7)] {
        let resp = service
            .submit(QueryRequest::new(id, QueryKind::Workload(Workload::Sssp)).with_seed(seed))
            .unwrap()
            .wait();
        assert!(resp.is_ok(), "sssp failed: {:?}", resp.result);
    }
    let stats = service.shutdown();
    assert_eq!(stats.cache_misses, 2, "seeds 7 and 8 are separate entries");
    assert_eq!(stats.cache_hits, 1, "the third request replays seed 7");
}

#[test]
fn eviction_respects_the_configured_capacity() {
    let graph = Arc::new(generators::gnm_connected(24, 60, 5));
    let capacity = 2usize;
    let service =
        GraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash, capacity));
    // Five distinct keys (same workload, distinct seeds) through a
    // two-entry cache: every one misses, every one is inserted, and the
    // overflow is evicted deterministically.
    for seed in 0..5u64 {
        let resp = service
            .submit(QueryRequest::new(seed, QueryKind::Workload(Workload::Sssp)).with_seed(seed))
            .unwrap()
            .wait();
        assert!(resp.is_ok());
    }
    let stats = service.shutdown();
    assert_eq!(stats.cache_misses, 5);
    assert_eq!(stats.cache_insertions, 5);
    assert_eq!(
        stats.cache_evictions,
        5 - capacity as u64,
        "exactly the overflow beyond capacity was evicted"
    );
}

#[test]
fn invalidate_empties_the_cache_and_restores_misses() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 3));
    let service = GraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash, 64));
    let req = |id: u64| {
        QueryRequest::new(id, QueryKind::Workload(Workload::PageRank)).with_seed(9)
    };
    assert!(service.submit(req(1)).unwrap().wait().is_ok());
    assert!(service.submit(req(2)).unwrap().wait().is_ok());
    assert_eq!(service.stats().cache_hits, 1);
    assert!(service.stats().cache_bytes > 0);

    // The graph-swap / re-shard hook: after invalidation the same request
    // misses (and recomputes) again.
    service.invalidate_cache();
    assert_eq!(service.stats().cache_bytes, 0, "nothing resident after invalidation");
    assert!(service.submit(req(3)).unwrap().wait().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.cache_hits, 1, "no new hits after invalidation");
    assert_eq!(stats.cache_misses, 2, "the post-invalidation request missed");
}

#[test]
fn sharded_invalidate_clears_every_shard() {
    let graph = Arc::new(generators::gnm_connected(40, 100, 7));
    let service =
        ShardedGraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash, 64), 4);
    let resp = service
        .submit(QueryRequest::new(1, QueryKind::Workload(Workload::CcHashMin)).with_seed(5))
        .unwrap()
        .wait();
    assert!(resp.is_ok());
    assert!(service.stats().cache_bytes > 0, "legs cached on the shards");
    service.invalidate_cache();
    assert_eq!(service.stats().cache_bytes, 0);
    let stats = service.shutdown();
    assert_eq!(stats.cache_hits, 0);
}

#[test]
fn cache_off_never_hits() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 3));
    let service = GraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash, 0));
    let req = |id: u64| {
        QueryRequest::new(id, QueryKind::Workload(Workload::CcHashMin)).with_seed(42)
    };
    let a = service.submit(req(1)).unwrap().wait();
    let b = service.submit(req(2)).unwrap().wait();
    assert_eq!(a.result, b.result, "determinism does not need the cache");
    assert!(b.attempts >= 1, "second run executed for real");
    let stats = service.shutdown();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0, "disabled cache counts nothing");
    assert_eq!(stats.cache_bytes, 0);
}
