//! Integration tests of the graph-query service and the load driver:
//! correctness of point lookups and workload answers, seeded
//! reproducibility, the timeout/retry/backoff path, panic containment,
//! deadlines, and graceful draining shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vcgp_core::Workload;
use vcgp_graph::generators;
use vcgp_stress::driver::{self, DriverConfig};
use vcgp_stress::json;
use vcgp_stress::mix::Mix;
use vcgp_stress::request::{QueryError, QueryKind, QueryOutput, QueryRequest};
use vcgp_stress::service::{GraphService, ServiceConfig, SubmitError};

fn service_on(graph: vcgp_graph::Graph, executors: usize) -> GraphService {
    GraphService::start(
        Arc::new(graph),
        ServiceConfig {
            executors,
            ..ServiceConfig::default()
        },
    )
}

#[test]
fn point_lookups_match_the_graph() {
    let g = generators::gnm_connected(48, 96, 11);
    let expected: Vec<(usize, Vec<u32>)> = (0..48u32)
        .map(|v| (g.out_degree(v), g.out_neighbors(v).to_vec()))
        .collect();
    let service = service_on(g, 2);
    for v in 0..48u32 {
        let deg = service
            .submit(QueryRequest::new(u64::from(v) * 2, QueryKind::Degree(v)))
            .unwrap()
            .wait();
        assert_eq!(deg.result, Ok(QueryOutput::Degree(expected[v as usize].0)));
        let nbrs = service
            .submit(QueryRequest::new(u64::from(v) * 2 + 1, QueryKind::Neighbors(v)))
            .unwrap()
            .wait();
        assert_eq!(
            nbrs.result,
            Ok(QueryOutput::Neighbors(expected[v as usize].1.clone()))
        );
    }
    let missing = service
        .submit(QueryRequest::new(999, QueryKind::Degree(1000)))
        .unwrap()
        .wait();
    assert_eq!(missing.result, Err(QueryError::NoSuchVertex(1000)));
    let stats = service.shutdown();
    assert_eq!(stats.completed, 96);
    assert_eq!(stats.failed, 1);
}

#[test]
fn workload_queries_run_end_to_end() {
    let service = service_on(generators::gnm_connected(40, 80, 3), 1);
    let resp = service
        .submit(QueryRequest::new(1, QueryKind::Workload(Workload::CcHashMin)))
        .unwrap()
        .wait();
    match resp.result {
        Ok(QueryOutput::Workload {
            answer, supersteps, ..
        }) => {
            assert_eq!(answer, 1, "connected graph has one component");
            assert!(supersteps > 0);
        }
        other => panic!("unexpected result: {other:?}"),
    }
    // A workload whose precondition fails is rejected, not retried.
    let resp = service
        .submit(QueryRequest::new(2, QueryKind::Workload(Workload::Wcc)))
        .unwrap()
        .wait();
    assert!(matches!(resp.result, Err(QueryError::Unsupported(_))));
    assert_eq!(resp.attempts, 1, "precondition failures must not retry");
    service.shutdown();
}

#[test]
fn same_seed_reproduces_the_exact_operation_sequence() {
    let g = generators::gnm_connected(64, 128, 5);
    let mix = Mix::preset("mixed", &g).unwrap();
    let first: Vec<QueryKind> = (0..500).map(|i| mix.op(42, i)).collect();
    let second: Vec<QueryKind> = (0..500).map(|i| mix.op(42, i)).collect();
    assert_eq!(first, second);
    // A fresh Mix over the same graph replays the same sequence too — the
    // stream depends only on (seed, index, graph shape).
    let remade = Mix::preset("mixed", &g).unwrap();
    let third: Vec<QueryKind> = (0..500).map(|i| remade.op(42, i)).collect();
    assert_eq!(first, third);
    assert_ne!(
        first,
        (0..500).map(|i| mix.op(43, i)).collect::<Vec<_>>(),
        "different seed, different sequence"
    );
}

#[test]
fn slow_requests_retry_with_backoff_then_time_out() {
    let service = GraphService::start(
        Arc::new(generators::path(4)),
        ServiceConfig {
            executors: 1,
            max_attempts: 3,
            backoff_base: Duration::from_millis(4),
            backoff_cap: Duration::from_millis(20),
            ..ServiceConfig::default()
        },
    );
    let slow = QueryRequest::new(7, QueryKind::DebugSleep(Duration::from_millis(12)))
        .with_timeout(Duration::from_millis(1));
    let t0 = Instant::now();
    let resp = service.submit(slow).unwrap().wait();
    let wall = t0.elapsed();
    assert_eq!(resp.result, Err(QueryError::Timeout { attempts: 3 }));
    assert_eq!(resp.attempts, 3, "attempts must be bounded by max_attempts");
    assert_eq!(resp.retries(), 2);
    assert!(
        resp.service_time >= Duration::from_millis(36),
        "three attempts of >=12ms each, got {:?}",
        resp.service_time
    );
    assert!(
        resp.backoff >= Duration::from_millis(4),
        "exponential backoff must actually pause, got {:?}",
        resp.backoff
    );
    assert!(wall >= resp.service_time + resp.backoff);
    let stats = service.shutdown();
    assert_eq!(stats.timeouts, 3);
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.failed, 1);
}

#[test]
fn retry_jitter_is_deterministic_per_request() {
    // Two services with the same seed give the identical backoff schedule
    // for the same request id; a different service seed changes it.
    let run_with = |seed: u64| -> Duration {
        let service = GraphService::start(
            Arc::new(generators::path(4)),
            ServiceConfig {
                executors: 1,
                max_attempts: 4,
                backoff_base: Duration::from_millis(3),
                backoff_cap: Duration::from_millis(50),
                seed,
                ..ServiceConfig::default()
            },
        );
        let req = QueryRequest::new(99, QueryKind::DebugSleep(Duration::from_millis(2)))
            .with_timeout(Duration::ZERO);
        let resp = service.submit(req).unwrap().wait();
        service.shutdown();
        resp.backoff
    };
    assert_eq!(run_with(1), run_with(1));
    assert_ne!(run_with(1), run_with(2));
}

#[test]
fn panics_are_contained_per_request() {
    let service = service_on(generators::path(8), 1);
    let resp = service
        .submit(QueryRequest::new(1, QueryKind::DebugPanic))
        .unwrap()
        .wait();
    match resp.result {
        Err(QueryError::Panicked(msg)) => {
            assert!(msg.contains("debug panic"), "unexpected payload: {msg:?}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The executor survived: the next request is answered normally.
    let resp = service
        .submit(QueryRequest::new(2, QueryKind::Degree(0)))
        .unwrap()
        .wait();
    assert_eq!(resp.result, Ok(QueryOutput::Degree(1)));
    let stats = service.shutdown();
    assert_eq!(stats.panics, 1);
}

#[test]
fn expired_deadlines_fail_fast() {
    let service = service_on(generators::path(8), 1);
    let req = QueryRequest::new(5, QueryKind::DebugSleep(Duration::from_millis(50)))
        .with_deadline(Instant::now() - Duration::from_millis(1));
    let resp = service.submit(req).unwrap().wait();
    assert_eq!(resp.result, Err(QueryError::DeadlineExceeded));
    assert_eq!(resp.attempts, 0, "expired requests must not consume an attempt");
    service.shutdown();
}

#[test]
fn graceful_shutdown_loses_no_accepted_request() {
    let service = GraphService::start(
        Arc::new(generators::path(8)),
        ServiceConfig {
            executors: 2,
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = (0..40u64)
        .map(|i| {
            service
                .submit(QueryRequest::new(
                    i,
                    QueryKind::DebugSleep(Duration::from_millis(1)),
                ))
                .unwrap()
        })
        .collect();
    // Close immediately: most requests are still queued. They must all be
    // drained and answered anyway.
    service.close();
    assert!(matches!(
        service.submit(QueryRequest::new(999, QueryKind::Degree(0))),
        Err(SubmitError::Closed)
    ));
    let stats = service.shutdown();
    assert_eq!(stats.completed, 40, "every accepted request gets an answer");
    for t in tickets {
        let resp = t.wait();
        assert_eq!(resp.result, Ok(QueryOutput::Slept));
    }
}

#[test]
fn driver_runs_a_deterministic_bounded_load() {
    let g = generators::gnm_connected(64, 160, 9);
    let service = service_on(g, 2);
    let mix = Mix::preset("mixed", service.graph()).unwrap();
    let cfg = DriverConfig {
        clients: 3,
        duration: Duration::from_secs(60), // ops_limit ends the run
        ops_limit: Some(80),
        rate: None,
        seed: 21,
        ..DriverConfig::default()
    };
    let report = driver::run(&service, &mix, &cfg);
    service.shutdown();
    assert_eq!(report.ops, 80);
    assert_eq!(report.ok, 80);
    assert_eq!(report.errors, 0);
    assert_eq!(report.latency.count(), 80);
    assert_eq!(report.service_time.count(), 80);
    assert!(report.throughput() > 0.0);

    // The emitted JSON parses with the in-tree reader and carries the gate
    // fields verify.sh checks.
    let doc = json::parse(&report.to_json("test")).expect("report must be valid JSON");
    assert_eq!(doc.get("ops").and_then(json::Value::as_f64), Some(80.0));
    assert_eq!(doc.get("errors").and_then(json::Value::as_f64), Some(0.0));
    assert!(doc.get("latency_ns").and_then(|h| h.get("p99")).is_some());
    assert!(!report.to_markdown("test").is_empty());
}

#[test]
fn driver_paced_run_respects_the_token_bucket() {
    let service = service_on(generators::gnm_connected(32, 64, 2), 2);
    let mix = Mix::preset("points", service.graph()).unwrap();
    let cfg = DriverConfig {
        clients: 2,
        duration: Duration::from_secs(30),
        ops_limit: Some(50),
        rate: Some(2000.0),
        burst: 4,
        seed: 3,
        ..DriverConfig::default()
    };
    let t0 = Instant::now();
    let report = driver::run(&service, &mix, &cfg);
    service.shutdown();
    assert_eq!(report.ops, 50);
    assert_eq!(report.errors, 0);
    // 50 ops at 2000/s with burst 4 need at least ~23 ms of schedule.
    assert!(
        t0.elapsed() >= Duration::from_millis(20),
        "pacing must actually throttle, finished in {:?}",
        t0.elapsed()
    );
}
