//! Property tests for the token-bucket limiter and the operation mix.
//!
//! The limiter is a pure state machine over caller-supplied timestamps, so
//! the properties replay deterministic synthetic arrival sequences — no
//! real clock, no flakiness.

use vcgp_graph::generators;
use vcgp_stress::mix::Mix;
use vcgp_stress::rate::TokenBucket;
use vcgp_testkit::prop::Source;
use vcgp_testkit::{prop_assert, prop_assert_eq, vcgp_props};

/// A seeded non-decreasing arrival sequence with mixed gap scales
/// (back-to-back bursts, sub-increment gaps, long idles).
fn draw_arrivals(src_seed: u64, count: usize, max_gap_ns: u64) -> Vec<u64> {
    let mut src = Source::new(src_seed);
    let mut t = 0u64;
    (0..count)
        .map(|_| {
            let gap = match src.next_below(4) {
                0 => 0,
                1 => src.next_below(1_000),
                2 => src.next_below(max_gap_ns / 4 + 1),
                _ => src.next_below(max_gap_ns + 1),
            };
            t = t.saturating_add(gap);
            t
        })
        .collect()
}

vcgp_props! {
    #![cases(48)]

    fn token_bucket_never_exceeds_rate_over_any_window(
        seed in 0u64..1_000_000,
        rate_hz in 1u64..100_000,
        burst in 1u32..8,
    ) {
        let mut tb = TokenBucket::new(rate_hz as f64, burst);
        let inc = tb.increment_ns();
        let tol = inc * u64::from(burst - 1);
        let arrivals = draw_arrivals(seed, 300, inc * 4);
        let admitted: Vec<u64> = arrivals
            .iter()
            .filter(|&&t| tb.try_acquire(t).is_ok())
            .copied()
            .collect();
        // GCRA admission bound: any window (a_i, a_j] of admitted arrivals
        // holds at most (elapsed + tolerance)/increment + 1 admissions,
        // i.e. rate·elapsed + burst.
        for i in 0..admitted.len() {
            for j in (i + 1)..admitted.len() {
                let in_window = (j - i) as u64;
                let elapsed = admitted[j] - admitted[i];
                let bound = (elapsed + tol) / inc + 1;
                prop_assert!(
                    in_window <= bound,
                    "window [{i},{j}]: {in_window} admitted, bound {bound} \
                     (elapsed {elapsed} ns, inc {inc}, burst {burst})"
                );
            }
        }
    }

    fn token_bucket_decisions_are_deterministic(
        seed in 0u64..1_000_000,
        rate_hz in 1u64..100_000,
        burst in 1u32..8,
    ) {
        let arrivals = draw_arrivals(seed, 200, 10_000_000);
        let mut a = TokenBucket::new(rate_hz as f64, burst);
        let mut b = TokenBucket::new(rate_hz as f64, burst);
        for &t in &arrivals {
            prop_assert_eq!(a.try_acquire(t), b.try_acquire(t));
            prop_assert_eq!(a.next_conforming_ns(), b.next_conforming_ns());
        }
    }

    fn token_bucket_wait_hint_admits_exactly_on_time(
        seed in 0u64..1_000_000,
        rate_hz in 1u64..10_000,
    ) {
        let mut tb = TokenBucket::new(rate_hz as f64, 1);
        let mut src = Source::new(seed);
        let mut now = 0u64;
        for _ in 0..100 {
            now = now.saturating_add(src.next_below(tb.increment_ns() * 2));
            match tb.try_acquire(now) {
                Ok(()) => {}
                Err(wait) => {
                    // Waiting exactly the hinted time must succeed.
                    now += wait;
                    prop_assert_eq!(tb.try_acquire(now), Ok(()));
                }
            }
        }
    }

    fn mix_operation_stream_is_reproducible(
        seed in 0u64..1_000_000,
        graph_seed in 0u64..1_000,
    ) {
        let g = generators::gnm_connected(32, 64, graph_seed);
        let mix = Mix::preset("mixed", &g).unwrap();
        for i in 0..100u64 {
            prop_assert_eq!(mix.op(seed, i), mix.op(seed, i));
        }
        let replay = Mix::preset("mixed", &g).unwrap();
        for i in 0..100u64 {
            prop_assert_eq!(mix.op(seed, i), replay.op(seed, i));
        }
    }
}
