//! Integration + property tests for the sharded service: scatter/gather
//! equivalence with the unsharded service, owner routing, the primary-shard
//! fall-back, admission control, and deadline early drops.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vcgp_core::service::{gather_mode, run_workload, GatherMode};
use vcgp_core::Workload;
use vcgp_graph::{generators, Graph, VertexId};
use vcgp_pregel::partition::Partitioning;
use vcgp_pregel::PregelConfig;
use vcgp_stress::request::{QueryError, QueryKind, QueryOutput, QueryRequest, Route};
use vcgp_stress::service::{GraphService, QueueFullPolicy, ServiceConfig};
use vcgp_stress::shard::ShardedGraphService;
use vcgp_testkit::prop::Source;
use vcgp_testkit::{prop_assert, vcgp_props};

fn config_for(strategy: Partitioning) -> ServiceConfig {
    let mut engine = PregelConfig::single_worker();
    engine.partitioning = strategy;
    ServiceConfig {
        executors: 2,
        engine,
        ..ServiceConfig::default()
    }
}

/// Every Table 1 workload that this graph supports and that is
/// gather-mergeable (scatters instead of falling back to the primary).
fn mergeable_workloads(graph: &Graph) -> Vec<Workload> {
    Workload::ALL
        .into_iter()
        .filter(|&w| vcgp_core::service::supported(w, graph).is_ok())
        .filter(|&w| gather_mode(w) != GatherMode::Whole)
        .collect()
}

vcgp_props! {
    #![cases(8)]

    // The acceptance property: for every gather-mergeable workload, both
    // partitioning strategies, and S ∈ {1, 2, 4}, the sharded service's
    // scatter/gather answer (and superstep count) is identical to running
    // the workload unsharded with the same engine config and seed.
    fn sharded_scatter_gather_equals_unsharded(
        graph_seed in 0u64..1_000,
        req_seed in 0u64..1_000_000,
        directed in 0u64..2,
    ) {
        let mut src = Source::new(graph_seed ^ 0x5348_4152);
        let n = 8 + src.next_below(17) as usize;
        let m = n + src.next_below(2 * n as u64) as usize;
        let graph = Arc::new(if directed == 0 {
            generators::gnm_connected(n, m, graph_seed)
        } else {
            generators::labeled_digraph(n, m, 3, graph_seed)
        });
        let workloads = mergeable_workloads(&graph);
        prop_assert!(!workloads.is_empty(), "graph supports no mergeable workloads");

        for strategy in [Partitioning::Hash, Partitioning::Range] {
            let config = config_for(strategy);
            for shards in [1usize, 2, 4] {
                let service =
                    ShardedGraphService::start(Arc::clone(&graph), config.clone(), shards);
                for (i, &w) in workloads.iter().enumerate() {
                    let expected = run_workload(w, &graph, &config.engine, req_seed)
                        .expect("workload passed the supported() filter");
                    let req = QueryRequest::new(i as u64, QueryKind::Workload(w))
                        .with_seed(req_seed);
                    let resp = service.submit(req).expect("service open").wait();
                    match resp.result {
                        Ok(QueryOutput::Workload { answer, supersteps, .. }) => {
                            prop_assert!(
                                answer == expected.answer,
                                "{w:?} S={shards} {strategy:?}: answer {answer} != {}",
                                expected.answer
                            );
                            prop_assert!(
                                supersteps == expected.stats.supersteps(),
                                "{w:?} S={shards} {strategy:?}: supersteps {supersteps} != {}",
                                expected.stats.supersteps()
                            );
                        }
                        ref other => {
                            prop_assert!(
                                false,
                                "{w:?} S={shards} {strategy:?}: unexpected {other:?}"
                            );
                        }
                    }
                    if shards > 1 {
                        prop_assert!(
                            resp.route == Route::Scattered { shards: shards as u32 },
                            "{w:?} should scatter, got {:?}",
                            resp.route
                        );
                    }
                }
                service.shutdown();
            }
        }
    }
}

#[test]
fn point_lookups_are_owner_routed_and_exact() {
    let graph = Arc::new(generators::gnm_connected(64, 160, 3));
    for strategy in [Partitioning::Hash, Partitioning::Range] {
        let service = ShardedGraphService::start(Arc::clone(&graph), config_for(strategy), 4);
        for v in 0..graph.num_vertices() as VertexId {
            let deg = service
                .submit(QueryRequest::new(u64::from(v), QueryKind::Degree(v)))
                .unwrap()
                .wait();
            assert_eq!(
                deg.route,
                Route::Routed { shard: service.owner(v) as u32, replica: 0 },
                "v={v} routed to its owner"
            );
            assert_eq!(
                deg.result,
                Ok(QueryOutput::Degree(graph.out_degree(v))),
                "v={v} degree from the shard slice"
            );
            let nbrs = service
                .submit(QueryRequest::new(1000 + u64::from(v), QueryKind::Neighbors(v)))
                .unwrap()
                .wait();
            assert_eq!(
                nbrs.result,
                Ok(QueryOutput::Neighbors(graph.out_neighbors(v).to_vec())),
                "v={v} neighbors from the shard slice"
            );
        }
        // Out-of-range ids still route somewhere and answer NoSuchVertex.
        let miss = service
            .submit(QueryRequest::new(9999, QueryKind::Degree(10_000)))
            .unwrap()
            .wait();
        assert_eq!(miss.result, Err(QueryError::NoSuchVertex(10_000)));
        // Only owner-routed work: nothing scattered, every shard that owns
        // vertices completed something.
        let snaps = service.shard_snapshots();
        assert_eq!(snaps.len(), 4);
        for s in &snaps {
            assert!(s.owned > 0, "shard {} owns vertices", s.shard);
            assert!(s.stats.completed > 0, "shard {} served lookups", s.shard);
        }
        service.shutdown();
    }
}

#[test]
fn non_mergeable_workload_falls_back_to_primary_shard() {
    let graph = Arc::new(generators::gnm_connected(24, 60, 9));
    assert_eq!(gather_mode(Workload::Bcc), GatherMode::Whole);
    let config = config_for(Partitioning::Hash);
    let expected = run_workload(Workload::Bcc, &graph, &config.engine, 42).unwrap();
    let service = ShardedGraphService::start(Arc::clone(&graph), config, 4);
    let resp = service
        .submit(QueryRequest::new(1, QueryKind::Workload(Workload::Bcc)).with_seed(42))
        .unwrap()
        .wait();
    // Routed whole to the primary, not scattered — and still exact.
    assert_eq!(resp.route, Route::Routed { shard: 0, replica: 0 });
    match resp.result {
        Ok(QueryOutput::Workload { answer, .. }) => assert_eq!(answer, expected.answer),
        other => panic!("unexpected: {other:?}"),
    }
    let snaps = service.shard_snapshots();
    assert_eq!(snaps[0].stats.completed, 1, "primary ran the fall-back");
    for s in &snaps[1..] {
        assert_eq!(s.stats.completed, 0, "shard {} stayed idle", s.shard);
    }
    service.shutdown();
}

#[test]
fn reject_policy_sheds_when_queue_is_full() {
    let graph = Arc::new(generators::gnm_connected(8, 10, 1));
    let service = GraphService::start(
        Arc::clone(&graph),
        ServiceConfig {
            executors: 1,
            queue_capacity: 1,
            queue_policy: QueueFullPolicy::Reject,
            ..ServiceConfig::default()
        },
    );
    // Occupy the executor, give it time to dequeue, then fill the queue.
    let busy = service
        .submit(QueryRequest::new(1, QueryKind::DebugSleep(Duration::from_millis(300))))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let queued = service
        .submit(QueryRequest::new(2, QueryKind::DebugSleep(Duration::from_millis(1))))
        .unwrap();
    // Queue is now at capacity: the reject policy sheds instead of blocking.
    let shed = service
        .submit(QueryRequest::new(3, QueryKind::Degree(0)))
        .unwrap();
    let resp = shed.wait();
    assert_eq!(resp.result, Err(QueryError::Rejected));
    assert_eq!(resp.attempts, 0, "rejected before any attempt");
    assert!(busy.wait().is_ok());
    assert!(queued.wait().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.failed, 1, "the reject is the only failure");
    assert_eq!(stats.completed, 2);
}

#[test]
fn expired_deadline_is_dropped_at_dequeue_without_running() {
    let graph = Arc::new(generators::gnm_connected(8, 10, 1));
    let service = GraphService::start(
        Arc::clone(&graph),
        ServiceConfig {
            executors: 1,
            ..ServiceConfig::default()
        },
    );
    // A deadline of "now" is already expired by the time an executor
    // dequeues the request.
    let resp = service
        .submit(
            QueryRequest::new(1, QueryKind::Degree(0)).with_deadline(Instant::now()),
        )
        .unwrap()
        .wait();
    assert_eq!(resp.result, Err(QueryError::DeadlineExceeded));
    assert_eq!(resp.attempts, 0, "never ran");
    assert_eq!(resp.service_time, Duration::ZERO);
    let stats = service.shutdown();
    assert_eq!(stats.early_drops, 1);
    assert_eq!(stats.timeouts, 0, "early drops are not timeouts");
}

#[test]
fn queue_high_water_mark_tracks_depth() {
    let graph = Arc::new(generators::gnm_connected(8, 10, 1));
    let service = GraphService::start(
        Arc::clone(&graph),
        ServiceConfig {
            executors: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    // Hold the executor so submissions pile up.
    let tickets: Vec<_> = (0..5)
        .map(|i| {
            service
                .submit(QueryRequest::new(i, QueryKind::DebugSleep(Duration::from_millis(50))))
                .unwrap()
        })
        .collect();
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    let stats = service.shutdown();
    // The executor held one job while at least some of the rest queued.
    assert!(stats.queue_hwm >= 2, "hwm {} should reflect queueing", stats.queue_hwm);
    assert!(stats.queue_hwm <= 5);
}

#[test]
fn sharded_stats_fold_across_shards() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 5));
    let service = ShardedGraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash), 2);
    for v in 0..8u32 {
        assert!(service
            .submit(QueryRequest::new(u64::from(v), QueryKind::Degree(v)))
            .unwrap()
            .wait()
            .is_ok());
    }
    let folded = service.stats();
    let snaps = service.shard_snapshots();
    assert_eq!(folded.completed, snaps.iter().map(|s| s.stats.completed).sum::<u64>());
    assert_eq!(folded.completed, 8);
    assert_eq!(
        snaps.iter().map(|s| s.owned).sum::<usize>(),
        graph.num_vertices(),
        "ownership partitions the vertex set"
    );
    let total = service.shutdown();
    assert_eq!(total.completed, 8);
}
