//! End-to-end tests for the scenario engine: determinism of the seeded
//! op/key streams regardless of client-thread count, the interval-log
//! fold identities the reports are gated on, the preset → scenario
//! desugaring equivalence, and the checked-in example specs staying
//! parseable.

use std::sync::Arc;
use std::time::Duration;
use vcgp_graph::generators;
use vcgp_stress::driver::{self, DriverConfig, StressReport};
use vcgp_stress::epoch::MutationConfig;
use vcgp_stress::mix::Mix;
use vcgp_stress::scenario::{Scenario, ScenarioSpec};
use vcgp_stress::service::{GraphService, ServiceConfig};
use vcgp_stress::shard::ShardedGraphService;

/// An ops-bound two-phase spec exercising every op family: zipfian and
/// sequential point keys, pooled analytics, a named workload, and writes.
const SPEC: &str = "
scenario engine-test
interval 100
seed 21
mutation-seed 5

phase first
  ops 120
  clients CLIENTS
  op point 5 zipfian:1.1
  op analytics 2
  op mutate 1

phase second
  ops 80
  clients CLIENTS
  op point 3 sequential span=1/2
  op pagerank 1
";

fn scenario_with_clients(clients: usize) -> Scenario {
    let graph = generators::gnm_connected(64, 160, 5);
    let text = SPEC.replace("CLIENTS", &clients.to_string());
    ScenarioSpec::parse(&text)
        .expect("spec parses")
        .resolve(&graph)
        .expect("spec resolves")
}

fn run_with_clients(clients: usize) -> StressReport {
    let graph = Arc::new(generators::gnm_connected(64, 160, 5));
    let service = GraphService::start(
        Arc::clone(&graph),
        ServiceConfig {
            executors: 2,
            mutations: Some(MutationConfig::default()),
            ..ServiceConfig::default()
        },
    );
    let report = driver::run_scenario(&service, &scenario_with_clients(clients));
    service.shutdown();
    report
}

/// The acceptance property: an ops-bound scenario completes the same
/// operations with the same answers no matter how many client threads
/// interleave on the shared stream — and identical reruns are identical.
#[test]
fn op_streams_are_client_count_independent_and_rerunnable() {
    let one = run_with_clients(1);
    let four = run_with_clients(4);
    let four_again = run_with_clients(4);
    for r in [&one, &four, &four_again] {
        assert_eq!(r.ops + r.writes, 200, "every stream index accounted for");
        assert_eq!(r.errors, 0, "clean run");
        assert!(r.writes > 0, "the mutate weight issued writes");
    }
    assert_eq!(one.answer_hash, four.answer_hash);
    assert_eq!(four.answer_hash, four_again.answer_hash);
    assert_eq!(one.ops, four.ops);
    assert_eq!(one.writes, four.writes);
    // Phase-level equality too: the fold is per phase, not just per run.
    for (a, b) in one.phases.iter().zip(&four.phases) {
        assert_eq!(a.ops, b.ops, "phase {}", a.name);
        assert_eq!(a.answer_hash, b.answer_hash, "phase {}", a.name);
    }
}

/// Every interval series in the report folds exactly back to its
/// aggregate histogram, and the phase counters fold exactly to the run
/// counters — the identities `--validate-report` enforces, checked here
/// at the source.
#[test]
fn interval_sums_fold_exactly_to_totals() {
    let report = run_with_clients(3);
    let mut ops = 0;
    let mut hash = 0;
    for p in &report.phases {
        let folded = p.intervals.folded();
        assert_eq!(folded.count(), p.latency.count(), "phase {}", p.name);
        assert_eq!(folded.count(), p.ops, "phase {}", p.name);
        assert_eq!(folded.min(), p.latency.min(), "phase {}", p.name);
        assert_eq!(folded.max(), p.latency.max(), "phase {}", p.name);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(folded.quantile(q), p.latency.quantile(q), "phase {}", p.name);
        }
        let (ok, errors) = p
            .intervals
            .slots()
            .iter()
            .fold((0, 0), |(o, e), s| (o + s.ok, e + s.errors));
        assert_eq!(ok, p.ok, "phase {}", p.name);
        assert_eq!(errors, p.errors, "phase {}", p.name);
        assert!(p.intervals.completed_intervals() >= 1, "phase {}", p.name);
        ops += p.ops;
        hash ^= p.answer_hash;
    }
    assert_eq!(ops, report.ops);
    assert_eq!(hash, report.answer_hash);
}

/// Per-replica service-time series hold the same fold identity, on the
/// sharded, replicated service.
#[test]
fn replica_series_fold_on_a_replicated_service() {
    let graph = Arc::new(generators::gnm_connected(64, 160, 5));
    let service = ShardedGraphService::start(
        Arc::clone(&graph),
        ServiceConfig {
            executors: 1,
            replicas: 2,
            mutations: Some(MutationConfig::default()),
            ..ServiceConfig::default()
        },
        2,
    );
    let report = driver::run_scenario(&service, &scenario_with_clients(4));
    service.shutdown();
    assert_eq!(report.replica_series.len(), 2, "one row per shard");
    let mut recorded = 0;
    for shard in &report.replica_series {
        assert_eq!(shard.len(), 2, "one series per replica");
        for rs in shard {
            assert_eq!(rs.intervals.total_count(), rs.service.count());
            assert_eq!(rs.intervals.folded().max(), rs.service.max());
            recorded += rs.service.count();
        }
    }
    // Executions, not ops: cache hits never reach an executor while
    // scattered analytics and retries reach several, so only nonemptiness
    // is a stable cross-check here — the exact identity is per replica
    // (series vs histogram), asserted above.
    assert!(recorded > 0, "executors recorded service times");
}

/// The legacy preset entry point and the checked-in `mixed.scn` example
/// produce the same counts and answers: the desugaring is exact.
#[test]
fn preset_flags_desugar_to_the_example_scenario() {
    let graph = Arc::new(generators::gnm_connected(64, 160, 5));
    let mix = Mix::preset("mixed", &graph).unwrap();
    let cfg = DriverConfig {
        clients: 4,
        ops_limit: Some(400),
        duration: Duration::from_secs(30),
        ..DriverConfig::default()
    };
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/mixed.scn"
    ))
    .expect("checked-in example readable");
    let scenario = ScenarioSpec::parse(&text)
        .expect("checked-in example parses")
        .resolve(&graph)
        .expect("checked-in example resolves");

    let service = GraphService::start(Arc::clone(&graph), ServiceConfig::default());
    let legacy = driver::run(&service, &mix, &cfg);
    let scn = driver::run_scenario(&service, &scenario);
    service.shutdown();
    assert_eq!(legacy.ops, scn.ops);
    assert_eq!(legacy.ok, scn.ok);
    assert_eq!(legacy.errors, scn.errors);
    assert_eq!(legacy.answer_hash, scn.answer_hash);
}

/// The other checked-in example parses, round-trips through its canonical
/// text, and resolves into the two phases the verify smoke expects.
#[test]
fn checked_in_smoke_example_stays_valid() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/smoke.scn"
    ))
    .expect("checked-in example readable");
    let spec = ScenarioSpec::parse(&text).expect("checked-in example parses");
    assert_eq!(ScenarioSpec::parse(&spec.to_text()).unwrap(), spec);
    let graph = generators::gnm_connected(64, 160, 5);
    let scenario = spec.resolve(&graph).expect("checked-in example resolves");
    assert_eq!(scenario.phases.len(), 2);
    assert!(scenario.has_writes());
    assert_eq!(scenario.interval, Duration::from_millis(250));
}

/// Reports round-trip through the crate's own JSON reader with the phase
/// and interval sections intact.
#[test]
fn report_json_carries_phases_and_intervals() {
    let report = run_with_clients(2);
    let doc = vcgp_stress::json::parse(&report.to_json("scenario-test")).expect("valid JSON");
    let phases = match doc.get("phases") {
        Some(vcgp_stress::json::Value::Array(rows)) => rows,
        other => panic!("phases missing or not an array: {other:?}"),
    };
    assert_eq!(phases.len(), 2);
    for (row, p) in phases.iter().zip(&report.phases) {
        let got = row
            .get("ops")
            .and_then(vcgp_stress::json::Value::as_f64)
            .expect("phase ops");
        assert_eq!(got as u64, p.ops);
        let intervals = match row.get("intervals") {
            Some(vcgp_stress::json::Value::Array(rows)) => rows,
            other => panic!("intervals missing: {other:?}"),
        };
        let summed: f64 = intervals
            .iter()
            .map(|r| r.get("count").and_then(vcgp_stress::json::Value::as_f64).unwrap())
            .sum();
        assert_eq!(summed as u64, p.ops);
    }
}
