//! Integration tests for the live-mutation subsystem: snapshot isolation
//! (a query observes exactly the epoch it was pinned to at submission,
//! even when the writer swaps mid-flight), cache invalidation on swap,
//! history-checked concurrent reads, and run-scoped writer deltas under
//! `--repeat`-style multi-run processes.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vcgp_core::service::run_workload;
use vcgp_core::Workload;
use vcgp_graph::{apply_batch, generators, Mutation};
use vcgp_pregel::partition::Partitioning;
use vcgp_pregel::PregelConfig;
use vcgp_stress::driver::{self, DriverConfig};
use vcgp_stress::epoch::MutationConfig;
use vcgp_stress::mix::Mix;
use vcgp_stress::request::{QueryKind, QueryOutput, QueryRequest};
use vcgp_stress::service::{GraphService, ServiceConfig, SubmitError};
use vcgp_stress::shard::ShardedGraphService;

fn config_for(strategy: Partitioning, mutations: Option<MutationConfig>) -> ServiceConfig {
    let mut engine = PregelConfig::single_worker();
    engine.partitioning = strategy;
    ServiceConfig {
        executors: 1,
        engine,
        mutations,
        ..ServiceConfig::default()
    }
}

/// A deterministic mutation batch that changes the CC structure: edge
/// deletions, a detached vertex, a fresh isolated vertex, and a new edge.
fn test_mutations() -> Vec<Mutation> {
    vec![
        Mutation::DeleteEdgeAt { u: 0, rank: 0 },
        Mutation::InsertEdge { u: 1, v: 5, w: 1.0 },
        Mutation::AddVertex { label: 0 },
        Mutation::RemoveVertex { v: 3 },
        Mutation::DeleteEdgeAt { u: 7, rank: 2 },
    ]
}

/// Polls until the writer has drained `accepted` mutations into installed
/// epochs (pending 0) or the deadline passes.
fn wait_for_drain(stats: impl Fn() -> vcgp_stress::epoch::WriterStats, accepted: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = stats();
        if s.accepted == accepted && s.pending == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "writer never drained: {s:?}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn workload_answer(resp: &vcgp_stress::request::QueryResponse) -> u64 {
    match resp.result {
        Ok(QueryOutput::Workload { answer, .. }) => answer,
        ref other => panic!("expected a workload answer, got {other:?}"),
    }
}

/// The snapshot-isolation acceptance property, deterministic by
/// construction: with one executor per shard, debug sleeps (one per shard,
/// spread by request id) occupy every executor; a workload submitted
/// behind them is pinned to epoch 0 at submission. The writer then swaps
/// in mutated epochs while the query is still queued — and the answer must
/// be bit-identical to a frozen run over the epoch-0 graph, never a mix. A
/// query submitted after the swap must answer exactly the mutated graph.
#[test]
fn query_pinned_at_submission_ignores_concurrent_swaps() {
    let graph = Arc::new(generators::gnm_connected(24, 48, 9));
    let muts = test_mutations();
    let (mutated, _) = apply_batch(&graph, &muts);
    let mutated = Arc::new(mutated);

    for strategy in [Partitioning::Hash, Partitioning::Range] {
        for shards in [1usize, 4] {
            let config = config_for(strategy, Some(MutationConfig::default()));
            let engine = config.engine.clone();
            let old_frozen = run_workload(Workload::CcHashMin, &graph, &engine, 7)
                .expect("cc supported")
                .answer;
            let new_frozen = run_workload(Workload::CcHashMin, &mutated, &engine, 7)
                .expect("cc supported")
                .answer;
            assert_ne!(
                old_frozen, new_frozen,
                "mutation batch must change the CC answer for the test to bite"
            );

            let service = ShardedGraphService::start(Arc::clone(&graph), config, shards);
            // Occupy every shard's single executor (debug ops spread by id).
            let sleeps: Vec<_> = (0..shards as u64)
                .map(|id| {
                    service
                        .submit(QueryRequest::new(
                            id,
                            QueryKind::DebugSleep(Duration::from_millis(150)),
                        ))
                        .expect("open")
                })
                .collect();
            // Queued behind the sleeps on every shard, pinned to epoch 0.
            let pinned = service
                .submit(
                    QueryRequest::new(100, QueryKind::Workload(Workload::CcHashMin))
                        .with_seed(7),
                )
                .expect("open");
            // Swap while the pinned query is still waiting for an executor.
            for m in &muts {
                service.submit_mutation(*m).expect("writable");
            }
            wait_for_drain(|| service.writer_stats(), muts.len() as u64);
            assert!(service.epoch().id >= 1, "a swap was installed");

            assert_eq!(
                workload_answer(&pinned.wait()),
                old_frozen,
                "{strategy:?} S={shards}: pinned query leaked a later epoch"
            );
            for s in sleeps {
                assert!(s.wait().is_ok());
            }
            let fresh = service
                .submit(
                    QueryRequest::new(101, QueryKind::Workload(Workload::CcHashMin))
                        .with_seed(7),
                )
                .expect("open");
            assert_eq!(
                workload_answer(&fresh.wait()),
                new_frozen,
                "{strategy:?} S={shards}: post-swap query missed the mutations"
            );
            service.shutdown();
        }
    }
}

/// Satellite: the epoch swap fires the cache invalidation hook. A warmed
/// entry stops being resident after the swap, and a replay of the same
/// request (now pinned to the new epoch, hence a new fingerprint) misses
/// instead of hitting stale state.
#[test]
fn swap_invalidates_the_result_cache() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 3));
    let service = GraphService::start(
        Arc::clone(&graph),
        config_for(Partitioning::Hash, Some(MutationConfig::default())),
    );
    let req =
        |id: u64| QueryRequest::new(id, QueryKind::Workload(Workload::CcHashMin)).with_seed(42);
    assert!(service.submit(req(1)).unwrap().wait().is_ok());
    assert!(service.submit(req(2)).unwrap().wait().is_ok());
    assert_eq!(service.stats().cache_hits, 1, "replay warmed the cache");
    assert!(service.stats().cache_bytes > 0);

    service
        .submit_mutation(Mutation::DeleteEdgeAt { u: 0, rank: 0 })
        .unwrap();
    wait_for_drain(|| service.writer_stats(), 1);
    // Invalidation fires right after the swap installs; give it a moment.
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.stats().cache_bytes > 0 {
        assert!(Instant::now() < deadline, "swap never invalidated the cache");
        std::thread::sleep(Duration::from_millis(2));
    }

    assert!(service.submit(req(3)).unwrap().wait().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.cache_hits, 1, "the old fingerprint never hits again");
    assert_eq!(stats.cache_misses, 2, "the post-swap request recomputed");
}

/// Concurrent readers racing a writer: with `keep_history` every answer
/// produced by the service must be bit-identical to a frozen run over
/// *some* installed epoch — one graph version per answer, never a blend.
#[test]
fn concurrent_answers_match_exactly_one_epoch() {
    let graph = Arc::new(generators::gnm_connected(20, 40, 11));
    let config = config_for(
        Partitioning::Hash,
        Some(MutationConfig {
            max_batch: 1, // one swap per mutation: maximal epoch churn
            keep_history: true,
            ..MutationConfig::default()
        }),
    );
    let engine = config.engine.clone();
    let service = ShardedGraphService::start(Arc::clone(&graph), config, 2);

    let muts: Vec<Mutation> = (0..16u32)
        .map(|i| match i % 4 {
            0 => Mutation::DeleteEdgeAt { u: i, rank: i },
            1 => Mutation::InsertEdge { u: i, v: (i + 7) % 20, w: 1.0 },
            2 => Mutation::RemoveVertex { v: (i * 3) % 20 },
            _ => Mutation::AddVertex { label: i },
        })
        .collect();
    let answers: Vec<u64> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for m in &muts {
                service.submit_mutation(*m).expect("writable");
                std::thread::sleep(Duration::from_millis(3));
            }
        });
        let readers: Vec<_> = (0..2u64)
            .map(|r| {
                let service = &service;
                scope.spawn(move || {
                    (0..12u64)
                        .map(|i| {
                            let resp = service
                                .submit(
                                    QueryRequest::new(
                                        1000 + r * 100 + i,
                                        QueryKind::Workload(Workload::CcHashMin),
                                    )
                                    .with_seed(7),
                                )
                                .expect("open")
                                .wait();
                            std::thread::sleep(Duration::from_millis(2));
                            workload_answer(&resp)
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        writer.join().unwrap();
        readers.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    wait_for_drain(|| service.writer_stats(), muts.len() as u64);

    let history = service.epoch_history().expect("keep_history was set");
    assert!(history.len() >= 2, "writer installed at least one new epoch");
    // Monotone, gap-free epoch ids.
    for (i, snap) in history.iter().enumerate() {
        assert_eq!(snap.id, i as u64);
    }
    let frozen: Vec<u64> = history
        .iter()
        .map(|snap| {
            run_workload(Workload::CcHashMin, &snap.graph, &engine, 7)
                .expect("cc supported on every epoch")
                .answer
        })
        .collect();
    for (i, a) in answers.iter().enumerate() {
        assert!(
            frozen.contains(a),
            "answer #{i} ({a}) matches no epoch's frozen answer {frozen:?}"
        );
    }
    service.shutdown();
}

/// Satellite: repeated driver runs against one service process scope the
/// writer counters to each run — pass 2 reports its own mutations, not the
/// cumulative process totals.
#[test]
fn repeat_runs_scope_writer_deltas() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 5));
    let mix = Mix::preset("points", &graph).unwrap();
    let service = GraphService::start(
        Arc::clone(&graph),
        config_for(Partitioning::Hash, Some(MutationConfig::default())),
    );
    let cfg = DriverConfig {
        clients: 2,
        duration: Duration::from_secs(30),
        ops_limit: Some(200),
        write_ratio: 0.3,
        mutation_seed: 13,
        ..DriverConfig::default()
    };
    let pass1 = driver::run(&service, &mix, &cfg);
    let pass2 = driver::run(&service, &mix, &cfg);
    for (pass, report) in [(1, &pass1), (2, &pass2)] {
        assert!(report.writes > 0, "pass {pass}: the seeded mix wrote nothing");
        assert_eq!(report.write_errors, 0, "pass {pass}: writes were refused");
        assert_eq!(
            report.epochs.stats.accepted, report.writes,
            "pass {pass}: writer accepted-delta is not scoped to the run"
        );
        // The same seeded stream issues the same write indices each pass.
        assert_eq!(pass1.writes, report.writes);
    }
    service.shutdown();
}

/// Satellite: with `--write-ratio 0` the write path is inert — the run is
/// bit-identical (same answer hash, same op count) to a run against a
/// service that has no mutation machinery at all.
#[test]
fn write_ratio_zero_is_bit_identical_to_read_only() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 5));
    let mix = Mix::preset("points", &graph).unwrap();
    let cfg = DriverConfig {
        clients: 2,
        duration: Duration::from_secs(30),
        ops_limit: Some(150),
        write_ratio: 0.0,
        ..DriverConfig::default()
    };
    let with_writer = GraphService::start(
        Arc::clone(&graph),
        config_for(Partitioning::Hash, Some(MutationConfig::default())),
    );
    let read_only =
        GraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash, None));
    let a = driver::run(&with_writer, &mix, &cfg);
    let b = driver::run(&read_only, &mix, &cfg);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.answer_hash, b.answer_hash, "write path perturbed the reads");
    assert_eq!(a.writes, 0);
    assert_eq!(a.epochs.stats.swaps, 0, "no mutations, no swaps");
    with_writer.shutdown();
    read_only.shutdown();
}

/// A service started without `ServiceConfig::mutations` refuses writes.
#[test]
fn read_only_service_refuses_mutations() {
    let graph = Arc::new(generators::gnm_connected(16, 32, 1));
    let service =
        GraphService::start(Arc::clone(&graph), config_for(Partitioning::Hash, None));
    match service.submit_mutation(Mutation::AddVertex { label: 0 }) {
        Err(SubmitError::ReadOnly) => {}
        other => panic!("expected ReadOnly, got {other:?}"),
    }
    assert_eq!(service.writer_stats().epoch, 0);
    service.shutdown();
}

/// Shutdown drains the write buffer: mutations accepted before `close`
/// land in an installed epoch even when the process tears down right away,
/// and the final epoch equals the frozen batch application.
#[test]
fn shutdown_drains_buffered_mutations() {
    let graph = Arc::new(generators::gnm_connected(16, 32, 1));
    let muts = test_mutations();
    let (mutated, _) = apply_batch(&graph, &muts);
    let service = ShardedGraphService::start(
        Arc::clone(&graph),
        config_for(Partitioning::Hash, Some(MutationConfig::default())),
        2,
    );
    for m in &muts {
        service.submit_mutation(*m).expect("writable");
    }
    let final_epoch = service.epoch_final_for_test();
    assert_eq!(final_epoch.graph.num_vertices(), mutated.num_vertices());
    assert_eq!(final_epoch.graph.num_edges(), mutated.num_edges());
}

/// Helper extension: shut the service down, then return the last installed
/// epoch (captured before teardown).
trait EpochFinal {
    fn epoch_final_for_test(self) -> Arc<vcgp_stress::epoch::EpochSnapshot>;
}

impl EpochFinal for ShardedGraphService {
    fn epoch_final_for_test(self) -> Arc<vcgp_stress::epoch::EpochSnapshot> {
        // `close` stops admission; `shutdown` joins the writer only after
        // the buffer is drained, so the current epoch afterwards is final.
        self.close();
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.writer_stats().pending > 0 {
            assert!(Instant::now() < deadline, "writer never drained on close");
            std::thread::sleep(Duration::from_millis(2));
        }
        let last = self.epoch();
        self.shutdown();
        last
    }
}
