//! Integration + property tests for shard replicas and replica routing:
//! answer identity for any replica count under both routing policies
//! (including cached hits and scattered analytics legs), exactly-one-epoch
//! answers under a concurrent mutation writer, seeded round-robin dispatch
//! order, least-loaded backlog splitting, the replica-agnostic shared
//! cache, and the fold of per-replica rows into the shard snapshot.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vcgp_core::service::run_workload;
use vcgp_core::Workload;
use vcgp_graph::{generators, Mutation};
use vcgp_pregel::partition::Partitioning;
use vcgp_pregel::PregelConfig;
use vcgp_stress::driver::{self, DriverConfig};
use vcgp_stress::epoch::MutationConfig;
use vcgp_stress::mix::Mix;
use vcgp_stress::request::{QueryKind, QueryOutput, QueryRequest, Route};
use vcgp_stress::router::RoutingPolicy;
use vcgp_stress::service::ServiceConfig;
use vcgp_stress::shard::ShardedGraphService;
use vcgp_testkit::prop::Source;
use vcgp_testkit::{prop_assert, vcgp_props};

fn config_for(strategy: Partitioning, replicas: usize, routing: RoutingPolicy) -> ServiceConfig {
    let mut engine = PregelConfig::single_worker();
    engine.partitioning = strategy;
    ServiceConfig {
        executors: 2,
        engine,
        replicas,
        routing,
        ..ServiceConfig::default()
    }
}

fn routed_replica(route: Route) -> u32 {
    match route {
        Route::Routed { replica, .. } => replica,
        other => panic!("expected an owner-routed response, got {other:?}"),
    }
}

vcgp_props! {
    #![cases(4)]

    // The tentpole acceptance property: replicas change latency, never
    // answers. For S ∈ {1, 4} × R ∈ {1, 2, 3} × both routing policies ×
    // both placement strategies, a two-pass driver run (pass 2 replays the
    // identical seeded stream, so it exercises the shared cache; the mixed
    // preset scatters analytics legs at S=4; the zipfian key draw skews
    // the point lookups) completes the same op count with the same answer
    // hash as the R=1 baseline, with zero errors.
    fn replicated_answers_bit_identical_to_single_replica(
        graph_seed in 0u64..1_000,
        stream_seed in 0u64..1_000_000,
    ) {
        let mut src = Source::new(graph_seed ^ 0x5245_504C);
        let n = 24 + src.next_below(25) as usize;
        let m = n + src.next_below(3 * n as u64) as usize;
        let graph = Arc::new(generators::gnm_connected(n, m, graph_seed));
        let mix = Mix::preset("mixed", &graph)
            .unwrap()
            .with_zipf(1.1)
            .unwrap();
        let driver_cfg = DriverConfig {
            clients: 2,
            duration: Duration::from_secs(30),
            ops_limit: Some(96),
            seed: stream_seed,
            ..DriverConfig::default()
        };
        let two_passes = |replicas: usize, routing, strategy, shards| {
            let service = ShardedGraphService::start(
                Arc::clone(&graph),
                config_for(strategy, replicas, routing),
                shards,
            );
            let passes =
                [driver::run(&service, &mix, &driver_cfg), driver::run(&service, &mix, &driver_cfg)];
            service.shutdown();
            passes
        };
        for strategy in [Partitioning::Hash, Partitioning::Range] {
            for shards in [1usize, 4] {
                let baseline = two_passes(1, RoutingPolicy::RoundRobin, strategy, shards);
                prop_assert!(
                    baseline[1].cache_hits > 0,
                    "{strategy:?} S={shards}: the replayed pass never hit the cache"
                );
                for replicas in [2usize, 3] {
                    for routing in [RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded] {
                        let runs = two_passes(replicas, routing, strategy, shards);
                        for (pass, (run, base)) in runs.iter().zip(&baseline).enumerate() {
                            prop_assert!(
                                run.errors == 0,
                                "{strategy:?} S={shards} R={replicas} {routing:?} pass {pass}: \
                                 {} errors",
                                run.errors
                            );
                            prop_assert!(
                                run.ops == base.ops && run.answer_hash == base.answer_hash,
                                "{strategy:?} S={shards} R={replicas} {routing:?} pass {pass}: \
                                 ops {} hash {:016x} != baseline ops {} hash {:016x}",
                                run.ops,
                                run.answer_hash,
                                base.ops,
                                base.answer_hash
                            );
                            prop_assert!(
                                run.per_shard.len() == shards
                                    && run
                                        .per_shard
                                        .iter()
                                        .all(|s| s.replicas.len() == replicas),
                                "{strategy:?} S={shards} R={replicas} {routing:?} pass {pass}: \
                                 report is missing per-replica rows"
                            );
                        }
                        prop_assert!(
                            runs[1].cache_hits > 0,
                            "{strategy:?} S={shards} R={replicas} {routing:?}: replay \
                             missed the shared cache"
                        );
                    }
                }
            }
        }
    }
}

/// Replicated shards racing a concurrent mutation writer: with
/// `keep_history`, every answer any replica produces must be bit-identical
/// to a frozen run over *some* installed epoch — replicas swap in lockstep
/// per shard, so no answer may blend graph versions.
#[test]
fn replicated_answers_under_writer_match_exactly_one_epoch() {
    let graph = Arc::new(generators::gnm_connected(20, 40, 13));
    let mut config = config_for(Partitioning::Hash, 2, RoutingPolicy::LeastLoaded);
    config.mutations = Some(MutationConfig {
        max_batch: 1, // one swap per mutation: maximal epoch churn
        keep_history: true,
        ..MutationConfig::default()
    });
    let engine = config.engine.clone();
    let service = ShardedGraphService::start(Arc::clone(&graph), config, 2);

    let muts: Vec<Mutation> = (0..12u32)
        .map(|i| match i % 4 {
            0 => Mutation::DeleteEdgeAt { u: i, rank: i },
            1 => Mutation::InsertEdge { u: i, v: (i + 7) % 20, w: 1.0 },
            2 => Mutation::RemoveVertex { v: (i * 3) % 20 },
            _ => Mutation::AddVertex { label: i },
        })
        .collect();
    let answers: Vec<u64> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for m in &muts {
                service.submit_mutation(*m).expect("writable");
                std::thread::sleep(Duration::from_millis(3));
            }
        });
        let readers: Vec<_> = (0..3u64)
            .map(|r| {
                let service = &service;
                scope.spawn(move || {
                    (0..10u64)
                        .map(|i| {
                            let resp = service
                                .submit(
                                    QueryRequest::new(
                                        1000 + r * 100 + i,
                                        QueryKind::Workload(Workload::CcHashMin),
                                    )
                                    .with_seed(7),
                                )
                                .expect("open")
                                .wait();
                            std::thread::sleep(Duration::from_millis(2));
                            match resp.result {
                                Ok(QueryOutput::Workload { answer, .. }) => answer,
                                other => panic!("expected a workload answer, got {other:?}"),
                            }
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        writer.join().unwrap();
        readers.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = service.writer_stats();
        if s.accepted == muts.len() as u64 && s.pending == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "writer never drained: {s:?}");
        std::thread::sleep(Duration::from_millis(2));
    }

    let history = service.epoch_history().expect("keep_history was set");
    assert!(history.len() >= 2, "writer installed at least one new epoch");
    let frozen: Vec<u64> = history
        .iter()
        .map(|snap| {
            run_workload(Workload::CcHashMin, &snap.graph, &engine, 7)
                .expect("cc supported on every epoch")
                .answer
        })
        .collect();
    for (i, a) in answers.iter().enumerate() {
        assert!(
            frozen.contains(a),
            "answer #{i} ({a}) matches no epoch's frozen answer {frozen:?}"
        );
    }
    service.shutdown();
}

/// Round-robin dispatch is a seeded, deterministic walk: consecutive
/// owner-routed requests to the same shard land on consecutive replicas
/// (mod R), so 3k sequential lookups visit each of 3 replicas exactly k
/// times.
#[test]
fn round_robin_walks_replicas_in_order() {
    let graph = Arc::new(generators::gnm_connected(16, 32, 5));
    let service = ShardedGraphService::start(
        Arc::clone(&graph),
        config_for(Partitioning::Hash, 3, RoutingPolicy::RoundRobin),
        1,
    );
    let mut picks = Vec::new();
    for i in 0..9u64 {
        let resp = service
            .submit(QueryRequest::new(i, QueryKind::Degree(0)))
            .unwrap()
            .wait();
        assert!(resp.result.is_ok());
        picks.push(routed_replica(resp.route));
    }
    for pair in picks.windows(2) {
        assert_eq!(pair[1], (pair[0] + 1) % 3, "round-robin skipped a replica: {picks:?}");
    }
    let snaps = service.shard_snapshots();
    for row in &snaps[0].replicas {
        assert_eq!(row.stats.completed, 3, "replica {} share of 9 lookups", row.replica);
    }
    service.shutdown();
}

/// Least-loaded routing: with every queue empty the tie-break picks the
/// lowest replica id, and once replica 0 has a backlog the next request
/// spills to replica 1.
#[test]
fn least_loaded_breaks_ties_low_and_splits_backlog() {
    let graph = Arc::new(generators::gnm_connected(16, 32, 5));
    let mut config = config_for(Partitioning::Hash, 2, RoutingPolicy::LeastLoaded);
    config.executors = 1;
    let service = ShardedGraphService::start(Arc::clone(&graph), config, 1);
    // Sequential submit-and-wait: queues are empty at every pick, so the
    // tie-break sends everything to replica 0.
    for i in 0..4u64 {
        let resp = service
            .submit(QueryRequest::new(i, QueryKind::Degree(0)))
            .unwrap()
            .wait();
        assert_eq!(routed_replica(resp.route), 0, "idle ties break to the lowest id");
    }
    // Occupy replica 0's single executor, let it dequeue, then queue one
    // more sleep behind it: replica 0 now has depth 1, replica 1 depth 0.
    let busy = service
        .submit(QueryRequest::new(100, QueryKind::DebugSleep(Duration::from_millis(300))))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let queued = service
        .submit(QueryRequest::new(101, QueryKind::DebugSleep(Duration::from_millis(1))))
        .unwrap();
    assert_eq!(service.replica_queue_depths(0), vec![1, 0], "backlog sits on replica 0");
    // The next pick must spill to the idle replica.
    let spilled = service
        .submit(QueryRequest::new(102, QueryKind::Degree(0)))
        .unwrap()
        .wait();
    assert_eq!(routed_replica(spilled.route), 1, "least-loaded spilled past the backlog");
    assert!(busy.wait().is_ok());
    assert!(queued.wait().is_ok());
    service.shutdown();
}

/// Cache keys are replica-agnostic: an answer computed (and inserted) via
/// one replica is a hit when the router sends the identical request to a
/// different replica of the same shard.
#[test]
fn shared_cache_hits_across_replicas() {
    let graph = Arc::new(generators::gnm_connected(24, 60, 9));
    let service = ShardedGraphService::start(
        Arc::clone(&graph),
        config_for(Partitioning::Hash, 2, RoutingPolicy::RoundRobin),
        1,
    );
    let req =
        |id: u64| QueryRequest::new(id, QueryKind::Workload(Workload::CcHashMin)).with_seed(42);
    let first = service.submit(req(1)).unwrap().wait();
    let second = service.submit(req(2)).unwrap().wait();
    assert_ne!(
        routed_replica(first.route),
        routed_replica(second.route),
        "round-robin must alternate replicas for the hit to cross cores"
    );
    assert_eq!(first.result, second.result, "the cached answer is the computed answer");
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "the second replica served the first's insertion");
    assert_eq!(stats.cache_misses, 1);
    service.shutdown();
}

/// The shard snapshot is exactly the fold of its replica rows: completed
/// counts sum, queue high-water marks take the max, and the folded service
/// totals match the per-shard sums.
#[test]
fn replica_rows_fold_into_shard_snapshot() {
    let graph = Arc::new(generators::gnm_connected(32, 80, 7));
    let service = ShardedGraphService::start(
        Arc::clone(&graph),
        config_for(Partitioning::Hash, 2, RoutingPolicy::RoundRobin),
        2,
    );
    for v in 0..16u32 {
        assert!(service
            .submit(QueryRequest::new(u64::from(v), QueryKind::Degree(v)))
            .unwrap()
            .wait()
            .is_ok());
    }
    let snaps = service.shard_snapshots();
    assert_eq!(snaps.len(), 2);
    for snap in &snaps {
        assert_eq!(snap.replicas.len(), 2);
        for (r, row) in snap.replicas.iter().enumerate() {
            assert_eq!(row.replica, r, "replica rows are ordered by id");
        }
        assert_eq!(
            snap.stats.completed,
            snap.replicas.iter().map(|r| r.stats.completed).sum::<u64>(),
            "shard {} completed is the replica sum",
            snap.shard
        );
        assert_eq!(
            snap.stats.queue_hwm,
            snap.replicas.iter().map(|r| r.stats.queue_hwm).max().unwrap(),
            "shard {} queue_hwm is the replica max",
            snap.shard
        );
    }
    let folded = service.stats();
    assert_eq!(folded.completed, 16);
    assert_eq!(
        folded.completed,
        snaps.iter().map(|s| s.stats.completed).sum::<u64>()
    );
    let total = service.shutdown();
    assert_eq!(total.completed, 16);
}
