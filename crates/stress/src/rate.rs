//! A token-bucket rate limiter in the GCRA (virtual-scheduling)
//! formulation, using integer nanoseconds throughout.
//!
//! The limiter is a pure state machine over caller-supplied timestamps —
//! it never reads a clock — which makes it exactly testable: the property
//! suite replays deterministic arrival sequences and checks the admission
//! bound over every window. The driver feeds it monotonic nanoseconds since
//! the run started.
//!
//! Invariant (checked by `tests/props.rs`): over any half-open window
//! `(a, b]`, at most `rate · (b − a) + burst` arrivals are admitted.

/// Token-bucket limiter: sustained `rate` with a `burst` allowance.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Nanoseconds between tokens (`1e9 / rate`), the GCRA increment `T`.
    increment_ns: u64,
    /// Delay tolerance `τ = (burst − 1) · T`: how far ahead of its
    /// theoretical arrival time a request may be admitted.
    tolerance_ns: u64,
    /// Theoretical arrival time of the next conforming request.
    tat_ns: u64,
}

impl TokenBucket {
    /// A limiter admitting `rate` requests per second sustained, with up to
    /// `burst` admitted back to back.
    ///
    /// # Panics
    /// Panics unless `rate` is positive and finite and `burst >= 1`.
    pub fn new(rate: f64, burst: u32) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        assert!(burst >= 1, "burst must be at least 1");
        let increment_ns = (1e9 / rate).max(1.0) as u64;
        TokenBucket {
            increment_ns,
            tolerance_ns: increment_ns * u64::from(burst - 1),
            tat_ns: 0,
        }
    }

    /// Nanoseconds between conforming arrivals.
    pub fn increment_ns(&self) -> u64 {
        self.increment_ns
    }

    /// Attempts to admit an arrival at `now_ns` (monotonic nanoseconds).
    /// Returns `Ok(())` and consumes a token, or `Err(wait_ns)` — the
    /// arrival is early and becomes conforming `wait_ns` from now.
    ///
    /// `now_ns` must be non-decreasing across calls; regressions are
    /// clamped (the limiter only ever uses `max(now, state)`).
    pub fn try_acquire(&mut self, now_ns: u64) -> Result<(), u64> {
        let earliest = self.tat_ns.saturating_sub(self.tolerance_ns);
        if now_ns < earliest {
            return Err(earliest - now_ns);
        }
        self.tat_ns = self.tat_ns.max(now_ns) + self.increment_ns;
        Ok(())
    }

    /// The next instant (monotonic nanoseconds) at which an arrival would
    /// be admitted. Zero when a token is available right now.
    pub fn next_conforming_ns(&self) -> u64 {
        self.tat_ns.saturating_sub(self.tolerance_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_steady_state() {
        // 1000/s, burst 4: four admits at t=0, then one per millisecond.
        let mut tb = TokenBucket::new(1000.0, 4);
        for _ in 0..4 {
            assert_eq!(tb.try_acquire(0), Ok(()));
        }
        let wait = tb.try_acquire(0).unwrap_err();
        assert_eq!(wait, 1_000_000);
        assert_eq!(tb.try_acquire(1_000_000), Ok(()));
        assert!(tb.try_acquire(1_000_001).is_err());
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut tb = TokenBucket::new(1000.0, 3);
        for _ in 0..3 {
            assert_eq!(tb.try_acquire(0), Ok(()));
        }
        // A long idle period refills the full burst but no more.
        let t = 1_000_000_000;
        for _ in 0..3 {
            assert_eq!(tb.try_acquire(t), Ok(()));
        }
        assert!(tb.try_acquire(t).is_err());
    }

    #[test]
    fn wait_hint_is_exact() {
        let mut tb = TokenBucket::new(100.0, 1);
        assert_eq!(tb.try_acquire(0), Ok(()));
        let wait = tb.try_acquire(0).unwrap_err();
        assert_eq!(tb.try_acquire(wait - 1), Err(1));
        assert_eq!(tb.try_acquire(wait), Ok(()));
    }
}
